"""The versioned service-job JSON schemas and their validators.

Every document the service accepts or emits carries the schema tag
``repro.service-job/1``.  Three document shapes share the tag, told
apart by context (request body, job record, result body):

.. code-block:: text

    <request> = {
      "schema":      "repro.service-job/1",
      "kind":        "partition" | "contact-step",
      "k":           int >= 1,
      "partitioner": "mcml-dt" | "ml-rcb" | "apriori",   # default mcml-dt
      "config":      { <whitelisted scalar knobs> },      # default {}
      "source":      {"kind": "impact", "n_steps": int, "refine": num,
                      "snapshot": int}
                   | {"kind": "mesh", "path": str, "capture_radius": num},
      "steps":       int >= 1,          # contact-step only, default 1
      "client":      str,               # rate-limit key, default "anonymous"
      "deadline_s":  number > 0 | null, # default null (no deadline)
      "cache":       bool               # default true
    }

    <record> = {
      "schema": "repro.service-job/1", "id": str, "state": <state>,
      "kind": ..., "client": ..., "cache": "hit"|"miss"|"coalesced"|null,
      "coalesced": bool, "retries": int >= 0, "error": str|null,
      "submitted_s": number, "started_s": number|null,
      "finished_s": number|null, "request": <request>
    }

    <result:partition> = {
      "schema": ..., "id": str, "kind": "partition", "method": str,
      "k": int, "cache": "hit"|"miss"|"coalesced",
      "content_key": str, "labels": [int, ...],
      "diagnostics": { str: scalar | [number, ...] }
    }

    <result:contact-step> = {
      "schema": ..., "id": str, "kind": "contact-step", "k": int,
      "steps": int, "n_candidates": int, "labels_digest": str,
      "comm": { <phase>: {"n_messages": int, "n_items": int} }
    }

The validators are hand-rolled in the ``repro.obs.schema`` style (no
``jsonschema`` dependency): each raises :class:`ServiceSchemaError`
carrying the JSON path of the first violation, and returns a
*normalised copy* with defaults filled in so downstream code never
branches on missing keys.  Documented in ``docs/SERVICE.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

SCHEMA_VERSION = "repro.service-job/1"

JOB_KINDS = ("partition", "contact-step")
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "expired")
PARTITIONER_NAMES = ("mcml-dt", "ml-rcb", "apriori")
SOURCE_KINDS = ("impact", "mesh")
CACHE_STATES = ("hit", "miss", "coalesced")

#: configuration knobs accepted per partitioner: the scalar fields of
#: the method's params dataclass plus the shared
#: :class:`~repro.partition.config.PartitionOptions` fields
OPTIONS_KEYS = (
    "ubfactor",
    "coarsen_to",
    "min_coarsen_ratio",
    "n_init_trials",
    "fm_passes",
    "fm_neg_moves",
    "kway_passes",
    "matching_rounds",
    "seed",
)
CONFIG_KEYS: Dict[str, Tuple[str, ...]] = {
    "mcml-dt": (
        "contact_edge_weight",
        "max_p",
        "max_i",
        "margin_weight",
        "pad",
        "reshape",
    )
    + OPTIONS_KEYS,
    "ml-rcb": ("pad",) + OPTIONS_KEYS,
    "apriori": (
        "prediction_radius",
        "contact_edge_weight",
        "virtual_edge_weight",
        "pad",
    )
    + OPTIONS_KEYS,
}

_SCALARS = (str, int, float, bool, type(None))


class ServiceSchemaError(ValueError):
    """A service document violates the schema.

    ``path`` locates the offending element, e.g.
    ``$.source.refine``.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


# ----------------------------------------------------------------------
# shared primitives
# ----------------------------------------------------------------------


def _require_object(value: object, path: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise ServiceSchemaError(path, "must be a JSON object")
    return value


def _require_int(
    value: object, path: str, minimum: Optional[int] = None
) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceSchemaError(path, "must be an integer")
    if minimum is not None and value < minimum:
        raise ServiceSchemaError(path, f"must be >= {minimum}")
    return value


def _require_number(
    value: object, path: str, minimum: Optional[float] = None,
    exclusive: bool = False,
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceSchemaError(path, "must be a number")
    if minimum is not None:
        if exclusive and value <= minimum:
            raise ServiceSchemaError(path, f"must be > {minimum:g}")
        if not exclusive and value < minimum:
            raise ServiceSchemaError(path, f"must be >= {minimum:g}")
    return float(value)


def _require_str(value: object, path: str) -> str:
    if not isinstance(value, str) or not value:
        raise ServiceSchemaError(path, "must be a non-empty string")
    return value


def _require_choice(
    value: object, path: str, choices: Tuple[str, ...]
) -> str:
    if value not in choices:
        raise ServiceSchemaError(
            path, f"must be one of {list(choices)}, got {value!r}"
        )
    return str(value)


def _require_schema(doc: Dict[str, Any], path: str) -> None:
    schema = doc.get("schema")
    if schema != SCHEMA_VERSION:
        raise ServiceSchemaError(
            f"{path}.schema",
            f"expected {SCHEMA_VERSION!r}, got {schema!r}",
        )


def _reject_unknown(
    doc: Mapping[str, Any], known: Tuple[str, ...], path: str
) -> None:
    extra = set(doc) - set(known)
    if extra:
        raise ServiceSchemaError(path, f"unknown keys {sorted(extra)}")


# ----------------------------------------------------------------------
# request
# ----------------------------------------------------------------------


def _validate_source(value: object, path: str) -> Dict[str, Any]:
    source = _require_object(value, path)
    kind = _require_choice(source.get("kind"), f"{path}.kind", SOURCE_KINDS)
    if kind == "mesh":
        _reject_unknown(source, ("kind", "path", "capture_radius"), path)
        return {
            "kind": "mesh",
            "path": _require_str(source.get("path"), f"{path}.path"),
            "capture_radius": _require_number(
                source.get("capture_radius", 3.0),
                f"{path}.capture_radius",
                minimum=0.0,
                exclusive=True,
            ),
        }
    _reject_unknown(source, ("kind", "n_steps", "refine", "snapshot"), path)
    n_steps = _require_int(
        source.get("n_steps", 1), f"{path}.n_steps", minimum=1
    )
    refine = _require_number(
        source.get("refine", 1.0), f"{path}.refine", minimum=0.0,
        exclusive=True,
    )
    snapshot = _require_int(
        source.get("snapshot", 0), f"{path}.snapshot", minimum=0
    )
    if snapshot >= n_steps:
        raise ServiceSchemaError(
            f"{path}.snapshot", f"must be < n_steps ({n_steps})"
        )
    return {
        "kind": "impact",
        "n_steps": n_steps,
        "refine": refine,
        "snapshot": snapshot,
    }


def _validate_config(
    value: object, partitioner: str, path: str
) -> Dict[str, Any]:
    config = _require_object(value, path)
    allowed = CONFIG_KEYS[partitioner]
    out: Dict[str, Any] = {}
    for key in config:
        if not isinstance(key, str):
            raise ServiceSchemaError(path, "keys must be strings")
        if key not in allowed:
            raise ServiceSchemaError(
                f"{path}[{key!r}]",
                f"unknown {partitioner} option; allowed: {sorted(allowed)}",
            )
        item = config[key]
        if not isinstance(item, _SCALARS):
            raise ServiceSchemaError(
                f"{path}[{key!r}]",
                "must be a scalar (str/number/bool/null)",
            )
        out[key] = item
    return out


_REQUEST_KEYS = (
    "schema",
    "kind",
    "k",
    "partitioner",
    "config",
    "source",
    "steps",
    "client",
    "deadline_s",
    "cache",
)


def validate_job_request(document: object) -> Dict[str, Any]:
    """Check a job request; return a normalised copy with defaults.

    Raises :class:`ServiceSchemaError` at the first violation.
    """
    doc = _require_object(document, "$")
    _reject_unknown(doc, _REQUEST_KEYS, "$")
    _require_schema(doc, "$")
    kind = _require_choice(doc.get("kind"), "$.kind", JOB_KINDS)
    k = _require_int(doc.get("k"), "$.k", minimum=1)
    partitioner = _require_choice(
        doc.get("partitioner", "mcml-dt"), "$.partitioner",
        PARTITIONER_NAMES,
    )
    config = _validate_config(
        doc.get("config", {}), partitioner, "$.config"
    )
    source = _validate_source(
        doc.get("source", {"kind": "impact"}), "$.source"
    )
    steps = _require_int(doc.get("steps", 1), "$.steps", minimum=1)
    if kind == "contact-step":
        if partitioner != "mcml-dt":
            raise ServiceSchemaError(
                "$.partitioner",
                "contact-step jobs run the MCML+DT driver; "
                "partitioner must be 'mcml-dt'",
            )
        if source["kind"] == "impact" and steps > source["n_steps"]:
            raise ServiceSchemaError(
                "$.steps",
                f"must be <= source.n_steps ({source['n_steps']})",
            )
    client = _require_str(doc.get("client", "anonymous"), "$.client")
    deadline = doc.get("deadline_s")
    if deadline is not None:
        deadline = _require_number(
            deadline, "$.deadline_s", minimum=0.0, exclusive=True
        )
    cache = doc.get("cache", True)
    if not isinstance(cache, bool):
        raise ServiceSchemaError("$.cache", "must be a boolean")
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "k": k,
        "partitioner": partitioner,
        "config": config,
        "source": source,
        "steps": steps,
        "client": client,
        "deadline_s": deadline,
        "cache": cache,
    }


def canonical_request_text(request: Mapping[str, Any]) -> str:
    """The canonical JSON form used for single-flight identity.

    Two submissions describe *the same work* iff this text matches:
    the client identity, the deadline, and the cache opt-out are
    stripped (they affect policy, not the computed answer).
    """
    doc = {
        key: value
        for key, value in request.items()
        if key not in ("client", "deadline_s", "cache")
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# job record
# ----------------------------------------------------------------------

_RECORD_KEYS = (
    "schema",
    "id",
    "state",
    "kind",
    "client",
    "cache",
    "coalesced",
    "retries",
    "error",
    "submitted_s",
    "started_s",
    "finished_s",
    "request",
)


def validate_job_record(document: object) -> Dict[str, Any]:
    """Check a job record; raises :class:`ServiceSchemaError`."""
    doc = _require_object(document, "$")
    _reject_unknown(doc, _RECORD_KEYS, "$")
    _require_schema(doc, "$")
    _require_str(doc.get("id"), "$.id")
    _require_choice(doc.get("state"), "$.state", JOB_STATES)
    _require_choice(doc.get("kind"), "$.kind", JOB_KINDS)
    _require_str(doc.get("client"), "$.client")
    cache = doc.get("cache")
    if cache is not None:
        _require_choice(cache, "$.cache", CACHE_STATES)
    if not isinstance(doc.get("coalesced"), bool):
        raise ServiceSchemaError("$.coalesced", "must be a boolean")
    _require_int(doc.get("retries"), "$.retries", minimum=0)
    error = doc.get("error")
    if error is not None and not isinstance(error, str):
        raise ServiceSchemaError("$.error", "must be a string or null")
    _require_number(doc.get("submitted_s"), "$.submitted_s")
    for key in ("started_s", "finished_s"):
        value = doc.get(key)
        if value is not None:
            _require_number(value, f"$.{key}")
    validate_job_request(doc.get("request"))
    return doc


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


def _validate_diagnostics(value: object, path: str) -> None:
    diag = _require_object(value, path)
    for key, item in diag.items():
        if not isinstance(key, str):
            raise ServiceSchemaError(path, "keys must be strings")
        item_path = f"{path}[{key!r}]"
        if isinstance(item, list):
            for i, element in enumerate(item):
                _require_number(element, f"{item_path}[{i}]")
        elif not isinstance(item, _SCALARS):
            raise ServiceSchemaError(
                item_path, "must be a scalar or an array of numbers"
            )


def _validate_comm(value: object, path: str) -> None:
    comm = _require_object(value, path)
    for phase, totals in comm.items():
        if not isinstance(phase, str) or not phase:
            raise ServiceSchemaError(path, "phase names must be strings")
        phase_path = f"{path}[{phase!r}]"
        totals_obj = _require_object(totals, phase_path)
        if set(totals_obj) != {"n_messages", "n_items"}:
            raise ServiceSchemaError(
                phase_path, "must have exactly n_messages and n_items"
            )
        for key in ("n_messages", "n_items"):
            _require_int(totals_obj[key], f"{phase_path}.{key}", minimum=0)


_PARTITION_RESULT_KEYS = (
    "schema",
    "id",
    "kind",
    "method",
    "k",
    "cache",
    "content_key",
    "labels",
    "diagnostics",
)

_CONTACT_RESULT_KEYS = (
    "schema",
    "id",
    "kind",
    "k",
    "steps",
    "n_candidates",
    "labels_digest",
    "comm",
)


def validate_result(document: object) -> Dict[str, Any]:
    """Check a result document (either kind); raises
    :class:`ServiceSchemaError`."""
    doc = _require_object(document, "$")
    _require_schema(doc, "$")
    kind = _require_choice(doc.get("kind"), "$.kind", JOB_KINDS)
    _require_str(doc.get("id"), "$.id")
    _require_int(doc.get("k"), "$.k", minimum=1)
    if kind == "partition":
        _reject_unknown(doc, _PARTITION_RESULT_KEYS, "$")
        _require_str(doc.get("method"), "$.method")
        _require_choice(doc.get("cache"), "$.cache", CACHE_STATES)
        _require_str(doc.get("content_key"), "$.content_key")
        labels = doc.get("labels")
        if not isinstance(labels, list):
            raise ServiceSchemaError("$.labels", "must be an array")
        for i, value in enumerate(labels):
            _require_int(value, f"$.labels[{i}]")
        _validate_diagnostics(doc.get("diagnostics"), "$.diagnostics")
        return doc
    _reject_unknown(doc, _CONTACT_RESULT_KEYS, "$")
    _require_int(doc.get("steps"), "$.steps", minimum=1)
    _require_int(doc.get("n_candidates"), "$.n_candidates", minimum=0)
    _require_str(doc.get("labels_digest"), "$.labels_digest")
    _validate_comm(doc.get("comm"), "$.comm")
    return doc
