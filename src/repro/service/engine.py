"""The async job engine: workers, single-flight, rate limits, cache.

:class:`ServiceEngine` is the service's brain.  It owns

* the bounded :class:`~repro.service.queue.JobQueue`,
* the content-addressed :class:`~repro.service.cache.ResultCache`,
* one pooled execution backend (resolved once via
  :func:`~repro.runtime.backends.build_backend` and reused by every
  contact-step job — the instance-passthrough contract),
* a pool of asyncio workers that pull jobs off the queue and run the
  blocking partitioning work in executor threads.

Two protections sit at the submission edge:

* **Rate limiting** — a token bucket per ``client`` key; a drained
  bucket raises :class:`RateLimitedError` (HTTP 429) with a
  ``retry_after_s`` hint.
* **Single-flight coalescing** — submissions whose canonical request
  text (:func:`~repro.service.schemas.canonical_request_text`) matches
  a job already in flight become *followers*: they get their own job
  id and record but never execute; when the leader finishes, its
  payload is fanned out to them with ``cache: "coalesced"``.  N
  identical concurrent submissions therefore run the partitioner
  exactly once (``coalesced_total`` proves it).

Every executed job records its spans into a per-job
:class:`~repro.obs.tracer.Tracer` (thread-confined, so concurrent
workers never share a span stack) which is merged into one
service-level span tree; :meth:`ServiceEngine.run_report` snapshots
that tree plus all cache/queue/engine counters into a standard
:class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.apriori import AprioriParams, AprioriPartitioner
from repro.core.driver import ContactStepDriver
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.ml_rcb import MLRCBParams, MLRCBPartitioner
from repro.core.partitioner import Partitioner, PartitionResult
from repro.graph.digest import digest_arrays
from repro.mesh.io import load_mesh
from repro.obs.report import RunReport
from repro.obs.tracer import Span, Tracer
from repro.partition.config import PartitionOptions
from repro.runtime.backends import build_backend
from repro.runtime.backends.base import Backend
from repro.runtime.ledger import CommLedger, PhaseTotals
from repro.service.cache import ResultCache, result_cache_key
from repro.service.queue import Job, JobQueue, RetryPolicy
from repro.service.schemas import (
    OPTIONS_KEYS,
    SCHEMA_VERSION,
    ServiceSchemaError,
    canonical_request_text,
    validate_job_request,
)
from repro.sim.sequence import (
    ContactSnapshot,
    MeshSequence,
    extract_contact_surface,
    simulate_impact,
)
from repro.sim.projectile import ImpactConfig

__all__ = [
    "EngineConfig",
    "RateLimitedError",
    "ServiceEngine",
    "UnknownJobError",
]


class RateLimitedError(RuntimeError):
    """A client's token bucket is empty (HTTP 429)."""

    def __init__(self, client: str, retry_after_s: float) -> None:
        self.client = client
        self.retry_after_s = retry_after_s
        super().__init__(
            f"client {client!r} is rate-limited; "
            f"retry in {retry_after_s:.2f}s"
        )


class UnknownJobError(KeyError):
    """No job with the requested id (HTTP 404)."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"unknown job {job_id!r}")


class _TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, burst of ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = time.monotonic()

    def take(self) -> Tuple[bool, float]:
        """Try to take one token; returns ``(ok, retry_after_s)``."""
        now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


@dataclass
class EngineConfig:
    """Service engine knobs.

    ``workers``
        Concurrent job executors (each runs blocking fits in its own
        executor thread).
    ``queue_maxsize``
        Pending-job bound; beyond it submissions fail fast with
        :class:`~repro.service.queue.QueueFullError` (HTTP 503).
    ``cache_capacity`` / ``cache_dir``
        In-memory LRU size and the optional disk tier for the
        content-addressed result cache.
    ``backend``
        Execution backend for contact-step jobs: a spec string
        (``"serial"``, ``"thread:4"``, ...) or an already-constructed
        :class:`~repro.runtime.backends.base.Backend` instance, which
        is reused as-is (pooled).
    ``rate_per_s`` / ``rate_burst``
        Per-client token bucket; ``rate_per_s <= 0`` disables
        limiting.
    ``rate_clients_max``
        Bound on distinct per-client buckets kept in memory; beyond it
        refilled (idle) buckets are dropped first, then the stalest —
        arbitrary client strings cannot grow the service without bound.
    ``retry``
        Bounded-backoff retry policy for failed job attempts
        (SupervisorConfig semantics).
    ``job_history``
        Bound on retained job records; the oldest *terminal* records
        beyond it are evicted (their ids then 404 on lookup).
    ``mesh_root``
        When set, ``{"kind": "mesh"}`` sources must resolve under this
        directory; requests for paths outside it are rejected with a
        schema error (HTTP 400).  ``None`` (the default) trusts
        clients with arbitrary server-readable paths — bind such a
        service to localhost only (see ``docs/SERVICE.md``).
    """

    workers: int = 2
    queue_maxsize: int = 64
    cache_capacity: int = 64
    cache_dir: Optional[str] = None
    backend: Union[str, Backend, None] = "serial"
    rate_per_s: float = 0.0
    rate_burst: int = 8
    rate_clients_max: int = 1024
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    job_history: int = 1024
    mesh_root: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.rate_burst < 1:
            raise ValueError("rate_burst must be >= 1")
        if self.rate_clients_max < 1:
            raise ValueError("rate_clients_max must be >= 1")
        if self.job_history < 1:
            raise ValueError("job_history must be >= 1")


def _json_safe(value: Any) -> Any:
    """Diagnostics value → JSON-document form."""
    if isinstance(value, np.ndarray):
        return [float(x) for x in value.ravel()]
    if isinstance(value, np.generic):
        return value.item()
    return value


def _merge_span(dst: Span, src: Span) -> None:
    """Accumulate ``src``'s subtree into ``dst`` (same-name nodes add
    their calls/time/counters; new names are appended)."""
    dst.n_calls += src.n_calls
    dst.total_s += src.total_s
    for name, value in src.counters.items():
        dst.count(name, value)
    for name, child in src.children.items():
        _merge_span(dst.child(name), child)


class ServiceEngine:
    """Asynchronous partitioning service (see module docstring).

    Create and :meth:`start` inside a running event loop; the queue
    and worker tasks bind to it.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.cache = ResultCache(
            capacity=self.config.cache_capacity,
            disk_dir=self.config.cache_dir,
        )
        self.queue = JobQueue(
            maxsize=self.config.queue_maxsize,
            keep_records=self.config.job_history,
        )
        self.started_s = time.time()
        #: engine counters (exposed on /metrics and in run_report)
        self.fits_total = 0
        self.steps_total = 0
        self.coalesced_total = 0
        self.rate_limited_total = 0
        self.retries_total = 0
        self._workers: List["asyncio.Task[None]"] = []
        self._buckets: Dict[str, _TokenBucket] = {}
        self._inflight: Dict[str, Job] = {}
        self._followers: Dict[str, List[Job]] = {}
        #: service-level span tree all job tracers merge into
        self._spans = Span("service")
        self._spans.n_calls = 1
        self._ledger = CommLedger()
        #: memoised snapshot sources (simulating a sequence dominates
        #: small fits; repeat requests against the same scene reuse it)
        self._sources: "OrderedDict[str, MeshSequence]" = OrderedDict()
        self._exec_lock = threading.Lock()  # cache/counter/span merges
        self._source_lock = threading.Lock()
        self._backend_lock = threading.Lock()  # pooled backend is shared
        self._backend: Optional[Backend] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._workers:
            return
        loop = asyncio.get_event_loop()
        for _ in range(self.config.workers):
            self._workers.append(loop.create_task(self._worker()))

    async def stop(self) -> None:
        """Cancel the workers and release the pooled backend."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        # the lock may be held by an executor worker mid-execution and
        # Backend.close() can block on pool teardown — neither belongs
        # on the event loop
        await asyncio.get_event_loop().run_in_executor(
            None, self._close_backend
        )

    def _close_backend(self) -> None:
        """Detach and close the pooled backend (executor context)."""
        with self._backend_lock:
            backend, self._backend = self._backend, None
        if backend is not None and not isinstance(
            self.config.backend, Backend
        ):
            backend.close()

    # ------------------------------------------------------------------
    # submission edge
    # ------------------------------------------------------------------
    def submit(self, document: object) -> Job:
        """Validate, rate-limit, coalesce, and enqueue one request.

        Returns the (possibly follower) job.  Raises
        :class:`~repro.service.schemas.ServiceSchemaError`,
        :class:`RateLimitedError`, or
        :class:`~repro.service.queue.QueueFullError`.
        """
        request = validate_job_request(document)
        self._check_mesh_root(request["source"])
        self._check_rate(request["client"])
        key = canonical_request_text(request)
        leader = self._inflight.get(key)
        if leader is not None and not leader.terminal:
            follower = Job(
                id=f"job-c{self.queue.submitted:06d}",
                request=request,
                submitted_s=time.time(),
                deadline_s=(
                    None
                    if request["deadline_s"] is None
                    else time.monotonic() + request["deadline_s"]
                ),
                coalesced=True,
            )
            self.queue.register(follower)
            self._followers.setdefault(key, []).append(follower)
            self.coalesced_total += 1
            return follower
        job = self.queue.submit(request, deadline_s=request["deadline_s"])
        self._inflight[key] = job
        return job

    def _check_mesh_root(self, source: Dict[str, Any]) -> None:
        """Reject mesh paths outside the configured allowlist root."""
        root = self.config.mesh_root
        if root is None or source["kind"] != "mesh":
            return
        # realpath here is bounded metadata-only symlink resolution on
        # an already-validated path; moving it to the executor would
        # make admission asynchronous and lose the synchronous 400 the
        # HTTP contract promises, for microseconds of loop time
        root_real = os.path.realpath(root)  # repro-lint: disable=ASYNC001 bounded metadata-only probe, see above
        path_real = os.path.realpath(source["path"])  # repro-lint: disable=ASYNC001 bounded metadata-only probe, see above
        try:
            inside = os.path.commonpath([root_real, path_real]) == root_real
        except ValueError:  # pragma: no cover - mixed drives on Windows
            inside = False
        if not inside:
            raise ServiceSchemaError(
                "$.source.path",
                f"must resolve under the configured mesh root {root!r}",
            )

    def _check_rate(self, client: str) -> None:
        if self.config.rate_per_s <= 0:
            return
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self.config.rate_clients_max:
                self._prune_buckets()
            bucket = self._buckets[client] = _TokenBucket(
                self.config.rate_per_s, self.config.rate_burst
            )
        ok, retry_after = bucket.take()
        if not ok:
            self.rate_limited_total += 1
            raise RateLimitedError(client, retry_after)

    def _prune_buckets(self) -> None:
        """Bound the per-client bucket map.  A bucket idle long enough
        to have refilled to ``burst`` behaves exactly like a fresh one,
        so dropping it is lossless; if every bucket is still active the
        stalest are dropped to enforce the hard cap."""
        now = time.monotonic()
        refilled = [
            client
            for client, bucket in self._buckets.items()
            if bucket.tokens + (now - bucket.stamp) * bucket.rate
            >= bucket.burst
        ]
        for client in refilled:
            del self._buckets[client]
        while len(self._buckets) >= self.config.rate_clients_max:
            stalest = min(
                self._buckets, key=lambda c: self._buckets[c].stamp
            )
            del self._buckets[stalest]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        """The job registered under ``job_id`` or
        :class:`UnknownJobError`."""
        job = self.queue.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a job (see :meth:`JobQueue.cancel`).

        A cancelled in-flight leader is settled immediately so its
        coalesced followers resolve now rather than when the dead job
        eventually drains from the FIFO.
        """
        job = self.job(job_id)
        cancelled = self.queue.cancel(job_id)
        if cancelled:
            self._settle(job)
        return cancelled

    async def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.job(job_id)
        if not job.terminal:
            await asyncio.wait_for(job.done_event.wait(), timeout_s)
        return job

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """All engine/queue/cache counters as one flat mapping."""
        out: Dict[str, int] = {
            "fits_total": self.fits_total,
            "steps_total": self.steps_total,
            "coalesced_total": self.coalesced_total,
            "rate_limited_total": self.rate_limited_total,
            "retries_total": self.retries_total,
            "queue_submitted": self.queue.submitted,
            "queue_rejected": self.queue.rejected,
            "queue_expired": self.queue.expired,
            "queue_cancelled": self.queue.cancelled,
            "queue_depth": len(self.queue),
        }
        for name, value in self.cache.stats.as_dict().items():
            out[f"cache_{name}"] = value
        return out

    def run_report(self) -> RunReport:
        """Snapshot the merged job spans, the service ledger, and every
        counter into a standard :class:`RunReport`."""
        with self._exec_lock:
            root = Span("service")
            root.n_calls = 1
            _merge_span(root, self._spans)
            root.n_calls = 1
            root.total_s = root.children_s
            comm = dict(self._ledger.summary())
            meta: Dict[str, Union[str, int, float, bool, None]] = {
                "service_schema": SCHEMA_VERSION,
                "uptime_s": time.time() - self.started_s,
            }
            meta.update(self.counters())
        return RunReport(spans=root, comm=comm, meta=meta)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self.queue.take()
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # pragma: no cover - last resort
                if not job.terminal:
                    job.error = f"internal error: {exc}"
                    job.transition("failed")
                self._settle(job)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_event_loop()
        policy = self.config.retry
        while True:
            if job.terminal:  # cancelled/expired before a worker got it
                break
            if job.expired():
                self.queue.mark_expired(job)
                break
            job.transition("running")
            try:
                payload = await loop.run_in_executor(
                    None, self._execute, job
                )
            except Exception as exc:
                job.error = str(exc) or type(exc).__name__
                if job.terminal:  # cancelled mid-attempt
                    break
                if job.expired():
                    self.queue.mark_expired(job)
                    break
                if job.retries >= policy.max_retries:
                    job.transition("failed")
                    break
                delay = policy.delay(job.retries)
                job.retries += 1
                self.retries_total += 1
                job.transition("queued")
                await asyncio.sleep(delay)
                continue
            if job.terminal:  # cancelled mid-attempt; drop the payload
                break
            job.result = payload
            job.error = None
            job.transition("done")
            break
        self._settle(job)

    def _settle(self, job: Job) -> None:
        """Fan the leader's outcome out to coalesced followers and
        retire the in-flight entry.

        Idempotent: runs from :meth:`cancel` as soon as a queued leader
        is cancelled *and* again when the dead job drains from the
        FIFO; whichever comes second is a no-op.  Followers whose own
        deadline has passed expire here instead of receiving the
        leader's outcome (they never pass through the queue, so this is
        where their ``deadline_s`` is enforced).
        """
        key = canonical_request_text(job.request)
        if self._inflight.get(key) is not job:
            return
        del self._inflight[key]
        followers = self._followers.pop(key, [])
        for follower in followers:
            if follower.terminal:
                continue
            if follower.expired():
                self.queue.mark_expired(follower)
                continue
            if job.state == "done":
                payload = dict(job.result or {})
                payload["id"] = follower.id
                if payload.get("kind") == "partition":
                    payload["cache"] = "coalesced"
                follower.cache = "coalesced"
                follower.result = payload
                follower.transition("running")
                follower.transition("done")
            elif job.state in ("cancelled", "expired"):
                follower.error = f"coalesced leader {job.id} {job.state}"
                follower.transition(job.state)
            else:
                follower.error = (
                    f"coalesced leader {job.id} failed: {job.error}"
                )
                follower.retries = job.retries
                follower.transition("running")
                follower.transition("failed")

    # ------------------------------------------------------------------
    # blocking execution (runs in executor threads)
    # ------------------------------------------------------------------
    def _execute(self, job: Job) -> Dict[str, Any]:
        tracer = Tracer("job")
        try:
            if job.request["kind"] == "partition":
                return self._execute_partition(job, tracer)
            return self._execute_contact_step(job, tracer)
        finally:
            root = tracer.finish()
            with self._exec_lock:
                kind = self._spans.child(job.request["kind"])
                _merge_span(kind, root)
                # the per-job root counts one call per *attempt*
                kind.n_calls = max(kind.n_calls - 1, 1)

    def _execute_partition(
        self, job: Job, tracer: Tracer
    ) -> Dict[str, Any]:
        request = job.request
        with tracer.span("source"):
            snapshot = self._snapshot(request["source"])
        key = result_cache_key(
            snapshot,
            request["partitioner"],
            request["k"],
            request["config"],
        )
        if request["cache"]:
            with tracer.span("cache-lookup"):
                cached = self.cache.get(key)
            if cached is not None:
                job.cache = "hit"
                tracer.count("cache_hits")
                return self._partition_payload(job, cached, key, "hit")
        job.cache = "miss"
        partitioner = self._make_partitioner(
            request["partitioner"], request["k"], request["config"]
        )
        ledger = CommLedger()
        result = partitioner.fit(snapshot, tracer=tracer, ledger=ledger)
        with self._exec_lock:
            self.fits_total += 1
            self._merge_comm(ledger.summary())
        if request["cache"]:
            result = self.cache.put(key, result)
        return self._partition_payload(job, result, key, "miss")

    def _partition_payload(
        self,
        job: Job,
        result: PartitionResult,
        key: str,
        cache_state: str,
    ) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "id": job.id,
            "kind": "partition",
            "method": result.method,
            "k": result.k,
            "cache": cache_state,
            "content_key": key,
            "labels": [int(x) for x in result.labels],
            "diagnostics": {
                name: _json_safe(value)
                for name, value in result.diagnostics.items()
            },
        }

    def _execute_contact_step(
        self, job: Job, tracer: Tracer
    ) -> Dict[str, Any]:
        request = job.request
        steps = request["steps"]
        with tracer.span("source"):
            snapshots = self._step_snapshots(request["source"], steps)
        params = self._mcml_params(request["config"])
        # the pooled backend (and the sequence cache behind it) is not
        # reentrant — contact-step jobs serialise on it
        with self._backend_lock:
            driver = ContactStepDriver(
                request["k"],
                params,
                tracer=tracer,
                backend=self._backend_instance(),
            )
            driver.initialize(snapshots[0])
            n_candidates = 0
            for snap in snapshots:
                step_result = driver.step(snap)
                n_candidates += step_result.n_candidates
            part = driver.partitioner.part
            if part is None:  # pragma: no cover - initialize() sets it
                raise RuntimeError("driver finished without a partition")
            labels_digest = digest_arrays({"part": part})
            comm = dict(driver.ledger.summary())
        with self._exec_lock:
            self.fits_total += 1  # driver.initialize() fits once
            self.steps_total += steps
            self._merge_comm(comm)
        return {
            "schema": SCHEMA_VERSION,
            "id": job.id,
            "kind": "contact-step",
            "k": request["k"],
            "steps": steps,
            "n_candidates": n_candidates,
            "labels_digest": labels_digest,
            "comm": {
                phase: {"n_messages": msgs, "n_items": items}
                for phase, (msgs, items) in sorted(comm.items())
            },
        }

    def _merge_comm(self, comm: Dict[str, Tuple[int, int]]) -> None:
        """Fold one job's phase totals into the service ledger (call
        under ``_exec_lock``)."""
        for phase, (msgs, items) in comm.items():
            totals = self._ledger.phases.setdefault(phase, PhaseTotals())
            totals.n_messages += msgs
            totals.n_items += items

    # ------------------------------------------------------------------
    # job inputs
    # ------------------------------------------------------------------
    def _backend_instance(self) -> Backend:
        if self._backend is None:
            self._backend = build_backend(self.config.backend or "serial")
        return self._backend

    def _sequence(self, source: Dict[str, Any]) -> MeshSequence:
        """Memoised source materialisation (LRU of 4 scenes)."""
        key = canonical_request_text(source)
        with self._source_lock:
            seq = self._sources.get(key)
            if seq is not None:
                self._sources.move_to_end(key)
                return seq
        if source["kind"] == "impact":
            config = ImpactConfig(
                n_steps=source["n_steps"], refine=source["refine"]
            )
            seq = simulate_impact(config)
        else:
            mesh = load_mesh(source["path"])
            faces, owner, cnodes = extract_contact_surface(
                mesh, source["capture_radius"]
            )
            seq = MeshSequence(
                snapshots=[
                    ContactSnapshot(
                        mesh=mesh,
                        contact_faces=faces,
                        contact_face_owner=owner,
                        contact_nodes=cnodes,
                        step=0,
                        time=0.0,
                        tip_z=0.0,
                    )
                ],
                config=ImpactConfig(n_steps=1),
            )
        with self._source_lock:
            self._sources[key] = seq
            self._sources.move_to_end(key)
            while len(self._sources) > 4:
                self._sources.popitem(last=False)
        return seq

    def _snapshot(self, source: Dict[str, Any]) -> ContactSnapshot:
        seq = self._sequence(source)
        index = source["snapshot"] if source["kind"] == "impact" else 0
        return seq[index]

    def _step_snapshots(
        self, source: Dict[str, Any], steps: int
    ) -> List[ContactSnapshot]:
        seq = self._sequence(source)
        if source["kind"] == "mesh":
            # a static scene: the driver re-steps the same snapshot
            return [seq[0]] * steps
        return list(seq.snapshots[:steps])

    # ------------------------------------------------------------------
    @staticmethod
    def _mcml_params(config: Dict[str, Any]) -> MCMLDTParams:
        params, options = _split_config(config)
        return MCMLDTParams(options=PartitionOptions(**options), **params)

    @staticmethod
    def _make_partitioner(
        name: str, k: int, config: Dict[str, Any]
    ) -> Partitioner:
        params, options = _split_config(config)
        opts = PartitionOptions(**options)
        if name == "mcml-dt":
            return MCMLDTPartitioner(
                k, MCMLDTParams(options=opts, **params)
            )
        if name == "ml-rcb":
            return MLRCBPartitioner(k, MLRCBParams(options=opts, **params))
        if name == "apriori":
            return AprioriPartitioner(
                k, AprioriParams(options=opts, **params)
            )
        raise ValueError(f"unknown partitioner {name!r}")  # unreachable


def _split_config(
    config: Dict[str, Any]
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Split a validated config into (params kwargs, options kwargs)."""
    params = {
        key: value
        for key, value in config.items()
        if key not in OPTIONS_KEYS
    }
    options = {
        key: value for key, value in config.items() if key in OPTIONS_KEYS
    }
    return params, options
