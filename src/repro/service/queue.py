"""The bounded async job queue: admission, deadlines, retries.

The queue is the engine's pressure valve.  Submissions beyond
``maxsize`` fail fast with :class:`QueueFullError` (the HTTP layer
turns that into ``503``) instead of buffering unboundedly; each
:class:`Job` carries an absolute wall-clock deadline (from the
request's ``deadline_s``) that is checked both before a worker starts
the job and while it retries, so stale work is dropped as ``expired``
rather than executed late.

Retries reuse the :class:`~repro.runtime.backends.process.SupervisorConfig`
semantics verbatim — ``max_retries`` attempts after the first, with
exponential backoff ``backoff_base_s * backoff_factor**n`` — via the
standalone :class:`RetryPolicy` so the service and the SPMD runtime
share one retry vocabulary.

Jobs are plain mutable records; all state transitions go through
:meth:`Job.transition` which enforces the legal state machine
(``queued → running → done|failed|expired``, with ``cancelled``
reachable from any non-terminal state) so a bug cannot silently
resurrect a finished job.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.service.schemas import (
    JOB_STATES,
    SCHEMA_VERSION,
)

__all__ = [
    "Job",
    "JobQueue",
    "QueueFullError",
    "RetryPolicy",
]

#: legal state-machine edges (see module docstring)
_TRANSITIONS = {
    "queued": ("running", "cancelled", "expired"),
    "running": ("done", "failed", "expired", "cancelled", "queued"),
    "done": (),
    "failed": (),
    "cancelled": (),
    "expired": (),
}

_TERMINAL = ("done", "failed", "cancelled", "expired")


class QueueFullError(RuntimeError):
    """The bounded queue rejected a submission (backpressure)."""


@dataclass
class RetryPolicy:
    """Bounded exponential backoff, SupervisorConfig-compatible.

    ``max_retries`` retries after the initial attempt; retry ``n``
    (0-based) sleeps ``backoff_base_s * backoff_factor**n``, capped at
    ``backoff_cap_s``.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, retry: int) -> float:
        """Backoff before 0-based retry number ``retry``."""
        if retry < 0:
            raise ValueError("retry index must be >= 0")
        return min(
            self.backoff_base_s * self.backoff_factor ** retry,
            self.backoff_cap_s,
        )


@dataclass
class Job:
    """One submitted unit of work and its full lifecycle record."""

    id: str
    request: Dict[str, Any]
    submitted_s: float
    deadline_s: Optional[float] = None  # absolute wall-clock deadline
    state: str = "queued"
    retries: int = 0
    error: Optional[str] = None
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: how the result was produced: "hit" | "miss" | "coalesced" | None
    cache: Optional[str] = None
    #: True when this job reused another in-flight job's execution
    coalesced: bool = False
    #: the produced result payload (engine-internal, not serialised)
    result: Optional[Any] = None
    #: resolved when the job reaches a terminal state
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in _TERMINAL

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the job's absolute deadline has passed."""
        if self.deadline_s is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_s

    def transition(self, state: str) -> None:
        """Move to ``state``, enforcing the legal state machine."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal transition {self.state!r} -> {state!r} "
                f"for job {self.id}"
            )
        self.state = state
        if state == "running" and self.started_s is None:
            self.started_s = time.time()
        if state in _TERMINAL:
            self.finished_s = time.time()
            self.done_event.set()

    def record(self) -> Dict[str, Any]:
        """The job as a ``repro.service-job/1`` record document."""
        return {
            "schema": SCHEMA_VERSION,
            "id": self.id,
            "state": self.state,
            "kind": self.request["kind"],
            "client": self.request["client"],
            "cache": self.cache,
            "coalesced": self.coalesced,
            "retries": self.retries,
            "error": self.error,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "request": self.request,
        }


class JobQueue:
    """Bounded FIFO of queued jobs plus the id → job registry.

    Construct inside the event loop that will run the workers (the
    underlying primitives bind to the running loop on Python 3.9).
    """

    def __init__(self, maxsize: int = 64, keep_records: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("queue maxsize must be >= 1")
        if keep_records < 1:
            raise ValueError("keep_records must be >= 1")
        self.maxsize = maxsize
        #: registry bound: beyond it the oldest *terminal* records are
        #: evicted (their ids then 404) so a long-running service does
        #: not grow without bound
        self.keep_records = keep_records
        self._queue: "asyncio.Queue[Job]" = asyncio.Queue(maxsize=maxsize)
        self._jobs: Dict[str, Job] = {}
        self._counter = itertools.count()
        #: monotonic counters for /metrics
        self.submitted = 0
        self.rejected = 0
        self.expired = 0
        self.cancelled = 0

    def __len__(self) -> int:
        return self._queue.qsize()

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    # ------------------------------------------------------------------
    def submit(
        self,
        request: Dict[str, Any],
        deadline_s: Optional[float] = None,
    ) -> Job:
        """Create a job for a *validated* request and enqueue it.

        ``deadline_s`` is the request's relative budget; it becomes an
        absolute monotonic deadline here.  Raises
        :class:`QueueFullError` when the queue is at capacity.
        """
        job = Job(
            id=f"job-{next(self._counter):06d}",
            request=request,
            submitted_s=time.time(),
            deadline_s=(
                None
                if deadline_s is None
                else time.monotonic() + deadline_s
            ),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.rejected += 1
            raise QueueFullError(
                f"queue full ({self.maxsize} jobs pending)"
            ) from None
        self._jobs[job.id] = job
        self.submitted += 1
        self._prune()
        return job

    def register(self, job: Job) -> None:
        """Track a job that bypasses the FIFO (coalesced followers)."""
        self._jobs[job.id] = job
        self.submitted += 1
        self._prune()

    def _prune(self) -> None:
        """Evict the oldest terminal records beyond ``keep_records``.

        Live (non-terminal) jobs are never evicted; they are bounded by
        ``maxsize`` plus the worker count, so the scan below touches a
        small prefix before finding evictable records.
        """
        excess = len(self._jobs) - self.keep_records
        if excess <= 0:
            return
        drop = []
        for job_id, job in self._jobs.items():
            if excess <= 0:
                break
            if job.terminal:
                drop.append(job_id)
                excess -= 1
        for job_id in drop:
            del self._jobs[job_id]

    async def take(self) -> Job:
        """Next job off the FIFO (blocks).  A job already cancelled or
        past its deadline is still *returned* (marked ``expired`` first
        if needed): the worker must observe every job leaving the queue
        so coalesced followers waiting on it are settled rather than
        stranded."""
        job = await self._queue.get()
        if not job.terminal and job.expired():
            self.mark_expired(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job registered under ``job_id``, if any."""
        return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a non-terminal job; ``False`` when unknown or
        already terminal.  Running jobs finish their current attempt
        but stop retrying."""
        job = self._jobs.get(job_id)
        if job is None or job.terminal:
            return False
        job.error = "cancelled by client"
        job.transition("cancelled")
        self.cancelled += 1
        return True

    def mark_expired(self, job: Job) -> None:
        """Record a deadline miss."""
        job.error = "deadline expired before completion"
        job.transition("expired")
        self.expired += 1

    def states(self) -> Dict[str, int]:
        """Current job count per state (for /metrics and health)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts
