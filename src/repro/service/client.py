"""Programmatic client for the partitioning service.

:class:`ServiceClient` wraps the HTTP API in typed helpers over
:mod:`http.client` (stdlib only, one short-lived connection per call —
the server closes connections anyway):

    with ServerThread() as srv:
        client = ServiceClient(srv.address)
        record = client.submit(kind="partition", k=8,
                               source={"kind": "impact", "n_steps": 4})
        result = client.result(record["id"], wait_s=30.0)
        labels = result["labels"]

Non-2xx responses raise :class:`ServiceError` carrying the HTTP status
and the server's JSON error body, so callers can branch on
``exc.status == 429`` (rate limited) or ``503`` (queue full).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Mapping, Optional

from repro.service.schemas import (
    SCHEMA_VERSION,
    validate_job_record,
    validate_result,
)

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response.

    ``status`` is the HTTP status code; ``body`` the decoded JSON
    error document (``{}`` when the body was not JSON).
    """

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        self.status = status
        self.body = body
        message = body.get("error") if isinstance(body, dict) else None
        super().__init__(f"HTTP {status}: {message or 'service error'}")


class ServiceClient:
    """Synchronous client bound to one ``host:port``."""

    def __init__(self, address: str, timeout_s: float = 60.0) -> None:
        host, _, port = address.partition(":")
        if not host or not port:
            raise ValueError(
                f"address must be 'host:port', got {address!r}"
            )
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # raw transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> Any:
        """One HTTP exchange; raises :class:`ServiceError` on non-2xx.

        ``timeout_s`` overrides the connection default for this call
        (long-polling endpoints must outlive their ``wait`` budget).
        """
        conn = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s,
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            decoded: Any = json.loads(raw.decode("utf-8"))
        else:
            decoded = raw.decode("utf-8")
        if response.status >= 300:
            raise ServiceError(
                response.status,
                decoded if isinstance(decoded, dict) else {},
            )
        return decoded

    # ------------------------------------------------------------------
    # typed endpoints
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        k: int,
        source: Mapping[str, Any],
        partitioner: str = "mcml-dt",
        config: Optional[Mapping[str, Any]] = None,
        steps: int = 1,
        client: str = "anonymous",
        deadline_s: Optional[float] = None,
        cache: bool = True,
    ) -> Dict[str, Any]:
        """Submit a job; returns the (schema-checked) job record."""
        document: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "k": k,
            "partitioner": partitioner,
            "config": dict(config or {}),
            "source": dict(source),
            "steps": steps,
            "client": client,
            "deadline_s": deadline_s,
            "cache": cache,
        }
        return validate_job_record(
            self.request("POST", "/v1/jobs", document)
        )

    def submit_document(self, document: Mapping[str, Any]) -> Dict[str, Any]:
        """Submit a pre-built request document verbatim."""
        return validate_job_record(
            self.request("POST", "/v1/jobs", dict(document))
        )

    def status(
        self, job_id: str, wait_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """The job record; ``wait_s`` long-polls until terminal.

        The socket timeout is widened to cover ``wait_s`` so a slow
        job long-polls to completion instead of tripping the shorter
        connection default.
        """
        path = f"/v1/jobs/{job_id}"
        if wait_s is not None:
            path += f"?wait={wait_s:g}"
        return validate_job_record(
            self.request("GET", path, timeout_s=self._poll_timeout(wait_s))
        )

    def result(
        self, job_id: str, wait_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """The result document once the job is done (409 before);
        ``wait_s`` long-polls with a widened socket timeout (see
        :meth:`status`)."""
        path = f"/v1/jobs/{job_id}/result"
        if wait_s is not None:
            path += f"?wait={wait_s:g}"
        return validate_result(
            self.request("GET", path, timeout_s=self._poll_timeout(wait_s))
        )

    def _poll_timeout(self, wait_s: Optional[float]) -> Optional[float]:
        """Socket timeout for a long-poll: the server holds the
        response up to ``wait_s``, so allow that plus a margin (never
        less than the connection default)."""
        if wait_s is None:
            return None
        return max(self.timeout_s, wait_s + 10.0)

    def cancel(self, job_id: str) -> bool:
        """Cancel the job; ``True`` when the cancel landed."""
        response = self.request("DELETE", f"/v1/jobs/{job_id}")
        return bool(response.get("cancelled"))

    def report(self) -> Dict[str, Any]:
        """The engine's ``repro.run-report/1`` document."""
        document = self.request("GET", "/v1/report")
        if not isinstance(document, dict):
            raise ServiceError(500, {"error": "malformed report"})
        return document

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` body."""
        document = self.request("GET", "/healthz")
        if not isinstance(document, dict):
            raise ServiceError(500, {"error": "malformed health body"})
        return document

    def metrics(self) -> Dict[str, float]:
        """Parsed ``/metrics``: ``{metric_name or name{labels}: value}``."""
        text = self.request("GET", "/metrics")
        if not isinstance(text, str):
            raise ServiceError(500, {"error": "malformed metrics body"})
        values: Dict[str, float] = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            values[name] = float(value)
        return values

    # ------------------------------------------------------------------
    def partition(
        self,
        k: int,
        source: Mapping[str, Any],
        partitioner: str = "mcml-dt",
        config: Optional[Mapping[str, Any]] = None,
        wait_s: float = 300.0,
        **submit_kwargs: Any,
    ) -> Dict[str, Any]:
        """Submit a partition job and block for its result."""
        record = self.submit(
            "partition",
            k,
            source,
            partitioner=partitioner,
            config=config,
            **submit_kwargs,
        )
        return self.result(record["id"], wait_s=wait_s)

    def labels(self, result_document: Mapping[str, Any]) -> List[int]:
        """The label vector out of a partition result document."""
        labels = result_document.get("labels")
        if not isinstance(labels, list):
            raise ValueError("not a partition result document")
        return [int(x) for x in labels]
