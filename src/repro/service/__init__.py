"""Partitioning-as-a-service: async job engine + content-addressed cache.

The serving layer over the unified
:class:`~repro.core.partitioner.Partitioner` protocol (ROADMAP item 3).
A :class:`~repro.service.engine.ServiceEngine` accepts versioned JSON
job requests (``repro.service-job/1`` — :mod:`repro.service.schemas`),
queues them on a bounded async queue with per-job deadlines and
bounded-backoff retries (:mod:`repro.service.queue`), executes them on
one resolved execution backend with single-flight coalescing and
per-client token-bucket rate limiting (:mod:`repro.service.engine`),
and caches every ``PartitionResult`` in a content-addressed LRU+disk
store keyed by the canonical graph digest
(:mod:`repro.service.cache`, :mod:`repro.graph.digest`) so repeat
traffic is an O(1) hit instead of a recomputation.

:mod:`repro.service.http` serves the engine over a stdlib-only
HTTP/1.1 JSON API (submit / poll / fetch / health / Prometheus
metrics); :mod:`repro.service.client` is the matching programmatic
client and ``repro-serve`` (:mod:`repro.service.cli`) the launcher.
See ``docs/SERVICE.md``.
"""

from repro.service.cache import CacheStats, ResultCache, result_cache_key
from repro.service.engine import (
    EngineConfig,
    RateLimitedError,
    ServiceEngine,
    UnknownJobError,
)
from repro.service.queue import (
    Job,
    JobQueue,
    QueueFullError,
    RetryPolicy,
)
from repro.service.schemas import (
    JOB_KINDS,
    JOB_STATES,
    SCHEMA_VERSION,
    ServiceSchemaError,
    validate_job_record,
    validate_job_request,
    validate_result,
)

__all__ = [
    "CacheStats",
    "EngineConfig",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "QueueFullError",
    "RateLimitedError",
    "ResultCache",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "ServiceEngine",
    "ServiceSchemaError",
    "UnknownJobError",
    "result_cache_key",
    "validate_job_record",
    "validate_job_request",
    "validate_result",
]
