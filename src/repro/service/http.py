"""Stdlib-only HTTP/1.1 front end for the service engine.

No web framework: :class:`ServiceServer` speaks just enough HTTP/1.1
over ``asyncio.start_server`` for a JSON API — request line, headers,
``Content-Length`` body, ``Connection: close`` responses.  Endpoints:

=======  ==========================  =====================================
method   path                        behaviour
=======  ==========================  =====================================
POST     ``/v1/jobs``                submit a job request → 202 + record
GET      ``/v1/jobs/<id>``           poll the job record (``?wait=SECS``
                                     long-polls until terminal)
GET      ``/v1/jobs/<id>/result``    the result document (409 + record
                                     until the job is ``done``)
DELETE   ``/v1/jobs/<id>``           cancel → 200 ``{"cancelled": ...}``
GET      ``/v1/report``              the engine's ``RunReport`` JSON
GET      ``/healthz``                liveness + job-state counts
GET      ``/metrics``                Prometheus text exposition
=======  ==========================  =====================================

Error mapping: schema violations → 400 (with the JSON path in the
body), rate limiting → 429 (+ ``Retry-After``), a full queue → 503,
unknown ids → 404.

:class:`ServerThread` hosts an engine + server on a dedicated event
loop in a background thread — the bridge for synchronous callers
(tests, :class:`~repro.service.client.ServiceClient` examples) since
all asyncio primitives must be created on the loop that runs them.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.engine import (
    EngineConfig,
    RateLimitedError,
    ServiceEngine,
    UnknownJobError,
)
from repro.service.queue import QueueFullError
from repro.service.schemas import JOB_STATES, ServiceSchemaError

__all__ = [
    "ServerThread",
    "ServiceServer",
    "render_metrics",
]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: submission bodies larger than this are rejected outright
MAX_BODY_BYTES = 4 * 1024 * 1024


def render_metrics(engine: ServiceEngine) -> str:
    """The engine counters in Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in sorted(engine.counters().items()):
        metric = f"repro_service_{name}"
        kind = "gauge" if name == "queue_depth" else "counter"
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric} {value}")
    lines.append("# TYPE repro_service_jobs gauge")
    states = engine.queue.states()
    for state in JOB_STATES:
        lines.append(
            f'repro_service_jobs{{state="{state}"}} {states[state]}'
        )
    return "\n".join(lines) + "\n"


class _HttpError(Exception):
    """Internal routing error carrying the response to send."""

    def __init__(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.payload = payload
        self.headers = headers or {}
        super().__init__(payload.get("error", ""))


class ServiceServer:
    """One engine behind an ``asyncio.start_server`` JSON API.

    Construct and :meth:`start` inside a running event loop.  With
    ``port=0`` the OS picks an ephemeral port, published as
    :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        engine: ServiceEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the engine workers and begin listening."""
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop listening and shut the engine down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.engine.stop()

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's main loop)."""
        if self._server is None:
            await self.start()
        server = self._server
        if server is None:  # pragma: no cover - start() always sets it
            raise RuntimeError("server failed to start")
        async with server:
            await server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, target, body = parsed
            split = urlsplit(target)
            query = {
                key: values[-1]
                for key, values in parse_qs(split.query).items()
            }
            try:
                status, payload, headers = await self._route(
                    method, split.path, query, body
                )
            except _HttpError as exc:
                status, payload, headers = exc.status, exc.payload, exc.headers
            except (BrokenPipeError, ConnectionResetError):
                raise
            except Exception as exc:  # noqa: BLE001 - boundary
                status = 500
                payload = {"error": f"internal error: {exc}"}
                headers = {}
            if isinstance(payload, str):
                data = payload.encode("utf-8")
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            else:
                data = (json.dumps(payload, indent=2) + "\n").encode(
                    "utf-8"
                )
                ctype = "application/json"
            head = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(data)}",
                "Connection: close",
            ]
            for name, value in headers.items():
                head.append(f"{name}: {value}")
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("utf-8") + data
            )
            await writer.drain()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        """Parse one request; ``None`` for EOF/garbage (drop silently)."""
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        if content_length > MAX_BODY_BYTES:
            return None
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method, target, body

    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, Any, Dict[str, str]]:
        engine = self.engine
        if path == "/v1/jobs" and method == "POST":
            return 202, self._submit(body), {}
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if tail == "" and method == "GET":
                return 200, (await self._poll(job_id, query)), {}
            if tail == "" and method == "DELETE":
                cancelled = self._cancel(job_id)
                return 200, {"id": job_id, "cancelled": cancelled}, {}
            if tail == "result" and method == "GET":
                return await self._result(job_id, query)
            raise _HttpError(405, {"error": "method not allowed"})
        if path == "/v1/report" and method == "GET":
            # run_report holds the engine's execution lock while it
            # merges span trees — an executor worker may hold that lock
            # for a whole fit, so the wait must not stall the loop
            report = await asyncio.get_event_loop().run_in_executor(
                None, engine.run_report
            )
            return 200, report.to_dict(), {}
        if path == "/healthz" and method == "GET":
            return (
                200,
                {
                    "status": "ok",
                    "schema": "repro.service-job/1",
                    "jobs": engine.queue.states(),
                },
                {},
            )
        if path == "/metrics" and method == "GET":
            return 200, render_metrics(engine), {}
        raise _HttpError(404, {"error": f"no route {method} {path}"})

    def _submit(self, body: bytes) -> Dict[str, Any]:
        try:
            document = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(
                400, {"error": f"request body is not JSON: {exc}"}
            ) from None
        try:
            job = self.engine.submit(document)
        except ServiceSchemaError as exc:
            raise _HttpError(
                400, {"error": str(exc), "path": exc.path}
            ) from None
        except RateLimitedError as exc:
            raise _HttpError(
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                {"Retry-After": f"{exc.retry_after_s:.3f}"},
            ) from None
        except QueueFullError as exc:
            raise _HttpError(503, {"error": str(exc)}) from None
        return job.record()

    async def _poll(
        self, job_id: str, query: Dict[str, str]
    ) -> Dict[str, Any]:
        job = self._job(job_id)
        wait_s = self._wait_param(query)
        if wait_s and not job.terminal:
            try:
                await asyncio.wait_for(job.done_event.wait(), wait_s)
            except asyncio.TimeoutError:
                pass
        return job.record()

    async def _result(
        self, job_id: str, query: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        job = self._job(job_id)
        wait_s = self._wait_param(query)
        if wait_s and not job.terminal:
            try:
                await asyncio.wait_for(job.done_event.wait(), wait_s)
            except asyncio.TimeoutError:
                pass
        if job.state == "done" and job.result is not None:
            return 200, job.result, {}
        return 409, {"error": "job is not done", "job": job.record()}, {}

    def _cancel(self, job_id: str) -> bool:
        try:
            return self.engine.cancel(job_id)
        except UnknownJobError:
            raise _HttpError(
                404, {"error": f"unknown job {job_id!r}"}
            ) from None

    def _job(self, job_id: str) -> Any:
        try:
            return self.engine.job(job_id)
        except UnknownJobError:
            raise _HttpError(
                404, {"error": f"unknown job {job_id!r}"}
            ) from None

    @staticmethod
    def _wait_param(query: Dict[str, str]) -> Optional[float]:
        raw = query.get("wait")
        if raw is None:
            return None
        try:
            wait_s = float(raw)
        except ValueError:
            raise _HttpError(
                400, {"error": "wait must be a number of seconds"}
            ) from None
        return max(0.0, min(wait_s, 300.0))


class ServerThread:
    """A server on its own event loop in a daemon thread.

    For synchronous callers: ``with ServerThread() as address:`` gives
    a live ``host:port`` backed by a private engine; everything shuts
    down on exit.  The engine is built *inside* the loop thread so all
    asyncio primitives bind correctly (Python 3.9 semantics).
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._config = config
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ServiceServer] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        """Launch and block until the port is bound."""
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            )
        if self._server is None:
            raise RuntimeError("service failed to start within 30s")
        return self

    def stop(self) -> None:
        """Shut the server and its loop down; joins the thread."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        server = self._server

        async def _shutdown() -> None:
            if server is not None:
                await server.stop()
            loop.stop()

        asyncio.run_coroutine_threadsafe(_shutdown(), loop)
        self._thread.join(timeout=30.0)

    @property
    def engine(self) -> ServiceEngine:
        """The engine behind the server (inspect counters in tests)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.engine

    @property
    def address(self) -> str:
        """``host:port`` once started."""
        if self._server is None:
            raise RuntimeError("server not started")
        return f"{self._host}:{self._server.port}"

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            engine = ServiceEngine(self._config)
            server = ServiceServer(engine, self._host, self._port)
            loop.run_until_complete(server.start())
            self._server = server
            self._ready.set()
            loop.run_forever()
        except BaseException as exc:  # pragma: no cover - startup failure
            self._startup_error = exc
            self._ready.set()
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()
