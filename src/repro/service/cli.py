"""``repro-serve``: launch the partitioning service.

    repro-serve --port 8080 --workers 4 --backend thread:4 \\
        --cache-dir /var/tmp/repro-cache --rate 10 --burst 20

Runs :class:`~repro.service.http.ServiceServer` on an asyncio event
loop until interrupted; ``--port 0`` (the default) binds an ephemeral
port and prints it, which is what the tests and benchmarks use.  Also
reachable as ``repro-contact serve ...`` (argument tail forwarded
verbatim).
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.http import ServiceServer
from repro.service.queue import RetryPolicy

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "partitioning-as-a-service: async job engine with a "
            "content-addressed result cache (docs/SERVICE.md)"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral, printed at startup)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent job executors"
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="pending-job bound (full queue returns 503)",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=64,
        help="in-memory result-cache entries (LRU)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent disk cache tier",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        help=(
            "execution backend spec for contact-step jobs "
            "(serial, thread:N, process:N, ...)"
        ),
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="per-client submissions/second (0 = unlimited)",
    )
    parser.add_argument(
        "--burst",
        type=int,
        default=8,
        help="per-client burst size for the token bucket",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per failed job attempt",
    )
    parser.add_argument(
        "--job-history",
        type=int,
        default=1024,
        help=(
            "retained job records; the oldest finished records beyond "
            "this are evicted (their ids then return 404)"
        ),
    )
    parser.add_argument(
        "--mesh-root",
        default=None,
        help=(
            "restrict {'kind': 'mesh'} source paths to this directory "
            "(default: any server-readable path — trusted clients only)"
        ),
    )
    return parser


def config_from_args(args: argparse.Namespace) -> EngineConfig:
    """Translate parsed CLI flags into an :class:`EngineConfig`."""
    return EngineConfig(
        workers=args.workers,
        queue_maxsize=args.queue_size,
        cache_capacity=args.cache_capacity,
        cache_dir=args.cache_dir,
        backend=args.backend,
        rate_per_s=args.rate,
        rate_burst=args.burst,
        retry=RetryPolicy(max_retries=args.max_retries),
        job_history=args.job_history,
        mesh_root=args.mesh_root,
    )


async def _serve(args: argparse.Namespace) -> int:
    engine = ServiceEngine(config_from_args(args))
    server = ServiceServer(engine, host=args.host, port=args.port)
    await server.start()
    print(
        f"repro-serve listening on {args.host}:{server.port} "
        f"(workers={args.workers}, backend={args.backend!r}, "
        f"cache={args.cache_capacity}"
        + (f", disk={args.cache_dir}" if args.cache_dir else "")
        + ")",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        await server.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-serve`` console script."""
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
