"""Content-addressed result cache: memory LRU over an optional disk tier.

The service keys every finished ``PartitionResult`` by a canonical
content digest (:func:`result_cache_key`) of the *inputs* that
determine it: the snapshot's node coordinates, connectivity, body ids,
and contact geometry, bound to the partitioner name, ``k``, and the
normalised configuration via the digest's ``extra`` channel.  Two
requests with bit-identical inputs therefore share one cache slot no
matter how their JSON bodies were spelled, while any change to the
mesh, the contact surface, or a single knob produces a fresh key.

Storage is two-tier:

* a bounded in-memory LRU (``capacity`` entries) holding detached
  :class:`~repro.core.partitioner.PartitionResult` copies — hits are
  O(1) and return the stored object's arrays bit-identically;
* an optional write-through disk tier (``disk_dir``) of ``.npz``
  entries, so results survive process restarts and memory evictions.
  A disk entry that fails to load or whose recorded key disagrees with
  its filename is *removed and treated as a miss* — corruption causes
  a recompute, never a crash.

All operations are thread-safe (executor workers touch the cache
concurrently).  :class:`CacheStats` counters feed the service
``/metrics`` endpoint and the per-run ``RunReport``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.partitioner import PartitionResult, make_result
from repro.graph.digest import digest_arrays
from repro.sim.sequence import ContactSnapshot

__all__ = [
    "CacheStats",
    "ResultCache",
    "result_cache_key",
]

#: bump when the on-disk entry layout changes
_DISK_SCHEMA = 1


def result_cache_key(
    snapshot: ContactSnapshot,
    partitioner: str,
    k: int,
    config: Optional[Mapping[str, Any]] = None,
) -> str:
    """Canonical content key for one partitioning problem.

    Hashes every array the registered partitioners read — node
    coordinates (ML+RCB geometry), element connectivity and body ids
    (graph structure and constraint weights), and the contact
    faces/owners/nodes (contact constraint, a-priori virtual edges) —
    and binds the partitioner name, part count, and configuration into
    the same digest.  The spelled-out array set deliberately over-keys
    for any single method: a hit guarantees *every* method would
    reproduce the stored result bit-for-bit.
    """
    mesh = snapshot.mesh
    body_id = mesh.body_id
    if body_id is None:  # pragma: no cover - Mesh.__post_init__ fills it
        body_id = np.zeros(mesh.num_elements, dtype=np.int64)
    return digest_arrays(
        {
            "nodes": mesh.nodes,
            "elements": mesh.elements,
            "body_id": body_id,
            "contact_faces": snapshot.contact_faces,
            "contact_face_owner": snapshot.contact_face_owner,
            "contact_nodes": snapshot.contact_nodes,
        },
        extra={
            "partitioner": partitioner,
            "k": int(k),
            "elem_type": mesh.elem_type,
            "config": dict(config or {}),
        },
    )


@dataclass
class CacheStats:
    """Monotonic cache counters (exposed on ``/metrics``)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_corrupt: int = 0
    disk_write_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (report/metrics payload)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_corrupt": self.disk_corrupt,
            "disk_write_errors": self.disk_write_errors,
        }


def _detach(result: PartitionResult) -> PartitionResult:
    """A self-contained copy safe to store: own label array, plain
    diagnostics, no ledger/span/partitioner references."""
    labels = np.ascontiguousarray(result.labels).copy()
    labels.setflags(write=False)
    diag: Dict[str, Any] = {}
    for key, value in result.diagnostics.items():
        if isinstance(value, np.ndarray):
            frozen = value.copy()
            frozen.setflags(write=False)
            diag[key] = frozen
        else:
            diag[key] = value
    return make_result(
        source=None,
        method=result.method,
        k=result.k,
        labels=labels,
        diagnostics=diag,
        ledger=None,
        spans=None,
    )


class ResultCache:
    """Bounded LRU of detached partition results, keyed by content
    digest, with an optional write-through disk tier."""

    def __init__(
        self,
        capacity: int = 64,
        disk_dir: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, PartitionResult]" = OrderedDict()
        self._lock = threading.Lock()
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[PartitionResult]:
        """The cached result for ``key``, or ``None`` (a miss).

        Memory hits refresh LRU recency; disk hits are promoted into
        memory.  Unreadable disk entries are deleted and count as
        ``disk_corrupt`` misses.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
        entry = self._load_disk(key)
        with self._lock:
            if entry is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(key, entry)
            else:
                self.stats.misses += 1
        return entry

    def put(self, key: str, result: PartitionResult) -> PartitionResult:
        """Store a detached copy of ``result`` under ``key``; returns
        the stored copy (what subsequent hits will see)."""
        entry = _detach(result)
        with self._lock:
            self.stats.puts += 1
            self._insert(key, entry)
        if self.disk_dir is not None:
            # a failed disk write (full/read-only disk) must not turn a
            # successfully computed result into a failed job attempt:
            # the in-memory entry is valid either way
            try:
                self._write_disk(key, entry)
            except OSError:
                with self._lock:
                    self.stats.disk_write_errors += 1
        return entry

    def clear(self) -> None:
        """Drop all in-memory entries (counters and disk survive)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def _insert(self, key: str, entry: PartitionResult) -> None:
        """Insert under the held lock, evicting the LRU tail."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> str:
        if self.disk_dir is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("cache has no disk tier")
        return os.path.join(self.disk_dir, f"{key}.npz")

    def _write_disk(self, key: str, entry: PartitionResult) -> None:
        scalars: Dict[str, Any] = {}
        arrays: Dict[str, np.ndarray] = {"labels": entry.labels}
        for name, value in entry.diagnostics.items():
            if isinstance(value, np.ndarray):
                arrays[f"diag_{name}"] = value
            else:
                scalars[name] = value
        meta = {
            "schema": _DISK_SCHEMA,
            "key": key,
            "method": entry.method,
            "k": entry.k,
            "diag_scalars": scalars,
            "labels_digest": digest_arrays({"labels": entry.labels}),
        }
        path = self._path(key)
        tmp = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh, meta=np.array(json.dumps(meta)), **arrays
            )
        os.replace(tmp, path)

    def _load_disk(self, key: str) -> Optional[PartitionResult]:
        if self.disk_dir is None:
            return None
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                if meta.get("schema") != _DISK_SCHEMA:
                    raise ValueError("unknown disk-cache schema")
                if meta.get("key") != key:
                    raise ValueError("disk entry key mismatch")
                labels = np.ascontiguousarray(data["labels"])
                if (
                    digest_arrays({"labels": labels})
                    != meta["labels_digest"]
                ):
                    raise ValueError("disk entry payload digest mismatch")
                diag: Dict[str, Any] = dict(meta["diag_scalars"])
                for name in data.files:
                    if name.startswith("diag_"):
                        diag[name[len("diag_"):]] = np.ascontiguousarray(
                            data[name]
                        )
                method = str(meta["method"])
                k = int(meta["k"])
        except (OSError, KeyError, ValueError) as exc:
            with self._lock:
                self.stats.disk_corrupt += 1
            self._discard_corrupt(path, exc)
            return None
        labels.setflags(write=False)
        return make_result(
            source=None,
            method=method,
            k=k,
            labels=labels,
            diagnostics=diag,
            ledger=None,
            spans=None,
        )

    @staticmethod
    def _discard_corrupt(path: str, exc: Exception) -> None:
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
