"""Command-line experiment runner.

``repro-contact table1`` regenerates the paper's Table 1 on the
synthetic sequence; ``repro-contact stages`` prints the Figure-3-style
per-snapshot simulation statistics; ``repro-contact ablation-update``
compares the §4.3 update strategies; ``repro-contact trace`` runs both
algorithms under the phase tracer and prints/serializes the run report
(``docs/OBSERVABILITY.md``); ``repro-contact lint`` runs the
``repro-lint`` static analyser (see ``docs/STATIC_ANALYSIS.md``);
``repro-contact serve`` launches the partitioning service (forwards to
``repro-serve``, see ``docs/SERVICE.md``); ``repro-contact selfcheck``
runs the installation self-check.

``--trace-json PATH`` (global) writes the versioned run-report JSON
for any experiment command; the ``trace`` subcommand additionally
prints the report to the terminal.

``--backend {serial,thread,process,sentinel,chaos}`` and ``--workers N``
(global, also accepted after the subcommand) select the SPMD execution
backend for every parallel stage in the run (``docs/PARALLELISM.md``);
results are bit-identical across backends. ``--fault-plan PLAN``
(e.g. ``kill@2.1,hang@5.0:12``) injects deterministic worker faults
through the chaos harness — implied ``--backend chaos`` — to exercise
the recovery machinery (``docs/FAULT_TOLERANCE.md``).

``--kernels {pure,compiled,auto}`` selects the kernel execution tier
(``repro.runtime.compiled``): ``compiled`` runs the certified kernels
through numba with per-kernel fallback to the pure NumPy path,
``auto`` (default) compiles only when numba is importable. Results are
bit-identical across tiers (``docs/PARALLELISM.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.sim.projectile import ImpactConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-contact",
        description=(
            "Reproduction experiments for 'Multi-Constraint Mesh "
            "Partitioning for Contact/Impact Computations' (SC 2003)."
        ),
    )
    parser.add_argument(
        "--steps", type=int, default=100, help="snapshots to simulate"
    )
    parser.add_argument(
        "--refine",
        type=float,
        default=1.0,
        help="mesh refinement factor (scales all element counts)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help=(
            "write the phase-trace run report (JSON, schema "
            "repro.run-report/1) to PATH"
        ),
    )
    parser.add_argument(
        "--backend",
        metavar="SPEC",
        default=None,
        help=(
            "execution backend spec for the parallel stages: a "
            "registered name ('serial', 'process:4') or a URI "
            "('tcp://host:port?workers=4&deadline=30'); default: "
            "$REPRO_BACKEND or serial (see docs/PARALLELISM.md)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help=(
            "worker count for the thread/process backend (default: "
            "$REPRO_WORKERS or the CPU count); implies --backend process"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PLAN",
        default=None,
        help=(
            "deterministic fault-injection plan, e.g. "
            "'kill@2.1,hang@5.0:12' (KIND@STEP.RANK[:SECONDS]); "
            "implies --backend chaos (docs/FAULT_TOLERANCE.md)"
        ),
    )
    parser.add_argument(
        "--kernels",
        choices=("pure", "compiled", "auto"),
        default=None,
        help=(
            "kernel execution tier (default: $REPRO_KERNELS or auto; "
            "compiled falls back per kernel when numba is missing — "
            "docs/PARALLELISM.md)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_json(p: argparse.ArgumentParser) -> None:
        # accepted after the subcommand too; SUPPRESS keeps a value
        # parsed from the global position from being reset to None
        p.add_argument(
            "--trace-json",
            metavar="PATH",
            default=argparse.SUPPRESS,
            help="write the run-report JSON to PATH",
        )
        p.add_argument(
            "--backend",
            metavar="SPEC",
            default=argparse.SUPPRESS,
            help=(
                "execution backend spec (name or URI) for the "
                "parallel stages"
            ),
        )
        p.add_argument(
            "--workers",
            type=int,
            metavar="N",
            default=argparse.SUPPRESS,
            help="worker count (implies --backend process)",
        )
        p.add_argument(
            "--fault-plan",
            metavar="PLAN",
            default=argparse.SUPPRESS,
            help="fault-injection plan (implies --backend chaos)",
        )
        p.add_argument(
            "--kernels",
            choices=("pure", "compiled", "auto"),
            default=argparse.SUPPRESS,
            help="kernel execution tier",
        )

    t1 = sub.add_parser("table1", help="regenerate Table 1")
    add_trace_json(t1)
    t1.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=[25, 100],
        help="partition counts (paper: 25 100)",
    )

    stages = sub.add_parser(
        "stages", help="Figure-3-style simulation statistics"
    )
    add_trace_json(stages)

    ab = sub.add_parser(
        "ablation-update", help="compare the §4.3 update strategies"
    )
    ab.add_argument("--k", type=int, default=16)
    ab.add_argument("--period", type=int, default=10)
    add_trace_json(ab)

    fig = sub.add_parser(
        "figure1", help="render a snapshot's descriptors in the terminal"
    )
    fig.add_argument("--k", type=int, default=4)
    fig.add_argument("--snapshot", type=int, default=0)
    add_trace_json(fig)

    tr = sub.add_parser(
        "trace",
        help=(
            "run MCML+DT and the ML+RCB baseline under the phase tracer "
            "and print the run report (docs/OBSERVABILITY.md)"
        ),
    )
    tr.add_argument(
        "mesh",
        nargs="?",
        default=None,
        help=(
            "optional mesh .npz (see repro.mesh.io.save_mesh); default: "
            "the synthetic impact sequence"
        ),
    )
    tr.add_argument("--k", type=int, default=8, help="partition count")
    tr.add_argument(
        "--trace-steps",
        type=int,
        default=2,
        help="driver steps to trace (mesh input is static; default 2)",
    )
    tr.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the ML+RCB baseline pass",
    )
    add_trace_json(tr)

    lint = sub.add_parser(
        "lint",
        help="run the repro-lint invariant linter (docs/STATIC_ANALYSIS.md)",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help=(
            "arguments forwarded to repro-lint (default: lint the "
            "installed repro package)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "launch the partitioning service (forwards to repro-serve; "
            "docs/SERVICE.md)"
        ),
    )
    serve.add_argument(
        "serve_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro-serve",
    )

    sub.add_parser(
        "selfcheck", help="run the installation self-check pipeline"
    )
    return parser


def _run_lint(lint_args: List[str]) -> int:
    """Forward to repro-lint (which defaults to the installed package
    when no path argument is given)."""
    from repro.analysis.cli import main as lint_main

    return lint_main(lint_args)


def _snapshot_from_mesh_file(path: str):
    """Load a mesh ``.npz`` and wrap it as a static contact snapshot
    (every boundary face is a contact face)."""
    from repro.mesh.io import load_mesh
    from repro.sim.sequence import ContactSnapshot, extract_contact_surface

    mesh = load_mesh(path)
    faces, owner, cnodes = extract_contact_surface(
        mesh, capture_radius=float("inf")
    )
    if len(cnodes) == 0:
        raise ValueError(f"{path}: mesh has no boundary contact surface")
    tip = float(mesh.nodes[:, -1].min()) if mesh.num_nodes else 0.0
    return ContactSnapshot(
        mesh=mesh,
        contact_faces=faces,
        contact_face_owner=owner,
        contact_nodes=cnodes,
        step=0,
        time=0.0,
        tip_z=tip,
    )


def _run_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: both algorithms, one report."""
    from repro.core.driver import ContactStepDriver
    from repro.core.ml_rcb import MLRCBPartitioner
    from repro.obs import RunReport, Tracer
    from repro.partition.config import PartitionOptions
    from repro.sim.sequence import simulate_impact

    tracer = Tracer(kernel_counters=True)
    n_steps = max(1, args.trace_steps)
    if args.mesh is not None:
        try:
            snapshot = _snapshot_from_mesh_file(args.mesh)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load mesh {args.mesh!r}: {exc}",
                  file=sys.stderr)
            return 2
        snapshots = [snapshot] * n_steps
        source = args.mesh
    else:
        config = ImpactConfig(n_steps=n_steps, refine=args.refine)
        with tracer.span("simulate"):
            snapshots = list(simulate_impact(config))
        source = "synthetic-impact"

    params_options = PartitionOptions(seed=args.seed)
    from repro.core.mcml_dt import MCMLDTParams
    from repro.core.ml_rcb import MLRCBParams

    with tracer.span("mcml-dt"):
        driver = ContactStepDriver(
            args.k,
            params=MCMLDTParams(options=params_options),
            tracer=tracer,
        )
        driver.initialize(snapshots[0])
        for snapshot in snapshots:
            driver.step(snapshot)

    if not args.no_baseline:
        with tracer.span("ml-rcb"):
            baseline = MLRCBPartitioner(
                args.k, params=MLRCBParams(options=params_options)
            )
            baseline.fit(snapshots[0], tracer=tracer)
            for snapshot in snapshots:
                if snapshot.step > 0:
                    baseline.update(snapshot, tracer=tracer)
                baseline.m2m_comm_now(tracer=tracer)
                baseline.search_plan(snapshot, tracer=tracer)

    from repro.runtime.compiled import kernel_tier

    report = RunReport.from_run(
        tracer,
        driver.ledger,
        k=args.k,
        steps=len(snapshots),
        source=source,
        seed=args.seed,
        backend=args.backend,
        kernels=kernel_tier(),
    )
    if args.trace_json:
        report.save(args.trace_json)
    print(report.render())
    if args.trace_json:
        print(f"\ntrace written to {args.trace_json}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and run the selected experiment command."""
    argv = list(sys.argv[1:] if argv is None else argv)

    # `lint` forwards its tail verbatim to repro-lint, bypassing
    # argparse (REMAINDER mis-parses forwarded options like --format);
    # `serve` forwards to repro-serve the same way
    if argv and argv[0] == "lint":
        return _run_lint(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import main as serve_main

        return serve_main(argv[1:])

    args = _build_parser().parse_args(argv)

    # install the requested execution backend as the process default so
    # every parallel stage in the run picks it up (--workers alone
    # implies a process pool, --fault-plan implies the chaos harness)
    backend_name = getattr(args, "backend", None)
    workers = getattr(args, "workers", None)
    fault_plan = getattr(args, "fault_plan", None)
    if fault_plan is not None:
        from repro.runtime.backends.base import FAULT_PLAN_ENV

        os.environ[FAULT_PLAN_ENV] = fault_plan
        if backend_name is None:
            backend_name = "chaos"
    if workers is not None and backend_name is None:
        backend_name = "process"
    args.backend = backend_name or "serial"
    if backend_name is not None:
        from repro.runtime.backends import resolve_backend, set_default_backend

        try:
            set_default_backend(resolve_backend(backend_name, workers))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    # install the kernel execution tier; the env var is set too so
    # process-backend workers (forked later) inherit the selection
    kernels = getattr(args, "kernels", None)
    args.kernels = kernels
    if kernels is not None:
        from repro.runtime.compiled import KERNELS_ENV, set_kernel_tier

        os.environ[KERNELS_ENV] = kernels
        set_kernel_tier(kernels)

    if args.command == "lint":  # reached via global options before `lint`
        return _run_lint(list(args.lint_args))
    if args.command == "serve":  # reached via global options too
        from repro.service.cli import main as serve_main

        return serve_main(list(args.serve_args))
    if args.command == "selfcheck":
        from repro.selfcheck import main as selfcheck_main

        return selfcheck_main()
    if args.command == "trace":
        return _run_trace(args)

    # experiment commands share the synthetic sequence and the optional
    # phase tracer behind --trace-json
    from repro.obs import NULL_TRACER, RunReport, Tracer

    tracer = (
        Tracer(kernel_counters=True) if args.trace_json else NULL_TRACER
    )

    config = ImpactConfig(n_steps=args.steps, refine=args.refine)

    # imports deferred so `--help` stays instant
    from repro.sim.sequence import simulate_impact

    with tracer.span("simulate"):
        seq = simulate_impact(config)

    if args.command == "table1":
        from repro.core.pipeline import table1

        print(table1(seq, ks=args.k, tracer=tracer).render())
    elif args.command == "stages":
        from repro.metrics.report import format_table

        rows = {}
        for s in seq:
            if s.step % max(1, len(seq) // 10) == 0 or s.step == len(seq) - 1:
                rows[f"step {s.step}"] = [
                    round(s.tip_z, 2),
                    s.mesh.num_elements,
                    s.num_contact_faces,
                    s.num_contact_nodes,
                ]
        print(
            format_table(
                "Simulation stages (Figure 3 analogue)",
                ["tip_z", "elements", "contact_faces", "contact_nodes"],
                rows,
            )
        )
    elif args.command == "ablation-update":
        from repro.core.update import UpdateStrategy, replay_sequence
        from repro.metrics.report import format_table

        rows = {}
        for strategy in UpdateStrategy:
            with tracer.span(strategy.value):
                r = replay_sequence(
                    seq, args.k, strategy, period=args.period,
                    tracer=tracer,
                )
            rows[strategy.value] = [
                round(r.mean_nt_nodes(), 1),
                round(r.max_imbalance(), 3),
                r.total_moved(),
            ]
        print(
            format_table(
                f"Update strategies at k={args.k} (§4.3)",
                ["mean NTNodes", "max imbalance", "vertices moved"],
                rows,
            )
        )
    elif args.command == "figure1":
        import numpy as np

        from repro.core.mcml_dt import MCMLDTPartitioner
        from repro.dtree.induction import induce_pure_tree
        from repro.dtree.render import render_descriptors, render_tree

        snap = seq[min(args.snapshot, len(seq) - 1)]
        pt = MCMLDTPartitioner(args.k)
        pt.fit(snap, tracer=tracer)
        coords = snap.mesh.nodes[snap.contact_nodes]
        labels = pt.part[snap.contact_nodes]
        # project to the two dominant lateral axes for display
        spread = coords.max(axis=0) - coords.min(axis=0)
        dims = np.argsort(spread)[::-1][:2]
        tree2d, _ = induce_pure_tree(coords[:, sorted(dims)], labels, args.k)
        print(
            f"Contact points of snapshot {snap.step} "
            f"(k={args.k}, projected to 2D), Figure-1 style:\n"
        )
        print(render_descriptors(tree2d, coords[:, sorted(dims)], labels))
        print(f"\nDecision tree ({tree2d.n_nodes} nodes):\n")
        print(render_tree(tree2d))

    if args.trace_json and isinstance(tracer, Tracer):
        from repro.runtime.compiled import kernel_tier

        report = RunReport.from_run(
            tracer, command=args.command, steps=args.steps,
            seed=args.seed, backend=args.backend,
            kernels=kernel_tier(),
        )
        report.save(args.trace_json)
        print(f"\ntrace written to {args.trace_json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
