"""Command-line experiment runner.

``repro-contact table1`` regenerates the paper's Table 1 on the
synthetic sequence; ``repro-contact stages`` prints the Figure-3-style
per-snapshot simulation statistics; ``repro-contact ablation-update``
compares the §4.3 update strategies; ``repro-contact lint`` runs the
``repro-lint`` static analyser (see ``docs/STATIC_ANALYSIS.md``);
``repro-contact selfcheck`` runs the installation self-check.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sim.projectile import ImpactConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-contact",
        description=(
            "Reproduction experiments for 'Multi-Constraint Mesh "
            "Partitioning for Contact/Impact Computations' (SC 2003)."
        ),
    )
    parser.add_argument(
        "--steps", type=int, default=100, help="snapshots to simulate"
    )
    parser.add_argument(
        "--refine",
        type=float,
        default=1.0,
        help="mesh refinement factor (scales all element counts)",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="regenerate Table 1")
    t1.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=[25, 100],
        help="partition counts (paper: 25 100)",
    )

    sub.add_parser("stages", help="Figure-3-style simulation statistics")

    ab = sub.add_parser(
        "ablation-update", help="compare the §4.3 update strategies"
    )
    ab.add_argument("--k", type=int, default=16)
    ab.add_argument("--period", type=int, default=10)

    fig = sub.add_parser(
        "figure1", help="render a snapshot's descriptors in the terminal"
    )
    fig.add_argument("--k", type=int, default=4)
    fig.add_argument("--snapshot", type=int, default=0)

    lint = sub.add_parser(
        "lint",
        help="run the repro-lint invariant linter (docs/STATIC_ANALYSIS.md)",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help=(
            "arguments forwarded to repro-lint (default: lint the "
            "installed repro package)"
        ),
    )

    sub.add_parser(
        "selfcheck", help="run the installation self-check pipeline"
    )
    return parser


def _run_lint(lint_args: List[str]) -> int:
    """Forward to repro-lint (which defaults to the installed package
    when no path argument is given)."""
    from repro.analysis.cli import main as lint_main

    return lint_main(lint_args)


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and run the selected experiment command."""
    argv = list(sys.argv[1:] if argv is None else argv)

    # `lint` forwards its tail verbatim to repro-lint, bypassing
    # argparse (REMAINDER mis-parses forwarded options like --format)
    if argv and argv[0] == "lint":
        return _run_lint(argv[1:])

    args = _build_parser().parse_args(argv)

    if args.command == "lint":  # reached via global options before `lint`
        return _run_lint(list(args.lint_args))
    if args.command == "selfcheck":
        from repro.selfcheck import main as selfcheck_main

        return selfcheck_main()

    config = ImpactConfig(n_steps=args.steps, refine=args.refine)

    # imports deferred so `--help` stays instant
    from repro.sim.sequence import simulate_impact

    seq = simulate_impact(config)

    if args.command == "table1":
        from repro.core.pipeline import table1

        print(table1(seq, ks=args.k).render())
    elif args.command == "stages":
        from repro.metrics.report import format_table

        rows = {}
        for s in seq:
            if s.step % max(1, len(seq) // 10) == 0 or s.step == len(seq) - 1:
                rows[f"step {s.step}"] = [
                    round(s.tip_z, 2),
                    s.mesh.num_elements,
                    s.num_contact_faces,
                    s.num_contact_nodes,
                ]
        print(
            format_table(
                "Simulation stages (Figure 3 analogue)",
                ["tip_z", "elements", "contact_faces", "contact_nodes"],
                rows,
            )
        )
    elif args.command == "ablation-update":
        from repro.core.update import UpdateStrategy, replay_sequence
        from repro.metrics.report import format_table

        rows = {}
        for strategy in UpdateStrategy:
            r = replay_sequence(
                seq, args.k, strategy, period=args.period
            )
            rows[strategy.value] = [
                round(r.mean_nt_nodes(), 1),
                round(r.max_imbalance(), 3),
                r.total_moved(),
            ]
        print(
            format_table(
                f"Update strategies at k={args.k} (§4.3)",
                ["mean NTNodes", "max imbalance", "vertices moved"],
                rows,
            )
        )
    elif args.command == "figure1":
        import numpy as np

        from repro.core.mcml_dt import MCMLDTPartitioner
        from repro.dtree.induction import induce_pure_tree
        from repro.dtree.render import render_descriptors, render_tree

        snap = seq[min(args.snapshot, len(seq) - 1)]
        pt = MCMLDTPartitioner(args.k).fit(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        labels = pt.part[snap.contact_nodes]
        # project to the two dominant lateral axes for display
        spread = coords.max(axis=0) - coords.min(axis=0)
        dims = np.argsort(spread)[::-1][:2]
        tree2d, _ = induce_pure_tree(coords[:, sorted(dims)], labels, args.k)
        print(
            f"Contact points of snapshot {snap.step} "
            f"(k={args.k}, projected to 2D), Figure-1 style:\n"
        )
        print(render_descriptors(tree2d, coords[:, sorted(dims)], labels))
        print(f"\nDecision tree ({tree2d.n_nodes} nodes):\n")
        print(render_tree(tree2d))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
