"""repro — Multi-constraint mesh partitioning for contact/impact
computations.

A from-scratch reproduction of Karypis (SC 2003): a multilevel
multi-constraint graph partitioner, decision-tree subdomain
descriptors with the paper's modified gini splitting index, the
MCML+DT contact/impact decomposition algorithm, the ML+RCB baseline,
a synthetic projectile-penetration workload, and a simulated SPMD
runtime that accounts every communicated item.

Quickstart::

    from repro import ImpactConfig, simulate_impact, table1

    seq = simulate_impact(ImpactConfig(n_steps=20))
    print(table1(seq, ks=(8,)).render())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    MCMLDTParams,
    MCMLDTPartitioner,
    MLRCBParams,
    MLRCBPartitioner,
    PartitionDiagnostics,
    Partitioner,
    PartitionResult,
    build_contact_graph,
    evaluate_mcml_dt,
    evaluate_ml_rcb,
    table1,
)
from repro.core.update import UpdateStrategy, replay_sequence
from repro.dtree import induce_bounded_tree, induce_pure_tree
from repro.graph import CSRGraph
from repro.mesh import Mesh, nodal_graph
from repro.partition import PartitionOptions, partition_kway
from repro.geometry import rcb_partition
from repro.sim import ContactSnapshot, ImpactConfig, MeshSequence, simulate_impact

__version__ = "1.0.0"

__all__ = [
    "MCMLDTParams",
    "MCMLDTPartitioner",
    "MLRCBParams",
    "MLRCBPartitioner",
    "Partitioner",
    "PartitionDiagnostics",
    "PartitionResult",
    "build_contact_graph",
    "evaluate_mcml_dt",
    "evaluate_ml_rcb",
    "table1",
    "UpdateStrategy",
    "replay_sequence",
    "induce_bounded_tree",
    "induce_pure_tree",
    "CSRGraph",
    "Mesh",
    "nodal_graph",
    "PartitionOptions",
    "partition_kway",
    "rcb_partition",
    "ContactSnapshot",
    "ImpactConfig",
    "MeshSequence",
    "simulate_impact",
    "__version__",
]
