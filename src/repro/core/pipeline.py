"""Sequence evaluation: the Table-1 engine (paper §5).

Replays a snapshot sequence under each algorithm with the paper's
protocol — partition computed once on the first snapshot, kept fixed;
per step MCML+DT re-induces its descriptor tree while ML+RCB
incrementally re-fits its RCB decomposition — and averages the §5.1
metrics over the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.ml_rcb import MLRCBParams, MLRCBPartitioner
from repro.core.weights import build_contact_graph
from repro.graph.metrics import load_imbalance
from repro.metrics.comm import fe_comm
from repro.metrics.report import MetricTable
from repro.obs.tracer import TracerBase, ensure_tracer
from repro.sim.sequence import MeshSequence


@dataclass
class StepMetrics:
    """Per-snapshot metric values (unused fields stay 0)."""

    step: int
    fe_comm: int = 0
    nt_nodes: int = 0
    n_remote: int = 0
    m2m_comm: int = 0
    upd_comm: int = 0
    imbalance_fe: float = 1.0
    imbalance_search: float = 1.0


@dataclass
class SequenceResult:
    """All per-step metrics for one (algorithm, k) run."""

    algorithm: str
    k: int
    steps: List[StepMetrics] = field(default_factory=list)

    def mean(self, name: str) -> float:
        """Average of a metric over the sequence (the paper's Table 1
        reports exactly these averages)."""
        return float(np.mean([getattr(s, name) for s in self.steps]))

    def total_fe_side_comm(self) -> float:
        """FE-side communication per iteration: FEComm plus the round
        trip of the mesh-to-mesh transfer (2 × M2MComm; §5.2)."""
        return self.mean("fe_comm") + 2.0 * self.mean("m2m_comm")

    FIELDS = (
        "step", "fe_comm", "nt_nodes", "n_remote", "m2m_comm",
        "upd_comm", "imbalance_fe", "imbalance_search",
    )

    def to_csv(self) -> str:
        """Per-step metrics as CSV text (for external plotting)."""
        lines = [",".join(self.FIELDS)]
        for s in self.steps:
            lines.append(
                ",".join(str(getattr(s, f)) for f in self.FIELDS)
            )
        return "\n".join(lines) + "\n"

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_csv())


def evaluate_mcml_dt(
    seq: MeshSequence,
    k: int,
    params: Optional[MCMLDTParams] = None,
    tracer: Optional[TracerBase] = None,
) -> SequenceResult:
    """Run MCML+DT over ``seq`` with a fixed partition and per-step
    descriptor re-induction (the paper's §5 protocol)."""
    params = params or MCMLDTParams()
    tracer = ensure_tracer(tracer)
    pt = MCMLDTPartitioner(k, params)
    pt.fit(seq[0], tracer=tracer)
    result = SequenceResult(algorithm="MCML+DT", k=k)
    for snapshot in seq:
        graph = build_contact_graph(snapshot, params.contact_edge_weight)
        tree, _ = pt.build_descriptors(snapshot, tracer=tracer)
        plan = pt.search_plan(snapshot, tree, tracer=tracer)
        imb = load_imbalance(graph, pt.part, k)
        result.steps.append(
            StepMetrics(
                step=snapshot.step,
                fe_comm=fe_comm(graph, pt.part),
                nt_nodes=tree.n_nodes,
                n_remote=plan.n_remote,
                imbalance_fe=float(imb[0]),
                imbalance_search=float(imb[1]),
            )
        )
    return result


def evaluate_ml_rcb(
    seq: MeshSequence,
    k: int,
    params: Optional[MLRCBParams] = None,
    tracer: Optional[TracerBase] = None,
) -> SequenceResult:
    """Run ML+RCB over ``seq``: fixed graph partition, incremental RCB
    updates, bbox-filter search."""
    params = params or MLRCBParams()
    tracer = ensure_tracer(tracer)
    pt = MLRCBPartitioner(k, params)
    pt.fit(seq[0], tracer=tracer)
    result = SequenceResult(algorithm="ML+RCB", k=k)
    for snapshot in seq:
        if snapshot.step > 0:
            pt.update(snapshot, tracer=tracer)
        graph = build_contact_graph(snapshot)
        plan = pt.search_plan(snapshot, tracer=tracer)
        imb = load_imbalance(graph, pt.part_fe, k)
        result.steps.append(
            StepMetrics(
                step=snapshot.step,
                fe_comm=fe_comm(graph, pt.part_fe),
                n_remote=plan.n_remote,
                m2m_comm=pt.m2m_comm_now(tracer=tracer),
                upd_comm=pt.last_upd_comm,
                imbalance_fe=float(imb[0]),
            )
        )
    return result


def table1(
    seq: MeshSequence,
    ks: Sequence[int] = (25, 100),
    mcml_params: Optional[MCMLDTParams] = None,
    ml_params: Optional[MLRCBParams] = None,
    tracer: Optional[TracerBase] = None,
) -> MetricTable:
    """Regenerate Table 1: both algorithms at each ``k``, metrics
    averaged over the sequence. A recording ``tracer`` groups each run
    under ``mcml-dt`` / ``ml-rcb`` spans."""
    table = MetricTable(
        title="Table 1 — averages over the mesh sequence",
        columns=[
            "FEComm", "NTNodes", "NRemote", "M2MComm", "UpdComm",
        ],
    )
    tracer = ensure_tracer(tracer)
    for k in ks:
        with tracer.span("mcml-dt"):
            mc = evaluate_mcml_dt(seq, k, mcml_params, tracer=tracer)
        with tracer.span("ml-rcb"):
            ml = evaluate_ml_rcb(seq, k, ml_params, tracer=tracer)
        table.add_row(
            f"{k}-way MCML+DT",
            [
                mc.mean("fe_comm"), mc.mean("nt_nodes"),
                mc.mean("n_remote"), 0, 0,
            ],
        )
        table.add_row(
            f"{k}-way ML+RCB",
            [
                ml.mean("fe_comm"), 0, ml.mean("n_remote"),
                ml.mean("m2m_comm"), ml.mean("upd_comm"),
            ],
        )
    return table
