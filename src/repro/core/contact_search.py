"""Global contact search: serial reference and parallel execution.

Detection semantics follow the paper's global search: a contact *node*
``x`` is a candidate for surface element ``e`` when ``x`` lies inside
``e``'s (padded) bounding box and ``x`` is not one of ``e``'s own
nodes. The serial routine is the ground truth; the parallel routine
ships elements per a :class:`~repro.geometry.boxsearch.SearchPlan`
through the SPMD runtime and unions the per-rank results — tests
assert the two sets are identical for both the bbox and the
decision-tree filters (completeness of the filters), on every
execution backend.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from repro.geometry.boxsearch import SearchPlan, candidate_pairs
from repro.kernels import kernel
from repro.obs.tracer import TracerBase, ensure_tracer
from repro.runtime.backends import SpmdContext, resolve_backend
from repro.runtime.backends.base import BackendLike
from repro.runtime.ledger import CommLedger


@kernel
def row_majority(labels: np.ndarray) -> np.ndarray:
    """Majority value of each row of an integer matrix (ties → smaller
    value). Vectorised over rows via a sorted run-length scan.

    Certified kernel: under ``REPRO_KERNELS=compiled`` the scan runs
    row-at-a-time in a numba loop, bit-identical to this body
    (``repro.runtime.compiled``).
    """
    s = np.sort(np.asarray(labels, dtype=np.int64), axis=1)
    n, w = s.shape
    best_val = s[:, 0].copy()
    best_cnt = np.ones(n, dtype=np.int64)
    cur_cnt = np.ones(n, dtype=np.int64)
    for j in range(1, w):
        same = s[:, j] == s[:, j - 1]
        cur_cnt = np.where(same, cur_cnt + 1, 1)
        upd = cur_cnt > best_cnt
        best_cnt[upd] = cur_cnt[upd]
        best_val[upd] = s[upd, j]
    return best_val


def face_owner_partition(part: np.ndarray, faces: np.ndarray) -> np.ndarray:
    """Partition owning each surface element: the majority partition of
    its nodes (the processor that stores most of the element)."""
    return row_majority(np.asarray(part)[np.asarray(faces, dtype=np.int64)])


def _drop_own_nodes(
    element_faces: np.ndarray,
    elem_idx: np.ndarray,
    node_ids: np.ndarray,
) -> Set[Tuple[int, int]]:
    """Pair set from parallel (element, node id) arrays, excluding
    pairs where the node is one of the element's own nodes — one batch
    comparison against the elements' connectivity rows."""
    if len(elem_idx) == 0:
        return set()
    own = (element_faces[elem_idx] == node_ids[:, None]).any(axis=1)
    keep = ~own
    return set(
        zip(elem_idx[keep].tolist(), node_ids[keep].tolist())
    )


def serial_candidate_pairs(
    element_boxes: np.ndarray,
    element_faces: np.ndarray,
    contact_points: np.ndarray,
    contact_ids: np.ndarray,
) -> Set[Tuple[int, int]]:
    """Ground-truth candidate set: all (element index, contact node id)
    with the node in the element's box, excluding the element's own
    nodes."""
    element_boxes = np.asarray(element_boxes, dtype=float)
    element_faces = np.asarray(element_faces, dtype=np.int64)
    b_idx, node_ids = candidate_pairs(
        element_boxes, np.asarray(contact_points, float),
        np.asarray(contact_ids, np.int64),
    )
    return _drop_own_nodes(element_faces, b_idx, node_ids)


# ----------------------------------------------------------------------
# the two supersteps of the parallel search (module-level so they are
# picklable and execute on the process backend's worker pool; the big
# arrays arrive through ctx.shared — zero-copy shared memory there)
# ----------------------------------------------------------------------


def _exchange_step(ctx: SpmdContext, _arg: object) -> None:
    """Superstep 1: ship each owned surface element to the remote
    ranks the search plan selected (phase ``contact-exchange``)."""
    with ctx.span("exchange"):
        owner = ctx.shared["owner"]
        mine = np.nonzero(owner == ctx.rank)[0]
        ctx.state["elems"] = mine
        ctx.state["points"] = np.nonzero(
            ctx.shared["point_partition"] == ctx.rank
        )[0]
        if len(mine) == 0:
            return
        sends = ctx.shared["send_matrix"][mine]  # (m_local, k)
        for dst in range(ctx.size):
            sel = mine[sends[:, dst]]
            if len(sel):
                ctx.send(dst, sel, phase="contact-exchange",
                         items=len(sel))


def _search_step(ctx: SpmdContext, _arg: object) -> Set[Tuple[int, int]]:
    """Superstep 2: search local contact points against the owned plus
    received elements; return the local candidate pairs."""
    with ctx.span("search"):
        local_elems = [ctx.state["elems"]]
        for _src, payload in ctx.inbox():
            local_elems.append(payload)
        elems = (
            np.concatenate(local_elems)
            if local_elems
            else np.empty(0, np.int64)
        )
        pts_idx = ctx.state["points"]
        if len(elems) == 0 or len(pts_idx) == 0:
            return set()
        element_boxes = ctx.shared["element_boxes"]
        element_faces = ctx.shared["element_faces"]
        local_b, node_ids = candidate_pairs(
            element_boxes[elems],
            ctx.shared["contact_points"][pts_idx],
            ctx.shared["contact_ids"][pts_idx],
        )
        return _drop_own_nodes(element_faces, elems[local_b], node_ids)


def parallel_contact_search(
    plan: SearchPlan,
    element_boxes: np.ndarray,
    element_faces: np.ndarray,
    contact_points: np.ndarray,
    contact_ids: np.ndarray,
    point_partition: np.ndarray,
    k: int,
    ledger: Optional[CommLedger] = None,
    tracer: Optional[TracerBase] = None,
    backend: BackendLike = None,
) -> Tuple[Set[Tuple[int, int]], CommLedger]:
    """Execute the two-superstep parallel global search.

    Superstep 1: every rank ships each of its surface elements to the
    remote ranks ``plan`` selected (ledger phase ``contact-exchange``).
    Superstep 2: every rank searches its *local* contact points against
    its own plus the received elements. Returns the union of per-rank
    candidate pairs and the ledger.

    ``backend`` selects where the ranks execute (see
    :func:`repro.runtime.backends.resolve_backend`); results are
    bit-identical across backends. With a recording ``tracer`` the run
    opens a ``global-search`` span whose ``exchange``/``search``
    children accumulate the per-rank superstep times (``n_calls`` =
    ranks).
    """
    ledger = ledger if ledger is not None else CommLedger()
    tracer = ensure_tracer(tracer)
    shared = {
        "element_boxes": np.asarray(element_boxes, dtype=float),
        "element_faces": np.asarray(element_faces, dtype=np.int64),
        "contact_points": np.asarray(contact_points, dtype=float),
        "contact_ids": np.asarray(contact_ids, dtype=np.int64),
        "point_partition": np.asarray(point_partition, dtype=np.int64),
        "owner": np.asarray(plan.owner, dtype=np.int64),
        "send_matrix": np.asarray(plan.send_matrix, dtype=bool),
    }
    resolved = resolve_backend(backend)
    with tracer.span("global-search"):
        with resolved.open_session(
            k, ledger=ledger, tracer=tracer, shared=shared
        ) as session:
            session.step(_exchange_step)
            rank_sets = session.step(_search_step)
        union: Set[Tuple[int, int]] = set()
        for rank_pairs in rank_sets:
            union |= rank_pairs
        tracer.count("candidates", len(union))
    return union, ledger
