"""Global contact search: serial reference and simulated-parallel runs.

Detection semantics follow the paper's global search: a contact *node*
``x`` is a candidate for surface element ``e`` when ``x`` lies inside
``e``'s (padded) bounding box and ``x`` is not one of ``e``'s own
nodes. The serial routine is the ground truth; the parallel routine
ships elements per a :class:`~repro.geometry.boxsearch.SearchPlan`
through the simulated runtime and unions the per-rank results — tests
assert the two sets are identical for both the bbox and the
decision-tree filters (completeness of the filters).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.boxsearch import SearchPlan
from repro.obs.tracer import TracerBase, ensure_tracer
from repro.runtime.comm import RankContext
from repro.runtime.executor import spmd_run
from repro.runtime.ledger import CommLedger
from repro.utils.arrays import group_by_label


def row_majority(labels: np.ndarray) -> np.ndarray:
    """Majority value of each row of an integer matrix (ties → smaller
    value). Vectorised over rows via a sorted run-length scan."""
    s = np.sort(np.asarray(labels, dtype=np.int64), axis=1)
    n, w = s.shape
    best_val = s[:, 0].copy()
    best_cnt = np.ones(n, dtype=np.int64)
    cur_cnt = np.ones(n, dtype=np.int64)
    for j in range(1, w):
        same = s[:, j] == s[:, j - 1]
        cur_cnt = np.where(same, cur_cnt + 1, 1)
        upd = cur_cnt > best_cnt
        best_cnt[upd] = cur_cnt[upd]
        best_val[upd] = s[upd, j]
    return best_val


def face_owner_partition(part: np.ndarray, faces: np.ndarray) -> np.ndarray:
    """Partition owning each surface element: the majority partition of
    its nodes (the processor that stores most of the element)."""
    return row_majority(np.asarray(part)[np.asarray(faces, dtype=np.int64)])


def _candidates_kdtree(
    boxes: np.ndarray,
    points: np.ndarray,
    point_ids: np.ndarray,
) -> List[Tuple[int, int]]:
    """(box index, point id) pairs with the point inside the box.

    KD-tree over the points; each box queries a ball covering it, then
    exact containment filters. Near-linear for well-shaped surface
    meshes, vs the quadratic dense-matrix approach.
    """
    if len(points) == 0 or len(boxes) == 0:
        return []
    tree = cKDTree(points)
    centers = (boxes[:, 0] + boxes[:, 1]) / 2.0
    radii = np.linalg.norm(boxes[:, 1] - boxes[:, 0], axis=1) / 2.0
    out: List[Tuple[int, int]] = []
    hits = tree.query_ball_point(centers, radii + 1e-12)
    for b, cand in enumerate(hits):
        if not cand:
            continue
        cand = np.asarray(cand, dtype=np.int64)
        pts = points[cand]
        inside = (
            (pts >= boxes[b, 0]) & (pts <= boxes[b, 1])
        ).all(axis=1)
        for pid in point_ids[cand[inside]]:
            out.append((b, int(pid)))
    return out


def serial_candidate_pairs(
    element_boxes: np.ndarray,
    element_faces: np.ndarray,
    contact_points: np.ndarray,
    contact_ids: np.ndarray,
) -> Set[Tuple[int, int]]:
    """Ground-truth candidate set: all (element index, contact node id)
    with the node in the element's box, excluding the element's own
    nodes."""
    element_boxes = np.asarray(element_boxes, dtype=float)
    element_faces = np.asarray(element_faces, dtype=np.int64)
    pairs = _candidates_kdtree(
        element_boxes, np.asarray(contact_points, float),
        np.asarray(contact_ids, np.int64),
    )
    own = {(b, int(nid)) for b in range(len(element_faces))
           for nid in element_faces[b]}
    return {p for p in pairs if p not in own}


def parallel_contact_search(
    plan: SearchPlan,
    element_boxes: np.ndarray,
    element_faces: np.ndarray,
    contact_points: np.ndarray,
    contact_ids: np.ndarray,
    point_partition: np.ndarray,
    k: int,
    ledger: Optional[CommLedger] = None,
    tracer: Optional[TracerBase] = None,
) -> Tuple[Set[Tuple[int, int]], CommLedger]:
    """Execute the two-superstep parallel global search.

    Superstep 1: every rank ships each of its surface elements to the
    remote ranks ``plan`` selected (ledger phase ``contact-exchange``).
    Superstep 2: every rank searches its *local* contact points against
    its own plus the received elements. Returns the union of per-rank
    candidate pairs and the ledger.

    With a recording ``tracer`` the run opens a ``global-search`` span
    whose ``exchange``/``search`` children accumulate the per-rank
    superstep times (``n_calls`` = ranks).
    """
    ledger = ledger if ledger is not None else CommLedger()
    tracer = ensure_tracer(tracer)
    element_boxes = np.asarray(element_boxes, dtype=float)
    element_faces = np.asarray(element_faces, dtype=np.int64)
    contact_points = np.asarray(contact_points, dtype=float)
    contact_ids = np.asarray(contact_ids, dtype=np.int64)
    point_partition = np.asarray(point_partition, dtype=np.int64)
    owner = plan.owner

    elems_of_rank = group_by_label(owner, k)
    points_of_rank = group_by_label(point_partition, k)

    def superstep_send(ctx: RankContext):
        mine = elems_of_rank[ctx.rank]
        if len(mine) == 0:
            return None
        sends = plan.send_matrix[mine]  # (m_local, k)
        for dst in range(ctx.size):
            sel = mine[sends[:, dst]]
            if len(sel):
                ctx.send(dst, sel, phase="contact-exchange", items=len(sel))
        return None

    def superstep_search(ctx: RankContext):
        local_elems = [elems_of_rank[ctx.rank]]
        for _src, payload in ctx.inbox():
            local_elems.append(payload)
        elems = (
            np.concatenate(local_elems)
            if local_elems
            else np.empty(0, np.int64)
        )
        pts_idx = points_of_rank[ctx.rank]
        if len(elems) == 0 or len(pts_idx) == 0:
            return set()
        raw = _candidates_kdtree(
            element_boxes[elems],
            contact_points[pts_idx],
            contact_ids[pts_idx],
        )
        found = set()
        for local_b, nid in raw:
            e = int(elems[local_b])
            if nid not in element_faces[e]:
                found.add((e, nid))
        return found

    def traced(name: str, fn):
        def wrapper(ctx: RankContext):
            with tracer.span(name):
                return fn(ctx)

        return wrapper

    with tracer.span("global-search"):
        results = spmd_run(
            k,
            [
                traced("exchange", superstep_send),
                traced("search", superstep_search),
            ],
            ledger,
        )
        union: Set[Tuple[int, int]] = set()
        for rank_pairs in results[1]:
            union |= rank_pairs
        tracer.count("candidates", len(union))
    return union, ledger
