"""MCML+DT: the paper's partitioning algorithm (§4).

Pipeline per fit:

1. Build the two-constraint contact graph (§4.2 weights).
2. Multi-constraint k-way partition → ``P``.
3. *Reshape* (§4.2): induce a bounded decision tree over all live mesh
   nodes; reassign every leaf's nodes to the leaf's majority partition
   (``P'``); collapse each leaf to one vertex (graph ``G'``); run
   multi-constraint rebalancing + refinement on ``G'`` so whole
   rectangular regions move between partitions; project back (``P''``,
   piecewise axis-parallel boundaries by construction).
4. Per snapshot, induce a *pure* tree on the contact points (§4.1) —
   the subdomain geometric descriptors — and filter the global search
   through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.contact_search import face_owner_partition
from repro.core.partitioner import PartitionResult, make_result
from repro.core.weights import build_contact_graph
from repro.dtree.induction import (
    induce_bounded_tree,
    induce_pure_tree,
    suggested_bounds,
)
from repro.dtree.query import tree_filter_search
from repro.dtree.tree import DecisionTree
from repro.geometry.bbox import element_bboxes
from repro.geometry.boxsearch import SearchPlan
from repro.graph.csr import CSRGraph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.graph.ops import contract, induced_subgraph
from repro.obs.tracer import (
    SPAN_COLLAPSE,
    SPAN_DTREE_INDUCE,
    SPAN_REFINE_GPRIME,
    TracerBase,
    ensure_tracer,
)
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.partition.refine_kway import greedy_kway_refine, rebalance_kway
from repro.partition.refine_kway_fm import kway_fm_refine
from repro.runtime.ledger import CommLedger
from repro.sim.sequence import ContactSnapshot
from repro.utils.arrays import relabel_contiguous


@dataclass
class MCMLDTParams:
    """Tunables of MCML+DT (§4.2 and §5 defaults)."""

    contact_edge_weight: int = 5
    max_p: Optional[int] = None  # default: paper's recommended window
    max_i: Optional[int] = None
    margin_weight: float = 0.0  # §6 extension; 0 = paper's Eq. 1 only
    pad: float = 0.0  # contact capture distance added to element boxes
    reshape: bool = True  # False disables P→P'→P'' (ablation)
    options: PartitionOptions = field(default_factory=PartitionOptions)


@dataclass
class FitDiagnostics:
    """What happened inside one fit (exposed for ablations/tests)."""

    edge_cut_initial: int = 0
    edge_cut_final: int = 0
    imbalance_initial: Optional[np.ndarray] = None
    imbalance_reshaped: Optional[np.ndarray] = None
    imbalance_final: Optional[np.ndarray] = None
    reshape_tree_nodes: int = 0
    reshape_moved: int = 0
    max_p: int = 0
    max_i: int = 0


class MCMLDTPartitioner:
    """Stateful MCML+DT driver over a snapshot sequence.

    Implements the :class:`~repro.core.partitioner.Partitioner`
    protocol.
    """

    #: method tag carried into :class:`PartitionResult`
    method = "mcml-dt"

    def __init__(self, k: int, params: Optional[MCMLDTParams] = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.params = params or MCMLDTParams()
        self.part: Optional[np.ndarray] = None
        self.diagnostics = FitDiagnostics()

    # ------------------------------------------------------------------
    def fit(
        self,
        snapshot: ContactSnapshot,
        tracer: Optional[TracerBase] = None,
        ledger: Optional[CommLedger] = None,
    ) -> PartitionResult:
        """Compute the contact-friendly multi-constraint partition.

        Returns a :class:`~repro.core.partitioner.PartitionResult`
        whose diagnostics carry the :class:`FitDiagnostics` keys
        (``edge_cut_initial``/``edge_cut_final``, the three imbalance
        vectors, ``reshape_tree_nodes``/``reshape_moved``,
        ``max_p``/``max_i``).

        With a recording ``tracer``, the fit opens a ``fit`` span with
        nested ``build-graph``, ``partition`` (→ ``coarsen`` /
        ``initial`` / ``refine``), ``dtree-induce``, ``collapse`` and
        ``refine-G'`` children (see ``docs/OBSERVABILITY.md``).
        """
        tracer = ensure_tracer(tracer)
        p = self.params
        with tracer.span("fit") as fit_span:
            with tracer.span("build-graph"):
                graph = build_contact_graph(snapshot, p.contact_edge_weight)
            with tracer.span("partition"):
                part = partition_kway(graph, self.k, p.options, tracer=tracer)
            diag = self.diagnostics = FitDiagnostics()
            diag.edge_cut_initial = edge_cut(graph, part)
            diag.imbalance_initial = load_imbalance(graph, part, self.k)

            if p.reshape and self.k > 1:
                part = self._reshape(snapshot, graph, part, diag, tracer)

            diag.edge_cut_final = edge_cut(graph, part)
            diag.imbalance_final = load_imbalance(graph, part, self.k)
            tracer.count("edgecut_initial", diag.edge_cut_initial)
            tracer.count("edgecut_final", diag.edge_cut_final)
            tracer.count("reshape_moved", diag.reshape_moved)
        self.part = part
        return make_result(
            self, self.method, self.k, part, vars(diag), ledger, fit_span
        )

    def _reshape(
        self,
        snapshot: ContactSnapshot,
        graph: CSRGraph,
        part: np.ndarray,
        diag: FitDiagnostics,
        tracer: TracerBase,
    ) -> np.ndarray:
        """P → P' (leaf-majority) → P'' (refine collapsed G')."""
        p = self.params
        mesh = snapshot.mesh
        used = mesh.used_nodes()
        coords = mesh.nodes[used]
        labels = part[used]

        def_max_p, def_max_i = suggested_bounds(len(used), self.k)
        max_p = p.max_p if p.max_p is not None else def_max_p
        max_i = p.max_i if p.max_i is not None else def_max_i
        diag.max_p, diag.max_i = max_p, max_i

        with tracer.span(SPAN_DTREE_INDUCE):
            tree, leaf_of = induce_bounded_tree(
                coords, labels, self.k, max_p=max_p, max_i=max_i,
                margin_weight=p.margin_weight,
            )
            tracer.count("tree_nodes", tree.n_nodes)
            tracer.count("tree_leaves", tree.n_leaves)
            tracer.count("tree_depth", tree.depth())
        diag.reshape_tree_nodes = tree.n_nodes

        with tracer.span(SPAN_COLLAPSE):
            # P': every point adopts its leaf's majority partition
            node_labels = np.array(
                [nd.label for nd in tree.nodes], dtype=np.int64
            )
            leaf_idx, _ = relabel_contiguous(leaf_of)
            n_leaves = int(leaf_idx.max()) + 1

            # collapse leaves into G' and refine so only whole regions
            # move
            sub, _ = induced_subgraph(graph, used)
            gprime = contract(sub, leaf_idx, n_leaves)
            leaf_part = np.empty(n_leaves, dtype=np.int64)
            leaf_part[leaf_idx] = node_labels[leaf_of]  # majority per leaf

            p_prime = leaf_part[leaf_idx]
            diag.imbalance_reshaped = load_imbalance(
                sub.with_vwgts(sub.vwgts), p_prime, self.k
            )

        with tracer.span(SPAN_REFINE_GPRIME):
            leaf_part, _ = rebalance_kway(
                gprime, leaf_part, self.k, p.options
            )
            leaf_part = greedy_kway_refine(
                gprime, leaf_part, self.k, p.options
            )
            leaf_part = kway_fm_refine(gprime, leaf_part, self.k, p.options)

        new_part = part.copy()
        new_part[used] = leaf_part[leaf_idx]
        diag.reshape_moved = int(
            np.count_nonzero(new_part[used] != part[used])
        )
        return new_part

    # ------------------------------------------------------------------
    def build_descriptors(
        self,
        snapshot: ContactSnapshot,
        tracer: Optional[TracerBase] = None,
    ) -> Tuple[DecisionTree, np.ndarray]:
        """Pure search tree over the snapshot's contact points.

        Returns ``(tree, leaf_of_point)``; ``tree.n_nodes`` is NTNodes.
        """
        self._check_fitted()
        tracer = ensure_tracer(tracer)
        cn = snapshot.contact_nodes
        coords = snapshot.mesh.nodes[cn]
        with tracer.span(SPAN_DTREE_INDUCE):
            tree, leaf_of = induce_pure_tree(
                coords,
                self.part[cn],
                self.k,
                margin_weight=self.params.margin_weight,
            )
            tracer.count("tree_nodes", tree.n_nodes)
        return tree, leaf_of

    def search_plan(
        self,
        snapshot: ContactSnapshot,
        tree: Optional[DecisionTree] = None,
        tracer: Optional[TracerBase] = None,
    ) -> SearchPlan:
        """Tree-filtered global search plan for the snapshot's surface
        elements (NRemote = ``plan.n_remote``)."""
        self._check_fitted()
        tracer = ensure_tracer(tracer)
        if tree is None:
            tree, _ = self.build_descriptors(snapshot, tracer=tracer)
        with tracer.span("search-plan"):
            faces = snapshot.contact_faces
            boxes = element_bboxes(snapshot.mesh.nodes, faces)
            if self.params.pad > 0:
                boxes = boxes.copy()
                boxes[:, 0] -= self.params.pad
                boxes[:, 1] += self.params.pad
            owner = face_owner_partition(self.part, faces)
            plan = tree_filter_search(tree, boxes, owner, self.k)
            tracer.count("n_remote", plan.n_remote)
        return plan

    def _check_fitted(self) -> None:
        if self.part is None:
            raise RuntimeError("call fit() before using the partitioner")
