"""Update strategies across a snapshot sequence (paper §4.3).

Three ways to keep the decomposition current as nodes move and elements
erode:

* ``DESCRIPTOR_ONLY`` — partition fixed; only the search tree is
  re-induced each step (fast, no redistribution; tree may grow as the
  boundary geometry drifts away from axis-parallel).
* ``REPARTITION`` — multi-constraint diffusion repartitioning every
  step (balance stays tight; vertices migrate).
* ``HYBRID`` — repartition every ``period`` steps, descriptor-only in
  between (the paper's suggested optimum).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.weights import build_contact_graph
from repro.graph.metrics import load_imbalance
from repro.obs.tracer import TracerBase, ensure_tracer
from repro.partition.repartition import diffusion_repartition
from repro.sim.sequence import MeshSequence


class UpdateStrategy(enum.Enum):
    """How the decomposition tracks the evolving mesh."""

    DESCRIPTOR_ONLY = "descriptor-only"
    REPARTITION = "repartition"
    HYBRID = "hybrid"


@dataclass
class ReplayStep:
    """Per-step outcome of a replay."""

    step: int
    nt_nodes: int
    imbalance_fe: float
    imbalance_search: float
    n_moved: int  # vertices redistributed this step


@dataclass
class ReplayResult:
    """Full replay trace plus conveniences for the ablation bench."""

    strategy: UpdateStrategy
    k: int
    steps: List[ReplayStep] = field(default_factory=list)

    def mean_nt_nodes(self) -> float:
        """Mean descriptor-tree size across the replay."""
        return float(np.mean([s.nt_nodes for s in self.steps]))

    def max_imbalance(self) -> float:
        """Worst imbalance (either constraint) seen at any step."""
        return float(
            max(
                max(s.imbalance_fe, s.imbalance_search)
                for s in self.steps
            )
        )

    def total_moved(self) -> int:
        """Total vertices redistributed across the replay."""
        return int(sum(s.n_moved for s in self.steps))


def replay_sequence(
    seq: MeshSequence,
    k: int,
    strategy: UpdateStrategy,
    period: int = 10,
    params: Optional[MCMLDTParams] = None,
    tracer: Optional[TracerBase] = None,
) -> ReplayResult:
    """Replay ``seq`` under an update strategy, tracking tree size,
    balance drift, and redistribution volume."""
    if period < 1:
        raise ValueError("period must be >= 1")
    params = params or MCMLDTParams()
    tracer = ensure_tracer(tracer)
    pt = MCMLDTPartitioner(k, params)
    pt.fit(seq[0], tracer=tracer)
    result = ReplayResult(strategy=strategy, k=k)

    for snapshot in seq:
        moved = 0
        repartition_now = strategy is UpdateStrategy.REPARTITION or (
            strategy is UpdateStrategy.HYBRID
            and snapshot.step > 0
            and snapshot.step % period == 0
        )
        graph = build_contact_graph(snapshot, params.contact_edge_weight)
        if repartition_now and snapshot.step > 0:
            with tracer.span("repartition"):
                rep = diffusion_repartition(
                    graph, pt.part, k, params.options
                )
                moved = rep.n_moved
                tracer.count("vertices_moved", moved)
            pt.part = rep.part
        tree, _ = pt.build_descriptors(snapshot, tracer=tracer)
        imb = load_imbalance(graph, pt.part, k)
        result.steps.append(
            ReplayStep(
                step=snapshot.step,
                nt_nodes=tree.n_nodes,
                imbalance_fe=float(imb[0]),
                imbalance_search=float(imb[1]) if len(imb) > 1 else 1.0,
                n_moved=moved,
            )
        )
    return result
