"""Local contact search: exact node-vs-surface-element tests.

The paper deliberately scopes local search out ("the exact details of
the local search phase do not affect the approach used to perform the
global search") — but a production contact code needs one, and having
it lets the examples run the *complete* detection pipeline: global
search filters candidate (element, node) pairs, local search resolves
each candidate to a closest-point projection, gap distance, and
penetration flag.

Implemented as the standard master-slave node-on-segment/facet test:

* 2D (edge faces): project the node onto the segment, clamp to it.
* 3D (quad faces): decompose the bilinear facet into two triangles and
  take the closer closest-point projection; penetration is signed
  against the facet normal (outward per the mesh's face orientation).

All routines are vectorised across candidate pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np


@dataclass
class ContactResolution:
    """Outcome of local search over a candidate set.

    Arrays are aligned with the input pair list: ``gap[i]`` is the
    signed distance of node ``pairs[i][1]`` to element ``pairs[i][0]``
    (negative = penetrating), ``point[i]`` the closest point on the
    element surface.
    """

    pairs: List[Tuple[int, int]]
    gap: np.ndarray
    point: np.ndarray

    @property
    def penetrating(self) -> np.ndarray:
        """Boolean mask of pairs with negative gap."""
        return self.gap < 0.0

    def worst_penetration(self) -> float:
        """Deepest penetration (0 when none)."""
        return float(min(0.0, self.gap.min())) if len(self.gap) else 0.0


def _closest_point_on_segments(
    p: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Closest points on segments [a, b] to points p (row-aligned)."""
    ab = b - a
    denom = np.einsum("ij,ij->i", ab, ab)
    denom = np.where(denom <= 0, 1.0, denom)
    t = np.einsum("ij,ij->i", p - a, ab) / denom
    t = np.clip(t, 0.0, 1.0)
    return a + t[:, None] * ab


def _closest_point_on_triangles(
    p: np.ndarray, a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Closest points on triangles (a, b, c) to points p (row-aligned).

    Ericson's method, vectorised: classify against the six Voronoi
    regions of the triangle and blend.
    """
    ab = b - a
    ac = c - a
    ap = p - a
    d1 = np.einsum("ij,ij->i", ab, ap)
    d2 = np.einsum("ij,ij->i", ac, ap)
    bp = p - b
    d3 = np.einsum("ij,ij->i", ab, bp)
    d4 = np.einsum("ij,ij->i", ac, bp)
    cp = p - c
    d5 = np.einsum("ij,ij->i", ab, cp)
    d6 = np.einsum("ij,ij->i", ac, cp)

    out = np.empty_like(p)
    done = np.zeros(len(p), dtype=bool)

    def settle(mask, value):
        nonlocal done
        mask = mask & ~done
        out[mask] = value[mask]
        done |= mask

    settle((d1 <= 0) & (d2 <= 0), a)  # vertex A
    settle((d3 >= 0) & (d4 <= d3), b)  # vertex B
    settle((d6 >= 0) & (d5 <= d6), c)  # vertex C

    vc = d1 * d4 - d3 * d2
    v_ab = np.divide(d1, d1 - d3, out=np.zeros_like(d1),
                     where=(d1 - d3) != 0)
    settle((vc <= 0) & (d1 >= 0) & (d3 <= 0), a + v_ab[:, None] * ab)

    vb = d5 * d2 - d1 * d6
    w_ac = np.divide(d2, d2 - d6, out=np.zeros_like(d2),
                     where=(d2 - d6) != 0)
    settle((vb <= 0) & (d2 >= 0) & (d6 <= 0), a + w_ac[:, None] * ac)

    va = d3 * d6 - d5 * d4
    w_bc = np.divide(
        d4 - d3, (d4 - d3) + (d5 - d6),
        out=np.zeros_like(d4), where=((d4 - d3) + (d5 - d6)) != 0,
    )
    settle(
        (va <= 0) & ((d4 - d3) >= 0) & ((d5 - d6) >= 0),
        b + w_bc[:, None] * (c - b),
    )

    denom = va + vb + vc
    denom = np.where(denom == 0, 1.0, denom)
    v = vb / denom
    w = vc / denom
    interior = a + v[:, None] * ab + w[:, None] * ac
    out[~done] = interior[~done]
    return out


def resolve_candidates(
    nodes: np.ndarray,
    faces: np.ndarray,
    candidate_pairs: Sequence[Tuple[int, int]],
) -> ContactResolution:
    """Run local search over global-search candidates.

    ``candidate_pairs`` holds (face index, node id) pairs — the output
    of :func:`repro.core.contact_search.serial_candidate_pairs` or the
    parallel search. Gap sign comes from the face normal (2D: left
    normal of the edge; 3D: bilinear facet normal), so penetration
    means the node is behind the surface's outward side.
    """
    nodes = np.asarray(nodes, dtype=float)
    faces = np.asarray(faces, dtype=np.int64)
    pairs = list(candidate_pairs)
    if not pairs:
        return ContactResolution(
            pairs=[], gap=np.empty(0), point=np.empty((0, nodes.shape[1]))
        )
    f_idx = np.array([p[0] for p in pairs], dtype=np.int64)
    n_idx = np.array([p[1] for p in pairs], dtype=np.int64)
    p = nodes[n_idx]
    corners = nodes[faces[f_idx]]  # (m, npf, d)
    d = nodes.shape[1]

    if d == 2:
        a, b = corners[:, 0], corners[:, 1]
        closest = _closest_point_on_segments(p, a, b)
        edge = b - a
        normal = np.column_stack((-edge[:, 1], edge[:, 0]))
    elif d == 3:
        if corners.shape[1] == 3:
            tri_sets = [(0, 1, 2)]
        else:  # quad facet → two triangles
            tri_sets = [(0, 1, 2), (0, 2, 3)]
        best = None
        best_d2 = None
        for (i, j, k) in tri_sets:
            cand = _closest_point_on_triangles(
                p, corners[:, i], corners[:, j], corners[:, k]
            )
            d2 = ((p - cand) ** 2).sum(axis=1)
            if best is None:
                best, best_d2 = cand, d2
            else:
                better = d2 < best_d2
                best[better] = cand[better]
                best_d2[better] = d2[better]
        closest = best
        normal = np.cross(
            corners[:, 1] - corners[:, 0], corners[:, -1] - corners[:, 0]
        )
    else:
        raise ValueError(f"unsupported dimension {d}")

    norm_len = np.linalg.norm(normal, axis=1)
    norm_len = np.where(norm_len <= 0, 1.0, norm_len)
    normal = normal / norm_len[:, None]
    offset = p - closest
    dist = np.linalg.norm(offset, axis=1)
    side = np.sign(np.einsum("ij,ij->i", offset, normal))
    side = np.where(side == 0, 1.0, side)
    gap = dist * side
    return ContactResolution(pairs=pairs, gap=gap, point=closest)


def penetration_summary(
    resolution: ContactResolution,
) -> Dict[str, float]:
    """Aggregate statistics for reporting."""
    pen = resolution.penetrating
    return {
        "candidates": float(len(resolution.pairs)),
        "penetrating": float(int(pen.sum())),
        "worst_penetration": resolution.worst_penetration(),
        "mean_gap": float(resolution.gap.mean())
        if len(resolution.gap)
        else 0.0,
    }
