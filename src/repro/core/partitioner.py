"""The unified partitioner API.

Both partitioning strategies — the paper's
:class:`~repro.core.mcml_dt.MCMLDTPartitioner` (§4) and the
:class:`~repro.core.ml_rcb.MLRCBPartitioner` baseline (§3) — implement
one :class:`Partitioner` protocol whose ``fit`` returns a
:class:`PartitionResult`: the partition labels plus the run artefacts
(diagnostics, communication ledger, tracer spans) that previously had
to be fished out of per-class attributes.

Compatibility: ``fit`` used to return the partitioner itself, and a
lot of code chains ``Partitioner(k).fit(snap).part`` (or
``.part_fe`` / ``.build_descriptors(...)``).  :class:`PartitionResult`
therefore proxies unknown public attributes to the partitioner that
produced it, emitting a :class:`DeprecationWarning` — existing callers
keep working one release while they migrate to ``result.labels`` (or
to keeping their own reference to the partitioner).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Protocol, runtime_checkable

import numpy as np

from repro.obs.tracer import Span, TracerBase
from repro.runtime.ledger import CommLedger
from repro.sim.sequence import ContactSnapshot

__all__ = [
    "PartitionDiagnostics",
    "PartitionResult",
    "Partitioner",
]


class PartitionDiagnostics(Mapping[str, Any]):
    """Read-only fit diagnostics: a mapping whose keys double as
    attributes (``diag["edge_cut_final"]`` == ``diag.edge_cut_final``).

    The key set is method-specific (documented on each partitioner's
    ``fit``); shared keys keep shared names so cross-method tooling can
    compare runs.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, Any]) -> None:
        object.__setattr__(self, "_values", dict(values))

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __getattr__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(
                f"no diagnostic {name!r}; available: "
                f"{sorted(self._values)}"
            ) from None

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"PartitionDiagnostics({inner})"


#: attribute names owned by PartitionResult itself (everything else a
#: caller touches is proxied to the source partitioner, deprecated)
_RESULT_FIELDS = frozenset(
    {"method", "k", "labels", "diagnostics", "ledger", "spans", "_source"}
)


def _deprecated_proxy_warning(name: str) -> None:
    warnings.warn(
        f"accessing {name!r} through the PartitionResult returned by "
        "fit() is deprecated; use the result fields (labels, "
        "diagnostics, ledger, spans) or keep your own reference to "
        "the partitioner",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(eq=False)
class PartitionResult:
    """What one ``fit`` produced.

    ``labels``
        Partition id per mesh node (the FE decomposition for ML+RCB).
    ``diagnostics``
        Method-specific :class:`PartitionDiagnostics`.
    ``ledger``
        The :class:`~repro.runtime.ledger.CommLedger` the fit recorded
        into (the caller's, when one was passed).
    ``spans``
        The live ``fit`` trace span (``None`` without a recording
        tracer; accumulates further if the same tracer re-enters
        ``fit``).
    """

    method: str
    k: int
    labels: np.ndarray
    diagnostics: PartitionDiagnostics
    ledger: CommLedger = field(default_factory=CommLedger)
    spans: Optional[Span] = None
    _source: Optional[Any] = None

    # -- deprecation shim: legacy chained-fit attribute access ---------
    def __getattr__(self, name: str) -> Any:
        src = self.__dict__.get("_source")
        if src is not None and not name.startswith("_"):
            try:
                value = getattr(src, name)
            except AttributeError:
                pass
            else:
                _deprecated_proxy_warning(name)
                return value
        raise AttributeError(
            f"PartitionResult has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _RESULT_FIELDS:
            object.__setattr__(self, name, value)
            return
        src = self.__dict__.get("_source")
        if (
            src is not None
            and not name.startswith("_")
            and hasattr(src, name)
        ):
            _deprecated_proxy_warning(name)
            setattr(src, name, value)
            return
        object.__setattr__(self, name, value)


@runtime_checkable
class Partitioner(Protocol):
    """What every partitioning strategy implements.

    Implementations are stateful drivers over a snapshot sequence
    (they keep ``k``, their parameters, and the labels of the last
    fit); ``fit`` computes the decomposition for a snapshot and
    returns a :class:`PartitionResult`.
    """

    def fit(
        self,
        snapshot: ContactSnapshot,
        tracer: Optional[TracerBase] = None,
        ledger: Optional[CommLedger] = None,
    ) -> PartitionResult:
        """Compute the decomposition of ``snapshot``."""
        ...

    def search_plan(self, snapshot: ContactSnapshot) -> Any:
        """Global contact-search plan for ``snapshot`` (method-specific
        plan type; requires a prior ``fit``)."""
        ...


def make_result(
    source: Any,
    method: str,
    k: int,
    labels: np.ndarray,
    diagnostics: Mapping[str, Any],
    ledger: Optional[CommLedger],
    spans: Optional[Span],
) -> PartitionResult:
    """Assemble a :class:`PartitionResult` (shared by the concrete
    partitioners; ``ledger=None`` gets a fresh empty ledger)."""
    diag_values: Dict[str, Any] = dict(diagnostics)
    return PartitionResult(
        method=method,
        k=k,
        labels=labels,
        diagnostics=PartitionDiagnostics(diag_values),
        ledger=ledger if ledger is not None else CommLedger(),
        spans=spans,
        _source=source,
    )
