"""The two-constraint contact graph model (paper §4.2).

Vertex weights: ``w1(v) = 1`` for every node used by a live element
(the FE-phase work) and 0 for orphaned nodes left behind by erosion;
``w2(v) = 1`` for contact nodes (the search-phase work), else 0. Edge
weights: ``contact_edge_weight`` (5 in the paper's experiments) between
two contact nodes — cutting such an edge costs communication in *both*
phases — and 1 otherwise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.mesh.nodal_graph import nodal_graph
from repro.sim.sequence import ContactSnapshot


def build_contact_graph(
    snapshot: ContactSnapshot,
    contact_edge_weight: int = 5,
    fe_work: Optional[np.ndarray] = None,
    search_work: Optional[np.ndarray] = None,
) -> CSRGraph:
    """Build the weighted nodal graph of a snapshot.

    ``fe_work`` / ``search_work`` override the unit weights for the
    general non-uniform-cost case the paper describes; the defaults
    reproduce its experimental setting (all ones).
    """
    if contact_edge_weight < 1:
        raise ValueError("contact_edge_weight must be >= 1")
    mesh = snapshot.mesh
    n = mesh.num_nodes
    graph = nodal_graph(mesh)

    is_contact = np.zeros(n, dtype=bool)
    is_contact[snapshot.contact_nodes] = True
    used = np.zeros(n, dtype=bool)
    used[mesh.used_nodes()] = True

    vwgts = np.zeros((n, 2), dtype=np.int64)
    if fe_work is None:
        vwgts[used, 0] = 1
    else:
        fe_work = np.asarray(fe_work, dtype=np.int64)
        if len(fe_work) != n:
            raise ValueError("fe_work must have one entry per node")
        vwgts[:, 0] = np.where(used, fe_work, 0)
    if search_work is None:
        vwgts[is_contact, 1] = 1
    else:
        search_work = np.asarray(search_work, dtype=np.int64)
        if len(search_work) != n:
            raise ValueError("search_work must have one entry per node")
        vwgts[:, 1] = np.where(is_contact, search_work, 0)

    # contact-contact edges get the heavier weight
    src = np.repeat(np.arange(n), graph.degrees())
    both_contact = is_contact[src] & is_contact[graph.adjncy]
    adjwgt = np.where(both_contact, contact_edge_weight, 1).astype(np.int64)
    return CSRGraph(graph.xadj, graph.adjncy, adjwgt, vwgts)
