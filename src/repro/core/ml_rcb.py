"""The ML+RCB baseline (Plimpton/Attaway/Brown/Hendrickson, §3).

Two decoupled decompositions: a single-constraint multilevel graph
partition of the whole mesh for the FE phase, and an RCB partition of
the contact points for the search phase. Costs this incurs that
MCML+DT avoids:

* **M2MComm** — contact points whose two owners differ must be shipped
  between the decompositions before each phase (2× per iteration).
* **UpdComm** — as contact points move, the RCB decomposition is
  incrementally re-fit each step, and points that cross a shifted cut
  must migrate.

Its advantage: each decomposition is individually optimal (lower
FEComm than the two-constraint partition, compact RCB boxes for the
search).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.contact_search import face_owner_partition
from repro.core.partitioner import PartitionResult, make_result
from repro.geometry.bbox import element_bboxes
from repro.geometry.boxsearch import SearchPlan, bbox_filter_search
from repro.geometry.rcb import RCBTree, rcb_partition
from repro.graph.csr import CSRGraph
from repro.mesh.nodal_graph import nodal_graph
from repro.metrics.mapping import m2m_comm, update_comm
from repro.obs.tracer import SPAN_MAP_TRANSFER, TracerBase, ensure_tracer
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.runtime.ledger import CommLedger
from repro.sim.sequence import ContactSnapshot


@dataclass
class MLRCBParams:
    """Tunables of the baseline."""

    pad: float = 0.0  # contact capture distance added to element boxes
    options: PartitionOptions = field(default_factory=PartitionOptions)


class MLRCBPartitioner:
    """Stateful ML+RCB driver over a snapshot sequence.

    Implements the :class:`~repro.core.partitioner.Partitioner`
    protocol.
    """

    #: method tag carried into :class:`PartitionResult`
    method = "ml-rcb"

    def __init__(self, k: int, params: Optional[MLRCBParams] = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.params = params or MLRCBParams()
        self.part_fe: Optional[np.ndarray] = None
        self.rcb_tree: Optional[RCBTree] = None
        self.rcb_labels: Optional[np.ndarray] = None
        self.contact_ids: Optional[np.ndarray] = None
        self.last_upd_comm: int = 0

    # ------------------------------------------------------------------
    def fit(
        self,
        snapshot: ContactSnapshot,
        tracer: Optional[TracerBase] = None,
        ledger: Optional[CommLedger] = None,
    ) -> PartitionResult:
        """Build both decompositions from the first snapshot.

        Returns a :class:`~repro.core.partitioner.PartitionResult`
        whose ``labels`` are the FE decomposition and whose
        diagnostics carry ``edge_cut_initial``/``edge_cut_final``
        (equal — no reshape pass here), ``imbalance_final`` of the FE
        partition, and ``n_contact_points``/``rcb_leaves`` of the RCB
        side.
        """
        tracer = ensure_tracer(tracer)
        with tracer.span("fit") as fit_span:
            mesh = snapshot.mesh
            n = mesh.num_nodes
            with tracer.span("fe-partition"):
                vwgts = np.zeros((n, 1), dtype=np.int64)
                vwgts[mesh.used_nodes(), 0] = 1
                graph = nodal_graph(mesh, vwgts=vwgts)
                self.part_fe = partition_kway(
                    graph, self.k, self.params.options, tracer=tracer
                )

            with tracer.span("rcb"):
                cn = snapshot.contact_nodes
                coords = mesh.nodes[cn]
                self.rcb_labels, self.rcb_tree = rcb_partition(
                    coords, self.k
                )
            cut = edge_cut(graph, self.part_fe)
            diagnostics = {
                "edge_cut_initial": cut,
                "edge_cut_final": cut,
                "imbalance_final": load_imbalance(
                    graph, self.part_fe, self.k
                ),
                "n_contact_points": int(len(cn)),
                "rcb_leaves": int(self.rcb_labels.max()) + 1
                if len(cn)
                else 0,
            }
        self.contact_ids = cn.copy()
        self.last_upd_comm = 0
        return make_result(
            self, self.method, self.k, self.part_fe, diagnostics,
            ledger, fit_span,
        )

    def update(
        self,
        snapshot: ContactSnapshot,
        tracer: Optional[TracerBase] = None,
    ) -> np.ndarray:
        """Incremental RCB re-fit for a new snapshot.

        Re-solves each cut on the moved contact points (structure
        preserved), assigns the snapshot's contact nodes, and records
        **UpdComm** (points present in both steps that changed RCB
        owner).
        """
        self._check_fitted()
        tracer = ensure_tracer(tracer)
        with tracer.span("rcb-update"):
            cn = snapshot.contact_nodes
            coords = snapshot.mesh.nodes[cn]
            new_labels = self.rcb_tree.update(coords)
            self.last_upd_comm = update_comm(
                self.rcb_labels, new_labels, self.contact_ids, cn
            )
            tracer.count("upd_comm", self.last_upd_comm)
        self.rcb_labels = new_labels
        self.contact_ids = cn.copy()
        return new_labels

    # ------------------------------------------------------------------
    def m2m_comm_now(self, tracer: Optional[TracerBase] = None) -> int:
        """Contact points whose FE and RCB owners differ (after optimal
        RCB relabelling).

        With a recording ``tracer`` the mapping solve is timed under a
        ``map-transfer`` span — the per-iteration M2MComm cost the
        paper charges ML+RCB (and that MCML+DT avoids) as wall time,
        not just items.
        """
        self._check_fitted()
        tracer = ensure_tracer(tracer)
        with tracer.span(SPAN_MAP_TRANSFER):
            items = m2m_comm(
                self.part_fe[self.contact_ids], self.rcb_labels, self.k
            )
            tracer.count("items", items)
        return items

    def search_plan(
        self,
        snapshot: ContactSnapshot,
        tracer: Optional[TracerBase] = None,
    ) -> SearchPlan:
        """Bounding-box-filtered global search plan; elements are owned
        by their (majority) RCB partition, the decomposition that
        performs the search phase."""
        self._check_fitted()
        tracer = ensure_tracer(tracer)
        with tracer.span("search-plan"):
            faces = snapshot.contact_faces
            boxes = element_bboxes(snapshot.mesh.nodes, faces)
            if self.params.pad > 0:
                boxes = boxes.copy()
                boxes[:, 0] -= self.params.pad
                boxes[:, 1] += self.params.pad
            rcb_of_node = np.full(
                snapshot.mesh.num_nodes, -1, dtype=np.int64
            )
            rcb_of_node[self.contact_ids] = self.rcb_labels
            owner = face_owner_partition(rcb_of_node, faces)
            coords = snapshot.mesh.nodes[self.contact_ids]
            plan = bbox_filter_search(
                boxes, owner, coords, self.rcb_labels, self.k
            )
            tracer.count("n_remote", plan.n_remote)
        return plan

    def _check_fitted(self) -> None:
        if self.part_fe is None:
            raise RuntimeError("call fit() before using the partitioner")
