"""Production-facing time-stepping driver.

A simulation code integrating MCML+DT calls one object per run:

    driver = ContactStepDriver(k=16, strategy=UpdateStrategy.HYBRID)
    driver.initialize(first_snapshot)
    for snapshot in simulation:
        result = driver.step(snapshot)
        # result.candidates drives the local-search / force loop

Each ``step`` performs the §4.3 update policy (descriptor-only /
periodic repartition), re-induces the descriptor tree, runs the
parallel global search on the configured execution backend, optionally
resolves candidates with the local search, and accounts all
communication in one ledger that persists across the run — i.e. the
driver is the executable version of the paper's full per-iteration
pipeline. Pass ``backend="process:4"`` (or set ``$REPRO_BACKEND``) to
run the search ranks on a real worker pool; results are bit-identical
across backends.

Fault tolerance (``docs/FAULT_TOLERANCE.md``): the driver keeps a
recovery point — a schema-v2 checkpoint, in memory by default — of its
last good state. When a step's execution backend fails unrecoverably
(:class:`~repro.runtime.backends.base.BackendError`), the driver
restores the recovery point and re-executes the step, so a faulted run
ends bit-identical to a clean one. Tune or disable with
:class:`RecoveryPolicy`.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.contact_search import parallel_contact_search
from repro.core.local_search import (
    ContactResolution,
    resolve_candidates,
)
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.update import UpdateStrategy
from repro.core.weights import build_contact_graph
from repro.geometry.bbox import element_bboxes
from repro.graph.metrics import load_imbalance
from repro.metrics.comm import fe_comm
from repro.obs.tracer import TracerBase, ensure_tracer
from repro.partition.repartition import diffusion_repartition
from repro.runtime.backends import resolve_backend
from repro.runtime.backends.base import BackendError, BackendLike
from repro.runtime.ledger import CommLedger
from repro.sim.sequence import ContactSnapshot


@dataclass(frozen=True)
class RecoveryPolicy:
    """Step-level fault recovery knobs.

    ``max_step_retries``
        How many times a failed step is restored-and-re-executed
        before the :class:`BackendError` propagates. ``0`` disables
        recovery (and recovery-point upkeep).
    ``checkpoint_path``
        Where recovery points live. ``None`` (default) keeps them as
        in-memory checkpoint bytes; a path additionally leaves the
        last good checkpoint on disk, so an operator can restart the
        whole process from it with ``load_driver``.
    """

    max_step_retries: int = 1
    checkpoint_path: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.max_step_retries < 0:
            raise ValueError("max_step_retries must be >= 0")


@dataclass
class StepResult:
    """Everything one driver step produced."""

    step: int
    nt_nodes: int
    n_remote: int
    fe_comm: int
    imbalance: np.ndarray
    repartitioned: bool
    n_moved: int
    candidates: Set[Tuple[int, int]]
    resolution: Optional[ContactResolution] = None

    @property
    def n_candidates(self) -> int:
        """Number of candidate (element, node) contact pairs found."""
        return len(self.candidates)


class ContactStepDriver:
    """Stateful per-time-step contact pipeline (see module docstring)."""

    def __init__(
        self,
        k: int,
        params: Optional[MCMLDTParams] = None,
        strategy: UpdateStrategy = UpdateStrategy.DESCRIPTOR_ONLY,
        repartition_period: int = 10,
        resolve_local: bool = True,
        tracer: Optional[TracerBase] = None,
        backend: BackendLike = None,
        recovery: Optional[RecoveryPolicy] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if repartition_period < 1:
            raise ValueError("repartition_period must be >= 1")
        self.k = k
        self.params = params or MCMLDTParams()
        self.strategy = strategy
        self.repartition_period = repartition_period
        self.resolve_local = resolve_local
        self.backend = resolve_backend(backend)
        self.partitioner = MCMLDTPartitioner(k, self.params)
        self.ledger = CommLedger()
        self.tracer = ensure_tracer(tracer)
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.history: List[StepResult] = []
        self._initialized = False
        self._steps_since_repartition = 0
        self._recovery_point: Optional[bytes] = None

    # ------------------------------------------------------------------
    def initialize(self, snapshot: ContactSnapshot) -> "ContactStepDriver":
        """Fit the decomposition on the first snapshot."""
        self.partitioner.fit(snapshot, tracer=self.tracer)
        self._initialized = True
        self._steps_since_repartition = 0
        self._save_recovery_point()
        return self

    def step(self, snapshot: ContactSnapshot) -> StepResult:
        """Run one contact-detection time step.

        If the execution backend fails unrecoverably mid-step, the
        driver restores its last recovery point and re-executes the
        step (up to ``recovery.max_step_retries`` times). A failed
        attempt never reaches ``history``, and the re-execution starts
        from exactly the pre-step state, so a recovered run is
        bit-identical to one that never faulted.
        """
        if not self._initialized:
            raise RuntimeError("call initialize() before step()")
        with self.tracer.span("step"):
            result = self._step_with_recovery(snapshot)
        self.history.append(result)
        self._save_recovery_point()
        return result

    def _step_with_recovery(self, snapshot: ContactSnapshot) -> StepResult:
        attempt = 0
        while True:
            try:
                return self._step_traced(snapshot)
            except BackendError:
                attempt += 1
                if (
                    attempt > self.recovery.max_step_retries
                    or self._recovery_point is None
                    and self.recovery.checkpoint_path is None
                ):
                    raise
                with self.tracer.span("recovery"):
                    self.tracer.count("step_recoveries", 1)
                    self._restore_recovery_point()

    # -- recovery-point plumbing (docs/FAULT_TOLERANCE.md) -------------
    def _save_recovery_point(self) -> None:
        if self.recovery.max_step_retries < 1:
            return
        from repro.core.checkpoint import dump_driver_bytes, save_driver

        self._recovery_point = dump_driver_bytes(self)
        if self.recovery.checkpoint_path is not None:
            save_driver(self.recovery.checkpoint_path, self)

    def _restore_recovery_point(self) -> None:
        from repro.core.checkpoint import restore_driver_state

        if self._recovery_point is not None:
            restore_driver_state(self, io.BytesIO(self._recovery_point))
        else:
            restore_driver_state(self, self.recovery.checkpoint_path)

    def _step_traced(self, snapshot: ContactSnapshot) -> StepResult:
        tracer = self.tracer
        pt = self.partitioner
        with tracer.span("build-graph"):
            graph = build_contact_graph(
                snapshot, self.params.contact_edge_weight
            )

        # §4.3 update policy
        repartitioned = False
        n_moved = 0
        self._steps_since_repartition += 1
        due = (
            self.strategy is UpdateStrategy.REPARTITION
            or (
                self.strategy is UpdateStrategy.HYBRID
                and self._steps_since_repartition >= self.repartition_period
            )
        )
        if due and self.history:
            with tracer.span("repartition"):
                rep = diffusion_repartition(
                    graph, pt.part, self.k, self.params.options
                )
                pt.part = rep.part
                n_moved = rep.n_moved
                tracer.count("vertices_moved", n_moved)
            repartitioned = True
            self._steps_since_repartition = 0
            # account the redistribution (items = vertices moved; the
            # destinations are known, the source rank ships each)
            if n_moved:
                self.ledger.record("repartition", 0, 1, n_moved)

        # descriptor update + global search
        tree, _ = pt.build_descriptors(snapshot, tracer=tracer)
        plan = pt.search_plan(snapshot, tree, tracer=tracer)
        boxes = element_bboxes(snapshot.mesh.nodes, snapshot.contact_faces)
        if self.params.pad > 0:
            boxes[:, 0] -= self.params.pad
            boxes[:, 1] += self.params.pad
        coords = snapshot.mesh.nodes[snapshot.contact_nodes]
        candidates, _ = parallel_contact_search(
            plan, boxes, snapshot.contact_faces, coords,
            snapshot.contact_nodes, pt.part[snapshot.contact_nodes],
            self.k, ledger=self.ledger, tracer=tracer,
            backend=self.backend,
        )

        resolution = None
        if self.resolve_local:
            with tracer.span("local-search"):
                resolution = resolve_candidates(
                    snapshot.mesh.nodes, snapshot.contact_faces,
                    sorted(candidates),
                )

        return StepResult(
            step=snapshot.step,
            nt_nodes=tree.n_nodes,
            n_remote=plan.n_remote,
            fe_comm=fe_comm(graph, pt.part),
            imbalance=load_imbalance(graph, pt.part, self.k),
            repartitioned=repartitioned,
            n_moved=n_moved,
            candidates=candidates,
            resolution=resolution,
        )

    # ------------------------------------------------------------------
    def run(self, snapshots) -> List[StepResult]:
        """Initialize on the first snapshot and step through the rest."""
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError("need at least one snapshot")
        self.initialize(snapshots[0])
        return [self.step(s) for s in snapshots]

    def total_exchanged(self) -> int:
        """Surface elements shipped across the whole run."""
        return self.ledger.items("contact-exchange")

    def total_redistributed(self) -> int:
        """Vertices moved by repartitioning across the whole run."""
        return self.ledger.items("repartition")
