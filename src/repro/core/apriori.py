"""A-priori contact partitioning (paper §3, first problem class).

When the surfaces that will come into contact are known or predictable
— e.g. a bumper about to strike a known wall — the classical approach
(ParaDyn [12]) augments the mesh graph with *virtual edges* between the
to-be-contacting surface nodes and runs a two-constraint partitioning.
Minimising the (weighted) cut then pulls contacting surface pairs into
the same partition, so the contact search becomes mostly local.

This is the baseline the paper's *general* method replaces when no such
prediction exists; implementing it lets the benchmarks quantify the gap
between prediction-aware and prediction-free decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.core.contact_search import face_owner_partition
from repro.core.partitioner import PartitionResult, make_result
from repro.core.weights import build_contact_graph
from repro.dtree.induction import induce_pure_tree
from repro.dtree.query import tree_filter_search
from repro.geometry.bbox import element_bboxes
from repro.geometry.boxsearch import SearchPlan
from repro.graph.build import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.metrics import edge_cut
from repro.obs.tracer import TracerBase, ensure_tracer
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.runtime.ledger import CommLedger
from repro.sim.sequence import ContactSnapshot


def predict_contact_pairs(
    snapshot: ContactSnapshot, radius: float
) -> np.ndarray:
    """Predict contacting node pairs: contact nodes of *different*
    bodies within ``radius`` of each other, ``(p, 2)`` node ids.

    This is the oracle a simulation analyst provides in the first-class
    setting; here proximity in the initial geometry stands in for it.
    """
    if radius <= 0:
        raise ValueError("radius must be > 0")
    cn = snapshot.contact_nodes
    coords = snapshot.mesh.nodes[cn]
    body = snapshot.mesh.node_body_id()[cn]
    tree = cKDTree(coords)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    if len(pairs) == 0:
        return np.empty((0, 2), dtype=np.int64)
    cross = body[pairs[:, 0]] != body[pairs[:, 1]]
    return cn[pairs[cross]].astype(np.int64)


def build_apriori_graph(
    snapshot: ContactSnapshot,
    predicted_pairs: np.ndarray,
    contact_edge_weight: int = 5,
    virtual_edge_weight: int = 10,
) -> CSRGraph:
    """The §3 graph model: the two-constraint contact graph plus
    heavy virtual edges between predicted contacting pairs."""
    if virtual_edge_weight < 1:
        raise ValueError("virtual_edge_weight must be >= 1")
    base = build_contact_graph(snapshot, contact_edge_weight)
    predicted_pairs = np.asarray(predicted_pairs, dtype=np.int64)
    if len(predicted_pairs) == 0:
        return base
    src = np.repeat(
        np.arange(base.num_vertices), np.diff(base.xadj)
    )
    edges = np.concatenate(
        [
            np.column_stack((src, base.adjncy)),
            predicted_pairs,
        ]
    )
    weights = np.concatenate(
        [
            base.adjwgt,
            np.full(len(predicted_pairs), virtual_edge_weight,
                    dtype=np.int64),
        ]
    )
    return from_edge_list(
        base.num_vertices, edges, weights=weights, vwgts=base.vwgts,
        combine="max",
    )


@dataclass
class AprioriParams:
    """Tunables of the a-priori partitioner."""

    prediction_radius: float = 0.6
    contact_edge_weight: int = 5
    virtual_edge_weight: int = 10
    pad: float = 0.0
    options: PartitionOptions = field(default_factory=PartitionOptions)


class AprioriPartitioner:
    """§3 first-class contact decomposition driver.

    Implements the :class:`~repro.core.partitioner.Partitioner`
    protocol.
    """

    #: method tag carried into :class:`PartitionResult`
    method = "apriori"

    def __init__(self, k: int, params: Optional[AprioriParams] = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.params = params or AprioriParams()
        self.part: Optional[np.ndarray] = None
        self.predicted_pairs: Optional[np.ndarray] = None

    def fit(
        self,
        snapshot: ContactSnapshot,
        tracer: Optional[TracerBase] = None,
        ledger: Optional[CommLedger] = None,
    ) -> PartitionResult:
        """Predict pairs, augment the graph, partition.

        The returned result's diagnostics carry ``edge_cut_final``,
        ``n_predicted_pairs``, and ``colocation_fraction``.
        """
        tracer = ensure_tracer(tracer)
        p = self.params
        with tracer.span("fit") as fit_span:
            self.predicted_pairs = predict_contact_pairs(
                snapshot, p.prediction_radius
            )
            graph = build_apriori_graph(
                snapshot, self.predicted_pairs,
                p.contact_edge_weight, p.virtual_edge_weight,
            )
            with tracer.span("partition"):
                self.part = partition_kway(
                    graph, self.k, p.options, tracer=tracer
                )
            diagnostics = {
                "edge_cut_final": edge_cut(graph, self.part),
                "n_predicted_pairs": int(len(self.predicted_pairs)),
                "colocation_fraction": self.colocation_fraction(),
            }
        return make_result(
            self, self.method, self.k, self.part, diagnostics,
            ledger, fit_span,
        )

    def colocation_fraction(self) -> float:
        """Fraction of predicted pairs whose endpoints landed in the
        same partition — the quantity the virtual edges maximise."""
        self._check_fitted()
        if len(self.predicted_pairs) == 0:
            return 1.0
        a = self.part[self.predicted_pairs[:, 0]]
        b = self.part[self.predicted_pairs[:, 1]]
        return float((a == b).mean())

    def search_plan(self, snapshot: ContactSnapshot) -> SearchPlan:
        """Tree-filtered global search on the a-priori partition (same
        machinery as MCML+DT — the decomposition differs, not the
        filter)."""
        self._check_fitted()
        faces = snapshot.contact_faces
        boxes = element_bboxes(snapshot.mesh.nodes, faces)
        if self.params.pad > 0:
            boxes = boxes.copy()
            boxes[:, 0] -= self.params.pad
            boxes[:, 1] += self.params.pad
        cn = snapshot.contact_nodes
        tree, _ = induce_pure_tree(
            snapshot.mesh.nodes[cn], self.part[cn], self.k
        )
        owner = face_owner_partition(self.part, faces)
        return tree_filter_search(tree, boxes, owner, self.k)

    def _check_fitted(self) -> None:
        if self.part is None:
            raise RuntimeError("call fit() before using the partitioner")
