"""Checkpoint/restart for long contact runs.

Production contact codes run for days; the decomposition state must
survive restarts. A checkpoint stores everything that is expensive or
stateful — the partition vector, the driver's update-strategy phase,
and the accumulated communication totals — as a plain ``.npz`` (no
pickled code, so checkpoints are portable across library versions that
keep the schema).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.driver import ContactStepDriver
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.update import UpdateStrategy
from repro.partition.config import PartitionOptions
from repro.runtime.backends.base import BackendSpec

PathLike = Union[str, Path]

# v1 stored per-phase totals only; v2 adds the per-rank sent/received
# breakdown so a restarted run continues the full accounting, plus the
# execution-backend name for provenance. v1 checkpoints still load
# (their per-rank totals start empty).
_SCHEMA_VERSION = 2
_READABLE_SCHEMAS = (1, 2)


def save_driver(path: PathLike, driver: ContactStepDriver) -> None:
    """Write a restartable snapshot of ``driver`` to ``path``."""
    if driver.partitioner.part is None:
        raise ValueError("driver is not initialized; nothing to checkpoint")
    p = driver.params
    meta = {
        "schema": _SCHEMA_VERSION,
        "k": driver.k,
        "strategy": driver.strategy.value,
        "repartition_period": driver.repartition_period,
        "resolve_local": driver.resolve_local,
        "steps_since_repartition": driver._steps_since_repartition,
        "steps_completed": len(driver.history),
        "params": {
            "contact_edge_weight": p.contact_edge_weight,
            "max_p": p.max_p,
            "max_i": p.max_i,
            "margin_weight": p.margin_weight,
            "pad": p.pad,
            "reshape": p.reshape,
            "ubfactor": p.options.ubfactor,
        },
        "ledger": {
            phase: [t.n_messages, t.n_items]
            for phase, t in driver.ledger.phases.items()
        },
        "ledger_ranks": {
            "sent": [
                [phase, rank, items]
                for (phase, rank), items in sorted(
                    driver.ledger.sent_by_rank.items()
                )
            ],
            "received": [
                [phase, rank, items]
                for (phase, rank), items in sorted(
                    driver.ledger.received_by_rank.items()
                )
            ],
        },
        "backend": driver.backend.name,
    }
    np.savez_compressed(
        Path(path),
        part=driver.partitioner.part,
        meta=np.array(json.dumps(meta)),
    )


def load_driver(
    path: PathLike, backend: "BackendSpec" = None
) -> ContactStepDriver:
    """Reconstruct a driver from a checkpoint.

    The returned driver is initialized (its partition is restored) and
    ready for ``step``; per-step history is not replayed (only ledger
    totals carry over), matching what a restarted production run needs.
    ``backend`` selects the restarted run's execution backend (default:
    the usual resolution — checkpoints restore state, not placement).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        part = data["part"]
    if meta.get("schema") not in _READABLE_SCHEMAS:
        raise ValueError(
            f"unsupported checkpoint schema {meta.get('schema')!r}"
        )
    pm = meta["params"]
    params = MCMLDTParams(
        contact_edge_weight=pm["contact_edge_weight"],
        max_p=pm["max_p"],
        max_i=pm["max_i"],
        margin_weight=pm["margin_weight"],
        pad=pm["pad"],
        reshape=pm["reshape"],
        options=PartitionOptions(ubfactor=pm["ubfactor"]),
    )
    driver = ContactStepDriver(
        meta["k"],
        params,
        strategy=UpdateStrategy(meta["strategy"]),
        repartition_period=meta["repartition_period"],
        resolve_local=meta["resolve_local"],
        backend=backend,
    )
    driver.partitioner = MCMLDTPartitioner(meta["k"], params)
    driver.partitioner.part = part
    driver._initialized = True
    driver._steps_since_repartition = meta["steps_since_repartition"]
    from repro.runtime.ledger import PhaseTotals

    for phase, (n_msg, n_items) in meta["ledger"].items():
        driver.ledger.phases[phase] = PhaseTotals(
            n_messages=n_msg, n_items=n_items
        )
    for phase, rank, items in meta.get("ledger_ranks", {}).get("sent", []):
        driver.ledger.sent_by_rank[(phase, int(rank))] = int(items)
    for phase, rank, items in meta.get("ledger_ranks", {}).get(
        "received", []
    ):
        driver.ledger.received_by_rank[(phase, int(rank))] = int(items)
    return driver
