"""Checkpoint/restart for long contact runs.

Production contact codes run for days; the decomposition state must
survive restarts. A checkpoint stores everything that is expensive or
stateful — the partition vector, the driver's update-strategy phase,
and the accumulated communication totals — as a plain ``.npz`` (no
pickled code, so checkpoints are portable across library versions that
keep the schema).

Targets may be paths or binary file objects; the driver's step-level
fault recovery (``docs/FAULT_TOLERANCE.md``) uses the in-memory
variants :func:`dump_driver_bytes` / :func:`restore_driver_state` to
roll a live driver back to its last good step without touching disk.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, BinaryIO, Dict, Tuple, Union

import numpy as np

from repro.core.driver import ContactStepDriver
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.update import UpdateStrategy
from repro.graph.digest import digest_arrays
from repro.partition.config import PartitionOptions
from repro.runtime.backends.base import BackendLike
from repro.runtime.ledger import CommLedger, PhaseTotals

PathLike = Union[str, Path]
Target = Union[str, Path, BinaryIO]


def _coerce_target(target: Target) -> Union[Path, BinaryIO]:
    """Paths stay paths; open binary files pass through untouched."""
    if hasattr(target, "read") or hasattr(target, "write"):
        return target  # type: ignore[return-value]
    return Path(target)  # type: ignore[arg-type]

# v1 stored per-phase totals only; v2 adds the per-rank sent/received
# breakdown so a restarted run continues the full accounting, plus the
# execution-backend name for provenance. v1 checkpoints still load
# (their per-rank totals start empty). v2 checkpoints written since
# the content-digest helper exists additionally carry ``part_digest``
# — the canonical :func:`repro.graph.digest.digest_arrays` of the
# partition vector — which is verified on load so silent corruption
# of the payload is caught instead of resumed from.
_SCHEMA_VERSION = 2
_READABLE_SCHEMAS = (1, 2)


def save_driver(path: Target, driver: ContactStepDriver) -> None:
    """Write a restartable snapshot of ``driver`` to ``path`` (a path
    or a writable binary file object)."""
    if driver.partitioner.part is None:
        raise ValueError("driver is not initialized; nothing to checkpoint")
    p = driver.params
    meta = {
        "schema": _SCHEMA_VERSION,
        "k": driver.k,
        "strategy": driver.strategy.value,
        "repartition_period": driver.repartition_period,
        "resolve_local": driver.resolve_local,
        "steps_since_repartition": driver._steps_since_repartition,
        "steps_completed": len(driver.history),
        "params": {
            "contact_edge_weight": p.contact_edge_weight,
            "max_p": p.max_p,
            "max_i": p.max_i,
            "margin_weight": p.margin_weight,
            "pad": p.pad,
            "reshape": p.reshape,
            "ubfactor": p.options.ubfactor,
        },
        "ledger": {
            phase: [t.n_messages, t.n_items]
            for phase, t in driver.ledger.phases.items()
        },
        "ledger_ranks": {
            "sent": [
                [phase, rank, items]
                for (phase, rank), items in sorted(
                    driver.ledger.sent_by_rank.items()
                )
            ],
            "received": [
                [phase, rank, items]
                for (phase, rank), items in sorted(
                    driver.ledger.received_by_rank.items()
                )
            ],
        },
        "backend": driver.backend.name,
        "part_digest": digest_arrays({"part": driver.partitioner.part}),
    }
    np.savez_compressed(
        _coerce_target(path),
        part=driver.partitioner.part,
        meta=np.array(json.dumps(meta)),
    )


def dump_driver_bytes(driver: ContactStepDriver) -> bytes:
    """Serialize ``driver`` to checkpoint bytes (same schema as
    :func:`save_driver`, no filesystem round-trip)."""
    buf = io.BytesIO()
    save_driver(buf, driver)
    return buf.getvalue()


def _read_checkpoint(source: Target) -> Tuple[Dict[str, Any], np.ndarray]:
    """Load and schema-check a checkpoint; returns ``(meta, part)``."""
    with np.load(_coerce_target(source), allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        part = data["part"]
    if meta.get("schema") not in _READABLE_SCHEMAS:
        raise ValueError(
            f"unsupported checkpoint schema {meta.get('schema')!r}"
        )
    expected = meta.get("part_digest")
    if expected is not None:
        actual = digest_arrays({"part": part})
        if actual != expected:
            raise ValueError(
                "checkpoint partition vector is corrupt: content "
                f"digest {actual} does not match the recorded "
                f"{expected}"
            )
    return meta, part


def _ledger_from_meta(meta: Dict[str, Any]) -> CommLedger:
    """Rebuild the communication ledger a checkpoint recorded."""
    ledger = CommLedger()
    for phase, (n_msg, n_items) in meta["ledger"].items():
        ledger.phases[phase] = PhaseTotals(
            n_messages=n_msg, n_items=n_items
        )
    ranks = meta.get("ledger_ranks", {})
    for phase, rank, items in ranks.get("sent", []):
        ledger.sent_by_rank[(phase, int(rank))] = int(items)
    for phase, rank, items in ranks.get("received", []):
        ledger.received_by_rank[(phase, int(rank))] = int(items)
    return ledger


def restore_driver_state(
    driver: ContactStepDriver, source: Target
) -> ContactStepDriver:
    """Roll a *live* driver back to a checkpoint, in place.

    Restores the partition vector, the accumulated ledger totals, and
    the update-strategy phase; the driver's configuration (``k``,
    params, backend, tracer) and step history are left alone.  This is
    the driver's step-level recovery path: a failed superstep restores
    the last good checkpoint and re-executes deterministically.
    """
    meta, part = _read_checkpoint(source)
    if meta["k"] != driver.k:
        raise ValueError(
            f"checkpoint was taken at k={meta['k']}, driver has "
            f"k={driver.k}"
        )
    driver.partitioner.part = part
    driver.ledger = _ledger_from_meta(meta)
    driver._steps_since_repartition = meta["steps_since_repartition"]
    driver._initialized = True
    return driver


def load_driver(
    path: Target, backend: "BackendLike" = None
) -> ContactStepDriver:
    """Reconstruct a driver from a checkpoint.

    The returned driver is initialized (its partition is restored) and
    ready for ``step``; per-step history is not replayed (only ledger
    totals carry over), matching what a restarted production run needs.
    ``backend`` selects the restarted run's execution backend (default:
    the usual resolution — checkpoints restore state, not placement).
    """
    meta, part = _read_checkpoint(path)
    pm = meta["params"]
    params = MCMLDTParams(
        contact_edge_weight=pm["contact_edge_weight"],
        max_p=pm["max_p"],
        max_i=pm["max_i"],
        margin_weight=pm["margin_weight"],
        pad=pm["pad"],
        reshape=pm["reshape"],
        options=PartitionOptions(ubfactor=pm["ubfactor"]),
    )
    driver = ContactStepDriver(
        meta["k"],
        params,
        strategy=UpdateStrategy(meta["strategy"]),
        repartition_period=meta["repartition_period"],
        resolve_local=meta["resolve_local"],
        backend=backend,
    )
    driver.partitioner = MCMLDTPartitioner(meta["k"], params)
    driver.partitioner.part = part
    driver._initialized = True
    driver._steps_since_repartition = meta["steps_since_repartition"]
    driver.ledger = _ledger_from_meta(meta)
    return driver
