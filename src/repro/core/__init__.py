"""The paper's contribution and its baseline.

* :mod:`repro.core.weights` — the two-constraint, contact-weighted
  nodal graph model (§4.2).
* :mod:`repro.core.mcml_dt` — the MCML+DT partitioner: multi-constraint
  partition → decision-tree-guided reshaping (P → P' → P'') →
  pure-tree subdomain descriptors → tree-filtered global search.
* :mod:`repro.core.ml_rcb` — the ML+RCB baseline (Plimpton et al.):
  separate graph and RCB decompositions with mesh-to-mesh transfer.
* :mod:`repro.core.contact_search` — serial reference and simulated
  parallel global search (completeness cross-check).
* :mod:`repro.core.update` — §4.3 update strategies.
* :mod:`repro.core.pipeline` — sequence evaluation producing the
  Table-1 metrics.
"""

from repro.core.weights import build_contact_graph
from repro.core.partitioner import (
    PartitionDiagnostics,
    PartitionResult,
    Partitioner,
)
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.ml_rcb import MLRCBParams, MLRCBPartitioner
from repro.core.apriori import AprioriParams, AprioriPartitioner
from repro.core.contact_search import (
    face_owner_partition,
    parallel_contact_search,
    serial_candidate_pairs,
)
from repro.core.local_search import (
    ContactResolution,
    penetration_summary,
    resolve_candidates,
)
from repro.core.driver import ContactStepDriver, RecoveryPolicy, StepResult
from repro.core.update import UpdateStrategy, replay_sequence
from repro.core.pipeline import (
    SequenceResult,
    StepMetrics,
    evaluate_mcml_dt,
    evaluate_ml_rcb,
    table1,
)

__all__ = [
    "build_contact_graph",
    "Partitioner",
    "PartitionDiagnostics",
    "PartitionResult",
    "MCMLDTParams",
    "MCMLDTPartitioner",
    "MLRCBParams",
    "MLRCBPartitioner",
    "AprioriParams",
    "AprioriPartitioner",
    "face_owner_partition",
    "parallel_contact_search",
    "serial_candidate_pairs",
    "ContactResolution",
    "penetration_summary",
    "resolve_candidates",
    "ContactStepDriver",
    "RecoveryPolicy",
    "StepResult",
    "UpdateStrategy",
    "replay_sequence",
    "SequenceResult",
    "StepMetrics",
    "evaluate_mcml_dt",
    "evaluate_ml_rcb",
    "table1",
]
