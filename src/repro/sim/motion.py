"""Projectile kinematics.

The projectile travels along −z (the plate normal). In free flight it
moves at ``v0`` per unit time; while its nose is inside a plate slab it
decelerates by a constant factor per unit time, which produces the
qualitative EPIC behaviour: fast approach, slow grind through each
plate, slower exit. Positions are integrated once up front so any
snapshot time can be queried in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class ProjectileKinematics:
    """Closed-form-ish tip trajectory through resisting slabs.

    Attributes
    ----------
    tip0:
        Initial nose z-coordinate.
    v0:
        Free-flight speed (> 0, distance per unit time, moving −z).
    slabs:
        ``(z_lo, z_hi)`` intervals providing resistance.
    drag:
        Fractional speed loss per unit time while the nose is inside a
        slab (0 = none, e.g. 0.04 = 4%/unit-time).
    min_speed:
        Speed floor so the projectile never stalls completely (keeps
        all 100 snapshots distinct, as in the EPIC run).
    """

    tip0: float
    v0: float
    slabs: Sequence[Tuple[float, float]]
    drag: float = 0.03
    min_speed: float = 0.05

    def __post_init__(self) -> None:
        check_positive("v0", self.v0)
        if not 0.0 <= self.drag < 1.0:
            raise ValueError(f"drag must be in [0, 1), got {self.drag}")
        if self.min_speed <= 0:
            raise ValueError("min_speed must be > 0")

    def tip_at(self, times: np.ndarray) -> np.ndarray:
        """Nose z-coordinate at each of the (sorted) ``times``.

        Integrated with unit sub-steps between 0 and ``max(times)``.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if (times < 0).any():
            raise ValueError("times must be non-negative")
        t_end = float(times.max()) if len(times) else 0.0
        n_sub = int(np.ceil(t_end)) + 1
        zs = np.empty(n_sub + 1)
        zs[0] = self.tip0
        z, v = self.tip0, self.v0
        for i in range(n_sub):
            inside = any(lo <= z <= hi for lo, hi in self.slabs)
            if inside:
                v = max(self.min_speed, v * (1.0 - self.drag))
            z = z - v
            zs[i + 1] = z
        # linear interpolation between the integer sub-steps
        return np.interp(times, np.arange(n_sub + 1, dtype=float), zs)

    def tip_speed_at(self, time: float) -> float:
        """Approximate speed at ``time`` (finite difference)."""
        z = self.tip_at(np.array([time, time + 1.0]))
        return float(z[0] - z[1])
