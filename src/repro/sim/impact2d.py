"""2D contact/impact scene: a punch driven through two bars.

The paper's machinery is dimension-generic (axis-parallel *lines* in
2D, planes in 3D); this scene exercises every 2D code path end to end:
quad meshes, edge contact faces, 2D decision trees/descriptors, 2D RCB,
and segment-based local search. Geometry: a square punch descends
(−y) through two horizontal bars, eroding a slot.

Bodies: 0 = punch, 1 = upper bar, 2 = lower bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.mesh.generators import merge_meshes, structured_quad_mesh
from repro.mesh.mesh import Mesh
from repro.sim.motion import ProjectileKinematics
from repro.sim.sequence import ContactSnapshot, MeshSequence
from repro.utils.validation import check_positive


@dataclass
class Impact2DConfig:
    """Geometry and dynamics of the 2D punch scene."""

    bar_nx: int = 48
    bar_ny: int = 4
    bar_length: float = 12.0
    bar_thickness: float = 1.0
    bar_gap: float = 1.0
    punch_n: int = 6
    punch_len_elems: int = 16
    punch_width: float = 1.5
    punch_length: float = 4.0
    standoff: float = 1.0
    v0: float = 0.12
    drag: float = 0.30
    n_steps: int = 100
    channel_factor: float = 0.8
    crater_amplitude: float = 0.10
    crater_decay: float = 1.0
    capture_halfwidth: float = 3.0

    def __post_init__(self) -> None:
        for name in ("bar_nx", "bar_ny", "punch_n", "punch_len_elems",
                     "n_steps"):
            check_positive(name, getattr(self, name))
        for name in ("bar_length", "bar_thickness", "punch_width",
                     "punch_length", "v0", "capture_halfwidth"):
            check_positive(name, getattr(self, name))


class Impact2DSimulator:
    """Stateful 2D scene; mirrors :class:`~repro.sim.projectile.ImpactSimulator`."""

    PUNCH, UPPER_BAR, LOWER_BAR = 0, 1, 2

    def __init__(self, config: Impact2DConfig):
        self.config = c = config
        half = c.bar_length / 2.0
        upper_lo = -c.bar_thickness
        lower_hi = upper_lo - c.bar_gap
        lower_lo = lower_hi - c.bar_thickness

        punch = structured_quad_mesh(
            c.punch_n, c.punch_len_elems,
            origin=(-c.punch_width / 2, c.standoff),
            size=(c.punch_width, c.punch_length),
        )
        upper = structured_quad_mesh(
            c.bar_nx, c.bar_ny,
            origin=(-half, upper_lo),
            size=(c.bar_length, c.bar_thickness),
        )
        lower = structured_quad_mesh(
            c.bar_nx, c.bar_ny,
            origin=(-half, lower_lo),
            size=(c.bar_length, c.bar_thickness),
        )
        self.reference = merge_meshes([punch, upper, lower])
        self.node_body = self.reference.node_body_id()
        self._ref_centroids = self.reference.centroids()
        self.kinematics = ProjectileKinematics(
            tip0=c.standoff,
            v0=c.v0,
            slabs=[(lower_lo, lower_hi), (upper_lo, 0.0)],
            drag=c.drag,
            min_speed=0.04,
        )
        self.channel_halfwidth = c.channel_factor * c.punch_width / 2.0

    def tip_at(self, time: float) -> float:
        """Punch nose y at ``time``."""
        return float(self.kinematics.tip_at(np.array([time]))[0])

    def state_at(self, time: float) -> Tuple[Mesh, np.ndarray, float]:
        """Scene at ``time``: (deformed mesh, alive mask, nose y)."""
        if time < 0:
            raise ValueError("time must be >= 0")
        c = self.config
        tip = self.tip_at(time)
        ref = self.reference
        nodes = ref.nodes.copy()

        punch_nodes = self.node_body == self.PUNCH
        nodes[punch_nodes, 1] += tip - c.standoff

        # crater: bars bulge sideways near the slot, slightly downward
        bar_nodes = ~punch_nodes & (self.node_body >= 0)
        x = ref.nodes[:, 0]
        y = ref.nodes[:, 1]
        dist = np.abs(x)
        reach = y >= tip
        falloff = np.exp(
            -np.maximum(0.0, dist - self.channel_halfwidth)
            / max(c.crater_decay, 1e-12)
        )
        mag = c.crater_amplitude * falloff * reach
        disp = np.zeros_like(nodes)
        disp[:, 0] = np.sign(x) * mag
        disp[:, 1] = -0.35 * mag
        nodes[bar_nodes] += disp[bar_nodes]

        # erosion: bar elements inside the swept slot
        cx = self._ref_centroids[:, 0]
        cy = self._ref_centroids[:, 1]
        erodible = np.isin(
            ref.body_id, [self.UPPER_BAR, self.LOWER_BAR]
        )
        eroded = (
            erodible
            & (cy >= tip)
            & (np.abs(cx) <= self.channel_halfwidth)
        )
        mesh = Mesh(nodes, ref.elements, ref.elem_type, ref.body_id)
        return mesh, ~eroded, tip


def extract_contact_surface_2d(
    mesh: Mesh, capture_halfwidth: float, punch_body: int = 0
) -> tuple:
    """Contact edges: all punch boundary edges + bar boundary edges
    whose midpoint is within ``capture_halfwidth`` of the punch axis."""
    from repro.mesh.surface import boundary_faces

    faces, owner = boundary_faces(mesh)
    if len(faces) == 0:
        return (
            np.empty((0, 2), np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.int64),
        )
    mid = mesh.nodes[faces].mean(axis=1)
    is_punch = mesh.body_id[owner] == punch_body
    near = np.abs(mid[:, 0]) <= capture_halfwidth
    keep = is_punch | near
    faces, owner = faces[keep], owner[keep]
    return faces, owner, np.unique(faces)


def simulate_impact_2d(
    config: Optional[Impact2DConfig] = None,
    n_snapshots: Optional[int] = None,
) -> MeshSequence:
    """Run the 2D punch scene and dump snapshots (cf.
    :func:`repro.sim.sequence.simulate_impact`)."""
    config = config or Impact2DConfig()
    sim = Impact2DSimulator(config)
    n = config.n_steps if n_snapshots is None else n_snapshots
    if n < 1:
        raise ValueError("need at least one snapshot")
    snapshots: List[ContactSnapshot] = []
    for step in range(n):
        t = float(step)
        mesh_full, alive, tip = sim.state_at(t)
        live = mesh_full.with_elements(alive)
        faces, owner, cnodes = extract_contact_surface_2d(
            live, config.capture_halfwidth, Impact2DSimulator.PUNCH
        )
        snapshots.append(
            ContactSnapshot(
                mesh=live,
                contact_faces=faces,
                contact_face_owner=owner,
                contact_nodes=cnodes,
                step=step,
                time=t,
                tip_z=tip,
            )
        )
    return MeshSequence(snapshots=snapshots, config=config)
