"""Element erosion: carving the penetration channel.

EPIC-style Lagrangian penetration codes delete ("erode") fully failed
elements. The synthetic analogue: a plate element dies once the
projectile nose has passed its depth *and* its centroid lies within the
channel radius of the projectile axis. Erosion is monotone — dead
elements stay dead — which the sequence generator enforces by
accumulating masks.
"""

from __future__ import annotations

import numpy as np


def channel_erosion_mask(
    centroids: np.ndarray,
    axis_xy: np.ndarray,
    tip_z: float,
    radius: float,
    body_id: np.ndarray,
    erodible_bodies: np.ndarray,
) -> np.ndarray:
    """Elements killed by the projectile at nose depth ``tip_z``.

    Parameters
    ----------
    centroids:
        ``(m, 3)`` element centroids.
    axis_xy:
        Lateral (x, y) position of the projectile axis.
    tip_z:
        Current nose z; elements with centroid z above it (already
        passed) are candidates.
    radius:
        Channel radius (lateral distance from the axis).
    body_id / erodible_bodies:
        Only elements of erodible bodies (the plates) die; the
        projectile itself is treated as rigid here.

    Returns a boolean mask of *newly* eroded elements. ``axis_xy`` may
    be a single lateral position, shape ``(2,)``, or a per-element
    position, shape ``(m, 2)`` — the latter describes a slanted
    (oblique) channel whose axis shifts with depth.
    """
    centroids = np.asarray(centroids, dtype=float)
    if radius < 0:
        raise ValueError("radius must be >= 0")
    lateral = np.linalg.norm(
        centroids[:, :2] - np.asarray(axis_xy, dtype=float), axis=1
    )
    passed = centroids[:, 2] >= tip_z
    erodible = np.isin(body_id, erodible_bodies)
    return erodible & passed & (lateral <= radius)


def crater_displacement(
    nodes: np.ndarray,
    axis_xy: np.ndarray,
    tip_z: float,
    channel_radius: float,
    amplitude: float,
    decay: float,
) -> np.ndarray:
    """Smooth radial/axial crater displacement field for plate nodes.

    Nodes near the channel wall are pushed radially outward and bulged
    along −z, with exponential decay in lateral distance beyond the
    channel and activation only where the nose has reached the node's
    depth. Returns a ``(n, 3)`` displacement array (callers mask it to
    plate nodes). ``axis_xy`` may be ``(2,)`` or per-node ``(n, 2)``
    (oblique channels).
    """
    nodes = np.asarray(nodes, dtype=float)
    rel = nodes[:, :2] - np.asarray(axis_xy, dtype=float)
    dist = np.linalg.norm(rel, axis=1)
    safe = np.maximum(dist, 1e-12)
    radial_dir = rel / safe[:, None]
    reach = nodes[:, 2] >= tip_z  # nose at or below this depth
    falloff = np.exp(-np.maximum(0.0, dist - channel_radius) / max(decay, 1e-12))
    mag = amplitude * falloff * reach
    disp = np.zeros_like(nodes)
    disp[:, :2] = radial_dir * mag[:, None]
    disp[:, 2] = -0.35 * mag  # slight dishing along the travel direction
    return disp
