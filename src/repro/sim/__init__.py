"""Synthetic contact/impact simulation substrate.

Substitutes for the proprietary EPIC projectile-through-two-plates
dataset (paper §5): a rod projectile penetrates two plates, with
rigid-body projectile motion, crater deformation of plate nodes, and
element erosion carving the penetration channel. Each step yields a
:class:`~repro.sim.sequence.ContactSnapshot` (deformed mesh, live
elements, contact faces/nodes), and a run yields the 100-snapshot
:class:`~repro.sim.sequence.MeshSequence` the evaluation replays.
"""

from repro.sim.motion import ProjectileKinematics
from repro.sim.erosion import channel_erosion_mask
from repro.sim.projectile import ImpactConfig, ImpactSimulator
from repro.sim.impact2d import (
    Impact2DConfig,
    Impact2DSimulator,
    simulate_impact_2d,
)
from repro.sim.sequence import ContactSnapshot, MeshSequence, simulate_impact

__all__ = [
    "ProjectileKinematics",
    "channel_erosion_mask",
    "ImpactConfig",
    "ImpactSimulator",
    "Impact2DConfig",
    "Impact2DSimulator",
    "simulate_impact_2d",
    "ContactSnapshot",
    "MeshSequence",
    "simulate_impact",
]
