"""The projectile/two-plate impact scene (paper §5's workload).

The scene is built from three hex blocks: a rod projectile above two
parallel plates. :class:`ImpactSimulator` advances the scene to any
time: the projectile translates rigidly along −z per its kinematics,
plate nodes deform with the crater field, and plate elements inside the
swept channel erode. Bodies: 0 = projectile, 1 = upper plate,
2 = lower plate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.mesh.generators import merge_meshes, structured_box_mesh
from repro.mesh.mesh import Mesh
from repro.sim.erosion import channel_erosion_mask, crater_displacement
from repro.sim.motion import ProjectileKinematics
from repro.utils.validation import check_positive


@dataclass
class ImpactConfig:
    """Geometry and dynamics of the synthetic penetration run.

    Defaults give a laptop-scale analogue of the EPIC mesh (≈8k nodes)
    with the same qualitative arc: approach, first-plate penetration,
    gap crossing, second-plate penetration. Resolutions scale all
    three bodies together via ``refine``.
    """

    # plate lateral extent and element counts
    plate_nxy: int = 24
    plate_nz: int = 3
    plate_size: float = 12.0
    plate_thickness: float = 1.0
    plate_gap: float = 1.0
    # projectile (square rod)
    proj_n: int = 4
    proj_len_elems: int = 12
    proj_width: float = 1.6
    proj_length: float = 5.0
    standoff: float = 1.0  # initial gap between nose and upper plate
    # dynamics
    v0: float = 0.12
    drag: float = 0.30
    n_steps: int = 100
    # erosion / deformation
    channel_factor: float = 0.75  # channel radius = factor * proj half-width
    crater_amplitude: float = 0.12
    crater_decay: float = 1.2
    # contact identification
    capture_radius: float = 3.0  # plate boundary faces this close to the
    # axis (laterally) are contact candidates
    refine: float = 1.0  # multiplies all element counts
    tet: bool = False  # split hexes into tets (EPIC used tet meshes)
    obliquity: float = 0.0  # lateral x-drift per unit of descent: the
    # projectile travels along a slanted axis, carving a diagonal
    # channel (stresses the reshaping step with non-axis boundaries)

    def __post_init__(self) -> None:
        for name in (
            "plate_nxy", "plate_nz", "proj_n", "proj_len_elems", "n_steps",
        ):
            check_positive(name, getattr(self, name))
        for name in (
            "plate_size", "plate_thickness", "plate_gap", "proj_width",
            "proj_length", "v0", "capture_radius", "refine",
        ):
            check_positive(name, getattr(self, name))

    @classmethod
    def paper_scale(cls, n_steps: int = 100) -> "ImpactConfig":
        """The benchmark scene (§5 analogue at laptop scale).

        ≈18k nodes with ≈16% contact nodes — a ~9× linear reduction of
        the EPIC mesh (156,601 nodes, 13% contact). Plates are chunkier
        than the default test scene so subdomain surface-to-volume
        ratios, and therefore the FEComm-to-contact-node balance that
        drives Table 1, sit in the paper's regime.
        """
        return cls(
            n_steps=n_steps,
            plate_nxy=34,
            plate_nz=6,
            plate_size=14.0,
            plate_thickness=1.5,
            capture_radius=5.5,
            proj_n=6,
            proj_len_elems=16,
        )

    @classmethod
    def epic_scale(cls, n_steps: int = 100) -> "ImpactConfig":
        """A full-size analogue of the EPIC mesh (≈160k nodes).

        Matches the paper's node count (156,601) to within a few
        percent. Partitioning at this scale takes minutes per fit in
        pure Python — use it for one-off headline runs
        (``examples/projectile_impact.py --epic``), not for the
        benchmark suite; ``paper_scale`` is the routine evaluation
        scene.
        """
        return cls(
            n_steps=n_steps,
            plate_nxy=72,
            plate_nz=13,
            plate_size=14.0,
            plate_thickness=1.5,
            capture_radius=5.5,
            proj_n=12,
            proj_len_elems=34,
        )

    def scaled(self) -> "ImpactConfig":
        """Apply ``refine`` to the element counts (returns a copy)."""
        import dataclasses

        r = self.refine
        return dataclasses.replace(
            self,
            plate_nxy=max(2, int(round(self.plate_nxy * r))),
            plate_nz=max(1, int(round(self.plate_nz * r))),
            proj_n=max(2, int(round(self.proj_n * r))),
            proj_len_elems=max(2, int(round(self.proj_len_elems * r))),
            refine=1.0,
        )


class ImpactSimulator:
    """Stateful scene advancing to arbitrary times.

    The reference (undeformed) mesh is built once; ``state_at(t)``
    returns ``(mesh, alive_mask, tip_z)`` with deformed coordinates and
    cumulative erosion up to ``t``.
    """

    PROJECTILE, UPPER_PLATE, LOWER_PLATE = 0, 1, 2

    def __init__(self, config: ImpactConfig):
        self.config = config.scaled()
        c = self.config
        half = c.plate_size / 2.0
        # z layout (projectile travels -z): upper plate top at z=0
        upper_lo = -c.plate_thickness
        lower_hi = upper_lo - c.plate_gap
        lower_lo = lower_hi - c.plate_thickness

        projectile = structured_box_mesh(
            c.proj_n, c.proj_n, c.proj_len_elems,
            origin=(-c.proj_width / 2, -c.proj_width / 2, c.standoff),
            size=(c.proj_width, c.proj_width, c.proj_length),
        )
        upper = structured_box_mesh(
            c.plate_nxy, c.plate_nxy, c.plate_nz,
            origin=(-half, -half, upper_lo),
            size=(c.plate_size, c.plate_size, c.plate_thickness),
        )
        lower = structured_box_mesh(
            c.plate_nxy, c.plate_nxy, c.plate_nz,
            origin=(-half, -half, lower_lo),
            size=(c.plate_size, c.plate_size, c.plate_thickness),
        )
        merged = merge_meshes([projectile, upper, lower])
        if c.tet:
            from repro.mesh.generators import hex_to_tet_mesh

            merged = hex_to_tet_mesh(merged)
        self.reference = merged
        self.node_body = self.reference.node_body_id()
        self._ref_centroids = self.reference.centroids()

        self.kinematics = ProjectileKinematics(
            tip0=c.standoff,
            v0=c.v0,
            slabs=[(lower_lo, lower_hi), (upper_lo, 0.0)],
            drag=c.drag,
            min_speed=0.04,
        )
        self.channel_radius = c.channel_factor * c.proj_width / 2.0 * np.sqrt(2)

    # ------------------------------------------------------------------
    def tip_at(self, time: float) -> float:
        """Projectile nose z at ``time``."""
        return float(self.kinematics.tip_at(np.array([time]))[0])

    def state_at(self, time: float) -> Tuple[Mesh, np.ndarray, float]:
        """Scene at ``time``: deformed mesh (all elements), alive mask,
        and nose position.

        Erosion is computed against the *swept* channel (everything the
        nose has passed), so it is monotone in ``time`` by
        construction.
        """
        if time < 0:
            raise ValueError("time must be >= 0")
        c = self.config
        tip = self.tip_at(time)
        ref = self.reference

        # rigid projectile translation (slanted by obliquity: the axis
        # drifts +x as the nose descends)
        nodes = ref.nodes.copy()
        proj_nodes = self.node_body == self.PROJECTILE
        descent = c.standoff - tip
        nodes[proj_nodes, 2] += tip - c.standoff
        if c.obliquity:
            nodes[proj_nodes, 0] += c.obliquity * descent

        def axis_at(zs: np.ndarray) -> np.ndarray:
            """Channel axis (x, y) at depth z — slanted when oblique."""
            ax = np.zeros((len(zs), 2))
            if c.obliquity:
                ax[:, 0] = c.obliquity * (c.standoff - zs)
            return ax

        # crater deformation of plate nodes (based on reference coords so
        # the field is consistent across times)
        plate_nodes = ~proj_nodes & (self.node_body >= 0)
        disp = crater_displacement(
            ref.nodes,
            axis_xy=axis_at(ref.nodes[:, 2]),
            tip_z=tip,
            channel_radius=self.channel_radius,
            amplitude=c.crater_amplitude,
            decay=c.crater_decay,
        )
        nodes[plate_nodes] += disp[plate_nodes]

        eroded = channel_erosion_mask(
            self._ref_centroids,
            axis_xy=axis_at(self._ref_centroids[:, 2]),
            tip_z=tip,
            radius=self.channel_radius,
            body_id=ref.body_id,
            erodible_bodies=np.array([self.UPPER_PLATE, self.LOWER_PLATE]),
        )
        mesh = Mesh(nodes, ref.elements, ref.elem_type, ref.body_id)
        return mesh, ~eroded, tip
