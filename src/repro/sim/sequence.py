"""Snapshot sequences: the 100-mesh evaluation input (paper §5).

The paper instrumented EPIC to dump the mesh and contact-surface
information every ≈37 time steps, yielding 100 snapshots.
:func:`simulate_impact` does the equivalent for the synthetic scene:
it samples the simulator at ``n_steps`` times and extracts, per
snapshot, the live mesh, the contact faces, and the contact nodes.

Contact identification (the application's job, per the paper): all
boundary faces of the projectile, plus plate boundary faces whose
centroid is laterally within ``capture_radius`` of the projectile axis
— i.e. the impact region, which grows as erosion exposes the channel
walls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.mesh.mesh import Mesh
from repro.mesh.surface import boundary_faces
from repro.sim.projectile import ImpactConfig, ImpactSimulator


@dataclass
class ContactSnapshot:
    """One time-step dump of the running simulation.

    ``mesh`` contains only live elements but keeps the *full* node
    array (node ids are stable across snapshots so partition vectors
    and RCB labels can be carried forward).
    """

    mesh: Mesh
    contact_faces: np.ndarray  # (f, npf) node ids
    contact_face_owner: np.ndarray  # (f,) owning element index in mesh
    contact_nodes: np.ndarray  # sorted unique node ids
    step: int
    time: float
    tip_z: float

    @property
    def num_contact_nodes(self) -> int:
        """Number of contact nodes in this snapshot."""
        return len(self.contact_nodes)

    @property
    def num_contact_faces(self) -> int:
        """Number of contact (surface) faces in this snapshot."""
        return len(self.contact_faces)


@dataclass
class MeshSequence:
    """Ordered list of snapshots from one simulation run."""

    snapshots: List[ContactSnapshot]
    config: ImpactConfig

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, i: int) -> ContactSnapshot:
        return self.snapshots[i]

    def __iter__(self) -> Iterator[ContactSnapshot]:
        return iter(self.snapshots)

    @property
    def num_nodes(self) -> int:
        """Node count (constant across snapshots)."""
        return self.snapshots[0].mesh.num_nodes


def extract_contact_surface(
    mesh: Mesh,
    capture_radius: float,
    projectile_body: int = 0,
    obliquity: float = 0.0,
    standoff: float = 0.0,
) -> tuple:
    """Identify contact faces/nodes of a (live-element) mesh.

    Plate faces are contact candidates when laterally within
    ``capture_radius`` of the (possibly slanted) channel axis; every
    projectile boundary face is one. Returns ``(faces, face_owner,
    contact_nodes)``.
    """
    faces, owner = boundary_faces(mesh)
    if len(faces) == 0:
        empty = np.empty((0, faces.shape[1] if faces.ndim == 2 else 4), np.int64)
        return empty, np.empty(0, np.int64), np.empty(0, np.int64)
    face_centroid = mesh.nodes[faces].mean(axis=1)
    axis = np.zeros((len(face_centroid), 2))
    if obliquity:
        axis[:, 0] = obliquity * (standoff - face_centroid[:, 2])
    lateral = np.linalg.norm(face_centroid[:, :2] - axis, axis=1)
    is_proj = mesh.body_id[owner] == projectile_body
    keep = is_proj | (lateral <= capture_radius)
    faces, owner = faces[keep], owner[keep]
    return faces, owner, np.unique(faces)


def simulate_impact(
    config: Optional[ImpactConfig] = None,
    n_snapshots: Optional[int] = None,
) -> MeshSequence:
    """Run the synthetic penetration and dump ``n_snapshots`` snapshots.

    ``n_snapshots`` defaults to ``config.n_steps`` (100, like the
    paper's sequence).
    """
    config = config or ImpactConfig()
    sim = ImpactSimulator(config)
    n = config.n_steps if n_snapshots is None else n_snapshots
    if n < 1:
        raise ValueError("need at least one snapshot")

    snapshots: List[ContactSnapshot] = []
    for step in range(n):
        t = float(step)
        mesh_full, alive, tip = sim.state_at(t)
        live = mesh_full.with_elements(alive)
        faces, owner, cnodes = extract_contact_surface(
            live,
            sim.config.capture_radius,
            ImpactSimulator.PROJECTILE,
            obliquity=sim.config.obliquity,
            standoff=sim.config.standoff,
        )
        snapshots.append(
            ContactSnapshot(
                mesh=live,
                contact_faces=faces,
                contact_face_owner=owner,
                contact_nodes=cnodes,
                step=step,
                time=t,
                tip_z=tip,
            )
        )
    return MeshSequence(snapshots=snapshots, config=sim.config)
