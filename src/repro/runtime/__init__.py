"""Simulated SPMD runtime.

The paper's evaluation reports communication *counts*, not wall-clock
times, so the runtime is a deterministic single-process simulator: a
rank-addressed communicator with mpi4py-style verbs whose every message
is recorded in a :class:`~repro.runtime.ledger.CommLedger`. The
contact-search exchange (each rank ships surface elements to the ranks
its filter selects, then searches locally) runs on top of it, giving an
executable parallel code path whose ledger totals *are* the NRemote /
M2MComm numbers.
"""

from repro.runtime.ledger import CommLedger, PhaseTotals
from repro.runtime.comm import RankContext, SimComm
from repro.runtime.executor import spmd_run

__all__ = [
    "CommLedger",
    "PhaseTotals",
    "RankContext",
    "SimComm",
    "spmd_run",
]
