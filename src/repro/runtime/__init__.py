"""SPMD runtime: communication accounting + pluggable execution.

The paper's evaluation reports communication *counts*, so the runtime
began as a deterministic single-process simulator: a rank-addressed
communicator with mpi4py-style verbs whose every message is recorded
in a :class:`~repro.runtime.ledger.CommLedger`.  The ledger and verbs
remain, but supersteps now execute on a pluggable backend
(:mod:`repro.runtime.backends`): sequentially in-process (the
reference), on a thread pool, or on a persistent process pool with
shared-memory array transfer — same results bit-for-bit, same ledger
totals, real concurrency when the hardware has it.
"""

from repro.runtime.backends import (
    Backend,
    BackendError,
    ProcessBackend,
    SerialBackend,
    SpmdContext,
    SpmdSession,
    ThreadBackend,
    make_backend,
    resolve_backend,
    set_default_backend,
)
from repro.runtime.comm import RankContext, SimComm
from repro.runtime.executor import spmd_run
from repro.runtime.ledger import CommLedger, PhaseTotals

__all__ = [
    "Backend",
    "BackendError",
    "CommLedger",
    "PhaseTotals",
    "ProcessBackend",
    "RankContext",
    "SerialBackend",
    "SimComm",
    "SpmdContext",
    "SpmdSession",
    "ThreadBackend",
    "make_backend",
    "resolve_backend",
    "set_default_backend",
    "spmd_run",
]
