"""Simulated communicator with mpi4py-style verbs.

Execution is bulk-synchronous: within a superstep every rank runs to
completion, queuing sends; the barrier then delivers all queued
messages into per-rank inboxes for the next superstep. This models
exactly the communication structure of the paper's computation (halo
exchange → contact element exchange → local search) while staying
deterministic and single-process.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.ledger import CommLedger


class SimComm:
    """A k-rank simulated communicator."""

    def __init__(self, size: int, ledger: Optional[CommLedger] = None):
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.ledger = ledger if ledger is not None else CommLedger()
        self._pending: List[Tuple[int, int, Any]] = []
        self._inbox: Dict[int, List[Tuple[int, Any]]] = defaultdict(list)

    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, payload: Any, phase: str, items: int
    ) -> None:
        """Queue a message for delivery at the next barrier.

        ``items`` is the logical item count recorded in the ledger
        (e.g. number of surface elements in the payload).
        """
        self._check_rank(src)
        self._check_rank(dst)
        self.ledger.record(phase, src, dst, items)
        self._pending.append((src, dst, payload))

    def alltoallv(
        self,
        payloads: Dict[int, Dict[int, Any]],
        phase: str,
        count_of: Any = len,
    ) -> None:
        """Queue a full personalised exchange: ``payloads[src][dst]``."""
        for src, per_dst in payloads.items():
            for dst, payload in per_dst.items():
                self.send(src, dst, payload, phase, count_of(payload))

    def barrier(self) -> None:
        """Deliver all queued messages into the inboxes."""
        for src, dst, payload in self._pending:
            if src != dst:
                self._inbox[dst].append((src, payload))
        self._pending.clear()

    def inbox(self, rank: int) -> List[Tuple[int, Any]]:
        """Messages delivered to ``rank`` (consumed on read)."""
        self._check_rank(rank)
        msgs = self._inbox[rank]
        self._inbox[rank] = []
        return msgs

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")


@dataclass
class RankContext:
    """Per-rank view handed to SPMD functions."""

    rank: int
    comm: SimComm

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.comm.size

    def send(self, dst: int, payload: Any, phase: str, items: int) -> None:
        """Queue a message from this rank (delivered at the barrier)."""
        self.comm.send(self.rank, dst, payload, phase, items)

    def inbox(self) -> List[Tuple[int, Any]]:
        """Messages delivered to this rank (consumed on read)."""
        return self.comm.inbox(self.rank)
