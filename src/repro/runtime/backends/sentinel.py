"""Dynamic race sentinel: empirically validate SPMD001 findings.

The static pass (:mod:`repro.analysis.spmd`) *proves* supersteps keep
their hands off shared state; this backend *checks* it at runtime.
:class:`SentinelBackend` wraps the thread backend and, around every
superstep, fingerprints each piece of state that is shared across
ranks — the ``shared`` mapping, the broadcast step argument, the
superstep's closure cells, and the mutable module globals its code
references.  When a step returns and any fingerprint changed, the
session raises :class:`SharedStateMutationError` naming the offending
attribute path, instead of letting the race silently corrupt a later
step.

The sentinel is opt-in (``REPRO_BACKEND=sentinel`` or
``make_backend("sentinel")``) and meant for tests/CI: fingerprinting
hashes array bytes, so it is far too slow for production runs.  With
``enabled=False`` the backend degrades to a plain
:class:`~repro.runtime.backends.thread.ThreadBackend` session with
zero per-step overhead.
"""

from __future__ import annotations

import functools
import hashlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs.tracer import TracerBase
from repro.runtime.backends.base import (
    BackendError,
    BackendSpec,
    Message,
    RankOutcome,
    SpmdSession,
    StepFn,
)
from repro.runtime.backends.thread import ThreadBackend, ThreadSession
from repro.runtime.ledger import CommLedger

#: recursion limit when fingerprinting nested containers/objects
_MAX_DEPTH = 6

#: module-global types worth watching (immutable globals cannot race)
_MUTABLE_GLOBAL_TYPES = (list, dict, set, bytearray, np.ndarray)


class SharedStateMutationError(BackendError):
    """A superstep mutated state shared across ranks.

    ``path`` is the attribute path of the first changed fingerprint
    (e.g. ``shared['totals'][2]`` or ``closure.acc``); ``step`` is the
    superstep function's name.
    """

    def __init__(self, step: str, path: str) -> None:
        self.step = step
        self.path = path
        super().__init__(
            f"superstep {step!r} mutated shared state at {path} — "
            f"this is a data race under the thread backend; confine "
            f"per-rank mutation to ctx.state (see SPMD001 in "
            f"docs/STATIC_ANALYSIS.md)"
        )


def _fingerprint(obj: Any, out: Dict[str, str], path: str, depth: int) -> None:
    """Record content digests for ``obj`` into ``out`` keyed by path.

    Unknown object types without ``__dict__`` (locks, generators, RNG
    engines) are skipped — the sentinel never guesses, mirroring the
    conservatism of the static pass.
    """
    if depth > _MAX_DEPTH:
        return
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        out[path] = repr(obj)
        return
    if isinstance(obj, np.ndarray):
        h = hashlib.sha1()
        h.update(np.ascontiguousarray(obj).tobytes())
        out[path] = f"ndarray{obj.shape}:{obj.dtype}:{h.hexdigest()}"
        return
    if isinstance(obj, np.generic):
        out[path] = repr(obj)
        return
    if isinstance(obj, bytearray):
        out[path] = hashlib.sha1(bytes(obj)).hexdigest()
        return
    if isinstance(obj, Mapping):
        keys = sorted(obj.keys(), key=repr)
        out[path] = f"mapping:{len(keys)}"
        for k in keys:
            _fingerprint(obj[k], out, f"{path}[{k!r}]", depth + 1)
        return
    if isinstance(obj, (list, tuple)):
        out[path] = f"{type(obj).__name__}:{len(obj)}"
        for i, item in enumerate(obj):
            _fingerprint(item, out, f"{path}[{i}]", depth + 1)
        return
    if isinstance(obj, (set, frozenset)):
        out[path] = f"set:{sorted(repr(e) for e in obj)}"
        return
    if callable(obj):  # functions/partials are roots, not data
        return
    attrs = getattr(obj, "__dict__", None)
    if isinstance(attrs, dict):
        out[path] = f"object:{type(obj).__name__}:{len(attrs)}"
        for name in sorted(attrs):
            _fingerprint(attrs[name], out, f"{path}.{name}", depth + 1)
    # everything else (locks, file handles, RNG engines): skipped


def _function_roots(fn: Callable[..., Any]) -> List[Tuple[str, Any]]:
    """Shared-state roots reachable from a callable: bound ``partial``
    arguments, closure cells, and mutable module globals referenced by
    its code object."""
    roots: List[Tuple[str, Any]] = []
    seen_fns = 0
    while seen_fns < _MAX_DEPTH:
        wrapped = getattr(fn, "__wrapped__", None)
        if wrapped is not None and not isinstance(fn, functools.partial):
            # transparent wrappers (e.g. the chaos harness's ChaosStep)
            # advertise the real superstep via __wrapped__
            fn = wrapped
            seen_fns += 1
            continue
        if not isinstance(fn, functools.partial):
            break
        for i, a in enumerate(fn.args):
            if callable(a) and not isinstance(a, type):
                roots.extend(
                    (f"partial.args[{i}].{p}", v)
                    for p, v in _function_roots(a)
                )
            else:
                roots.append((f"partial.args[{i}]", a))
        for k, v in fn.keywords.items():
            roots.append((f"partial.keywords[{k!r}]", v))
        fn = fn.func
        seen_fns += 1
    code = getattr(fn, "__code__", None)
    if code is None:
        return roots
    closure = getattr(fn, "__closure__", None) or ()
    for name, cell in zip(code.co_freevars, closure):
        try:
            roots.append((f"closure.{name}", cell.cell_contents))
        except ValueError:  # pragma: no cover - empty cell
            continue
    fn_globals = getattr(fn, "__globals__", {})
    for name in code.co_names:
        value = fn_globals.get(name)
        if isinstance(value, _MUTABLE_GLOBAL_TYPES):
            roots.append((f"global.{name}", value))
    return roots


def _step_name(fn: Callable[..., Any]) -> str:
    depth = 0
    while depth < _MAX_DEPTH:
        wrapped = getattr(fn, "__wrapped__", None)
        if wrapped is not None and not isinstance(fn, functools.partial):
            fn = wrapped
            depth += 1
            continue
        if not isinstance(fn, functools.partial):
            break
        inner = next(
            (a for a in fn.args if callable(a) and not isinstance(a, type)),
            None,
        )
        fn = inner if inner is not None else fn.func
        depth += 1
    return getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))


class SentinelSession(ThreadSession):
    """Thread session that fingerprints shared state around each step."""

    def _snapshot(self, fn: StepFn, arg: Any) -> Dict[str, str]:
        prints: Dict[str, str] = {}
        for key in sorted(self._shared.keys(), key=repr):
            _fingerprint(self._shared[key], prints, f"shared[{key!r}]", 0)
        if arg is not None:
            _fingerprint(arg, prints, "arg", 0)
        for path, value in _function_roots(fn):
            _fingerprint(value, prints, path, 0)
        return prints

    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        before = self._snapshot(fn, arg)
        outcomes = super()._run_step(fn, arg, inboxes)
        after = self._snapshot(fn, arg)
        if after != before:
            for path in sorted(set(before) | set(after)):
                if before.get(path) != after.get(path):
                    raise SharedStateMutationError(_step_name(fn), path)
        return outcomes


class SentinelBackend(ThreadBackend):
    """Thread backend whose sessions check the shared-state contract.

    ``enabled=False`` hands out plain :class:`ThreadSession` objects —
    useful to toggle the (expensive) checking from one code path.
    """

    name = "sentinel"

    def __init__(
        self, workers: Optional[int] = None, enabled: bool = True
    ) -> None:
        super().__init__(workers=workers)
        self.enabled = enabled

    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        cls = SentinelSession if self.enabled else ThreadSession
        return cls(size, ledger, tracer, shared, self._ensure_pool())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SentinelBackend(workers={self.workers}, "
            f"enabled={self.enabled})"
        )


def sentinel_from_spec(spec: "BackendSpec") -> SentinelBackend:
    """Registry factory for ``sentinel``."""
    return SentinelBackend(workers=spec.workers)
