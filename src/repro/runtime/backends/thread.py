"""Thread-pool backend: concurrent ranks, one process.

Ranks of a superstep run concurrently on a persistent
:class:`~concurrent.futures.ThreadPoolExecutor`.  Python's GIL keeps
pure-Python work serialised, so this backend exists to exercise the
synchronisation protocol (are supersteps really side-effect-free per
rank? does the rank-ordered merge hold under arbitrary interleaving?)
cheaply, and to overlap NumPy/SciPy kernels that release the GIL.

Superstep functions must confine mutation to ``ctx.state`` and treat
``ctx.shared`` as read-only — the same contract the process backend
enforces physically by address-space separation.
"""

from __future__ import annotations

import copy
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.tracer import TracerBase
from repro.runtime.backends.base import (
    Backend,
    BackendSpec,
    Message,
    RankOutcome,
    SpmdSession,
    StepFn,
    default_workers,
    run_rank_step,
)
from repro.runtime.ledger import CommLedger


class ThreadSession(SpmdSession):
    """Session whose ranks run on the backend's thread pool."""

    def __init__(
        self,
        size: int,
        ledger: Optional[CommLedger],
        tracer: Optional[TracerBase],
        shared: Optional[Mapping[str, Any]],
        pool: ThreadPoolExecutor,
    ) -> None:
        super().__init__(size, ledger, tracer)
        self._shared: Mapping[str, Any] = dict(shared) if shared else {}
        self._states: List[Dict[str, Any]] = [{} for _ in range(size)]
        self._trace = bool(getattr(self.tracer, "enabled", False))
        self._pool = pool

    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        futures = [
            self._pool.submit(
                run_rank_step, fn, arg, rank, self.size, self._shared,
                self._states[rank], inboxes[rank], self._trace,
            )
            for rank in range(self.size)
        ]
        # collect in rank order, but wait for *every* future before
        # propagating the first failure — a retrying caller (the chaos
        # harness) must never roll back state while a rank still runs
        outcomes: List[Optional[RankOutcome]] = []
        first_exc: Optional[BaseException] = None
        for future in futures:
            try:
                outcomes.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_exc is None:
                    first_exc = exc
                outcomes.append(None)
        if first_exc is not None:
            raise first_exc
        return [out for out in outcomes if out is not None]

    def _state_snapshot(self) -> Any:
        return copy.deepcopy(self._states)

    def _state_restore(self, snapshot: Any) -> None:
        self._states = snapshot

    def _close(self) -> None:
        self._states = []


class ThreadBackend(Backend):
    """Run ranks concurrently on a persistent thread pool."""

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-spmd",
            )
        return self._pool

    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        return ThreadSession(
            size, ledger, tracer, shared, self._ensure_pool()
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(workers={self.workers})"


def thread_from_spec(spec: BackendSpec) -> ThreadBackend:
    """Registry factory for ``thread``."""
    return ThreadBackend(workers=spec.workers)
