"""Sequential in-process backend — the reference semantics.

Ranks execute one after the other in rank order inside the calling
process, exactly like the original simulated runtime.  Every other
backend is validated against this one: the rank-ordered merge in
:class:`~repro.runtime.backends.base.SpmdSession` makes their results
bit-identical to serial execution.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.tracer import TracerBase
from repro.runtime.backends.base import (
    Backend,
    BackendSpec,
    Message,
    RankOutcome,
    SpmdSession,
    StepFn,
    run_rank_step,
)
from repro.runtime.ledger import CommLedger


class SerialSession(SpmdSession):
    """Session whose ranks run sequentially in the calling process."""

    def __init__(
        self,
        size: int,
        ledger: Optional[CommLedger],
        tracer: Optional[TracerBase],
        shared: Optional[Mapping[str, Any]],
    ) -> None:
        super().__init__(size, ledger, tracer)
        self._shared: Mapping[str, Any] = dict(shared) if shared else {}
        self._states: List[Dict[str, Any]] = [{} for _ in range(size)]
        self._trace = bool(getattr(self.tracer, "enabled", False))

    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        return [
            run_rank_step(
                fn, arg, rank, self.size, self._shared,
                self._states[rank], inboxes[rank], self._trace,
            )
            for rank in range(self.size)
        ]

    def _state_snapshot(self) -> Any:
        return copy.deepcopy(self._states)

    def _state_restore(self, snapshot: Any) -> None:
        self._states = snapshot

    def _close(self) -> None:
        self._states = []


class SerialBackend(Backend):
    """Run every rank sequentially in the calling process."""

    name = "serial"

    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        return SerialSession(size, ledger, tracer, shared)


def serial_from_spec(spec: BackendSpec) -> SerialBackend:
    """Registry factory for ``serial`` (ranks have no pool, so the
    spec's worker count is irrelevant and ignored)."""
    return SerialBackend()
