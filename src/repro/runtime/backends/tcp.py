"""Distributed TCP backend: SPMD ranks on remote worker agents.

The backend is a *coordinator*: it listens on a TCP socket, worker
*agents* (the ``repro-agent`` console script, or ``python -m
repro.runtime.backends.tcp``) dial in, and every superstep is shipped
to the connected agents as a ``repro.wire/1`` message
(:mod:`repro.runtime.backends.wire` — framed pickle with NumPy arrays
as raw zero-copy frames).  Agents never talk to each other: results,
queued sends, and ledger records come back to the coordinator, which
merges them **in rank order**
(:meth:`repro.runtime.backends.base.SpmdSession._merge`) — so a run on
two agents across two hosts is bit-identical to
:class:`~repro.runtime.backends.serial.SerialBackend`, the same
guarantee every in-process backend gives.

Membership is *elastic*:

* ranks are multiplexed over however many agents are connected
  (``rank % len(agents)``), so a session of 8 ranks runs fine on 2
  agents;
* agents that join mid-run are adopted at the next superstep boundary
  — the coordinator replays the session's successful step history into
  them so their per-rank state is indistinguishable from having been
  there all along;
* agents that die (or blow the per-step deadline of the shared
  :class:`~repro.runtime.backends.process.SupervisorConfig` policy)
  are detected by the dead/hung classification of the dispatch loop,
  replaced (locally spawned agents are respawned at the same roster
  slot), and the session is rebuilt by deterministic history replay —
  the recovery machinery of the process backend, over sockets.

Spawn modes: a loopback spec (``tcp://127.0.0.1:0:2``) spawns its own
local agent processes by default (self-contained, used by tests/CI);
``?spawn=external`` makes the coordinator wait for externally started
``repro-agent`` processes instead.

Observability: every byte moved is counted — ``bytes_sent`` /
``bytes_recv`` accumulate on the backend and flow into tracer spans,
with ``reconnects`` and ``ranks_migrated`` counted during recovery and
adoption, surfacing as the "Distributed" block of a run report.
"""

from __future__ import annotations

import argparse
import atexit
import copy
import itertools
import os
import pickle
import socket
import subprocess
import sys
import threading
import time
import traceback
import warnings
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.obs.tracer import Span, TracerBase
from repro.runtime.backends.base import (
    Backend,
    BackendError,
    BackendSpec,
    Message,
    RankOutcome,
    SpmdSession,
    StepFn,
    default_workers,
    run_rank_step,
)
from repro.runtime.backends.process import SupervisorConfig, _disarm_step
from repro.runtime.backends.wire import (
    WIRE_SCHEMA,
    WireError,
    WireVersionError,
    read_stream,
    write_stream,
)
from repro.runtime.ledger import CommLedger

#: how long the coordinator waits for an accepted connection to finish
#: its hello/welcome handshake
HANDSHAKE_TIMEOUT_S = 10.0

#: default budget for agents to connect before a session proceeds
ACCEPT_TIMEOUT_S = 10.0

#: how locally spawned agents boot (``python -c``; sys.argv[1:] holds
#: the agent flags)
_AGENT_BOOTSTRAP = (
    "import sys; from repro.runtime.backends.tcp import agent_main; "
    "sys.exit(agent_main(sys.argv[1:]))"
)

#: name prefix shared with the process backend's pool — the chaos
#: harness identifies "am I a worker?" by this prefix, so ``kill``
#: faults fire inside agents exactly like inside pooled workers
AGENT_NAME_PREFIX = "repro-spmd-agent"


class _AgentTimeout(Exception):
    """Internal: an agent did not reply within the deadline."""


class _StepUndecodable(Exception):
    """Internal: agents could not decode the superstep message (the
    function's module is not importable on the agent side)."""


class _AgentLoss(Exception):
    """Internal: one dispatch lost agents (died or blew the deadline)."""

    def __init__(
        self, dead: List["_AgentHandle"], hung: List["_AgentHandle"]
    ) -> None:
        self.dead = dead
        self.hung = hung
        names = [a.name for a in dead + hung]
        super().__init__(f"lost agent(s): {', '.join(names)}")


# ----------------------------------------------------------------------
# socket channel
# ----------------------------------------------------------------------


class _Channel:
    """One connected socket speaking ``repro.wire/1`` messages."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()

    def send(self, obj: Any) -> int:
        """Write one wire message; returns bytes written."""
        with self._lock:
            return write_stream(self._sock.sendall, obj)

    def recv(self, timeout: Optional[float] = None) -> Tuple[Any, int]:
        """Read one wire message; returns ``(object, bytes_read)``.

        Raises :class:`_AgentTimeout` when ``timeout`` expires, and
        ``EOFError``/``OSError``/``WireError`` on a broken peer.
        """
        self._sock.settimeout(timeout)
        try:
            return read_stream(self._read_exact)
        except socket.timeout:
            raise _AgentTimeout() from None

    def _read_exact(self, n: int) -> bytes:
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            read = self._sock.recv_into(view[got:], n - got)
            if read == 0:
                raise EOFError("peer closed the connection")
            got += read
        return bytes(buf)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ----------------------------------------------------------------------
# coordinator-side agent handle
# ----------------------------------------------------------------------


class _AgentHandle:
    """Coordinator-side handle to one connected worker agent."""

    def __init__(
        self, backend: "TCPBackend", chan: _Channel, name: str
    ) -> None:
        self.backend = backend
        self.chan = chan
        self.name = name

    def send(self, msg: Any) -> int:
        try:
            n = self.chan.send(msg)
        except OSError as exc:
            raise BackendError(f"agent {self.name} is gone") from exc
        self.backend.bytes_sent += n
        return n

    def recv(self, timeout: Optional[float] = None) -> Tuple[str, Any]:
        """One ``(tag, payload)`` reply (raises :class:`_AgentTimeout`
        on deadline, :class:`BackendError` on a dead agent)."""
        try:
            reply, n = self.chan.recv(timeout)
        except _AgentTimeout:
            raise
        except (EOFError, OSError, WireError) as exc:
            raise BackendError(f"agent {self.name} died") from exc
        self.backend.bytes_recv += n
        if (
            not isinstance(reply, tuple)
            or len(reply) != 2
            or not isinstance(reply[0], str)
        ):
            raise BackendError(f"malformed agent reply: {reply!r}")
        return reply[0], reply[1]

    def ping(self, timeout: float) -> bool:
        """Request/reply heartbeat (only valid between supersteps)."""
        try:
            self.send(("ping",))
            tag, payload = self.recv(timeout)
        except (BackendError, _AgentTimeout):
            return False
        return tag == "ok" and payload == "pong"

    def stop(self) -> None:
        """Graceful shutdown: tell the agent to exit, close the
        channel."""
        try:
            self.chan.send(("shutdown",))
        except OSError:
            pass
        self.chan.close()

    def destroy(self) -> None:
        """Forcible teardown of a dead or hung agent's connection."""
        self.chan.close()


# ----------------------------------------------------------------------
# backend (coordinator)
# ----------------------------------------------------------------------


class TCPBackend(Backend):
    """Coordinator of a distributed agent fleet (see module doc)."""

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        spawn: Optional[str] = None,
        supervisor: Optional[SupervisorConfig] = None,
        accept_timeout: float = ACCEPT_TIMEOUT_S,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if spawn is None:
            spawn = (
                "local"
                if host in ("", "127.0.0.1", "localhost", "::1")
                else "external"
            )
        if spawn not in ("local", "external"):
            raise ValueError(
                f"spawn must be 'local' or 'external', got {spawn!r}"
            )
        self.host = host
        self.port = port
        self.workers = workers
        self.spawn = spawn
        self.supervisor = (
            supervisor if supervisor is not None
            else SupervisorConfig.from_env()
        )
        self.accept_timeout = accept_timeout
        #: distributed traffic/recovery counters (coordinator-wide)
        self.bytes_sent = 0
        self.bytes_recv = 0
        self.reconnects = 0
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._roster: List[_AgentHandle] = []
        self._pending: List[_AgentHandle] = []
        self._spawned: List["subprocess.Popen[bytes]"] = []
        self._agent_ids = itertools.count()
        self._sids = itertools.count()
        self._closing = False
        self._atexit_registered = False

    # -- server --------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The coordinator's bound ``(host, port)`` (binds lazily)."""
        server = self._ensure_server()
        addr = server.getsockname()
        return str(addr[0]), int(addr[1])

    def _ensure_server(self) -> socket.socket:
        if self._server is None:
            self._server = socket.create_server(
                (self.host, self.port), backlog=16, reuse_port=False
            )
            self._closing = False
            self._accept_thread = threading.Thread(
                target=self._accept_loop,
                name="repro-tcp-accept",
                daemon=True,
            )
            self._accept_thread.start()
            if not self._atexit_registered:
                atexit.register(self.close)
                self._atexit_registered = True
        return self._server

    def _accept_loop(self) -> None:
        server = self._server
        while server is not None and not self._closing:
            try:
                conn, _addr = server.accept()
            except OSError:
                break  # server socket closed
            try:
                self._handshake(conn)
            except Exception:  # pragma: no cover - defensive
                try:
                    conn.close()
                except OSError:
                    pass

    def _handshake(self, conn: socket.socket) -> None:
        """Hello/welcome handshake with a freshly accepted peer.

        The wire layer verifies the protocol version before a payload
        byte is trusted; a mismatched or malformed peer gets a
        best-effort ``reject`` and the connection is dropped.
        """
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        chan = _Channel(conn)
        try:
            hello, n = chan.recv(HANDSHAKE_TIMEOUT_S)
        except WireVersionError as exc:
            self._reject(chan, str(exc))
            return
        except (_AgentTimeout, EOFError, OSError, WireError):
            chan.close()
            return
        self.bytes_recv += n
        if (
            not isinstance(hello, tuple)
            or len(hello) != 2
            or hello[0] != "hello"
            or not isinstance(hello[1], dict)
        ):
            self._reject(chan, f"malformed hello: {hello!r}")
            return
        info: Dict[str, Any] = hello[1]
        if info.get("schema") != WIRE_SCHEMA:
            self._reject(
                chan,
                f"wire schema mismatch: agent speaks "
                f"{info.get('schema')!r}, coordinator speaks "
                f"{WIRE_SCHEMA!r}",
            )
            return
        name = str(info.get("name") or "")
        if not name:
            name = f"{AGENT_NAME_PREFIX}-{next(self._agent_ids)}"
        welcome = (
            "welcome",
            {"schema": WIRE_SCHEMA, "sys_path": list(sys.path)},
        )
        try:
            self.bytes_sent += chan.send(welcome)
        except OSError:
            chan.close()
            return
        with self._lock:
            self._pending.append(_AgentHandle(self, chan, name))

    def _reject(self, chan: _Channel, reason: str) -> None:
        try:
            self.bytes_sent += chan.send(("reject", reason))
        except OSError:
            pass
        chan.close()

    # -- local agent processes -----------------------------------------
    def _spawn_agent(self) -> None:
        host, port = self.address
        connect_host = host if host not in ("", "0.0.0.0", "::") else (
            "127.0.0.1"
        )
        name = f"{AGENT_NAME_PREFIX}-{next(self._agent_ids)}"
        env = dict(os.environ)
        # the agent must import `repro` before it can reach the
        # coordinator's sys.path — make this package's tree visible
        pkg_root = os.path.dirname(
            os.path.dirname(
                os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))
                )
            )
        )
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _AGENT_BOOTSTRAP,
                "--connect",
                f"{connect_host}:{port}",
                "--name",
                name,
            ],
            env=env,
        )
        self._spawned.append(proc)

    def _reap_spawned(self) -> None:
        self._spawned = [
            proc for proc in self._spawned if proc.poll() is None
        ]

    # -- membership ----------------------------------------------------
    def _member_count(self) -> int:
        with self._lock:
            return len(self._roster) + len(self._pending)

    def _wait_for_members(self, minimum: int, want: int) -> None:
        """Block until ``want`` members are connected (or settle for
        ``minimum`` when the accept window closes)."""
        deadline = time.monotonic() + self.accept_timeout
        while time.monotonic() < deadline:
            if self._member_count() >= want:
                return
            time.sleep(0.01)
        if self._member_count() < minimum:
            raise BackendError(
                f"tcp backend: no worker agents connected to "
                f"{self.address[0]}:{self.address[1]} within "
                f"{self.accept_timeout:.1f}s — start them with "
                f"`repro-agent --connect HOST:PORT`"
            )

    def _ensure_members(self) -> None:
        """Bring the fleet up: spawn local agents (if configured) and
        wait for the membership target."""
        self._ensure_server()
        if self.spawn == "local":
            self._reap_spawned()
            with self._lock:
                have = (
                    len(self._roster)
                    + len(self._pending)
                    + len(self._spawned)
                )
            for _ in range(self.workers - have):
                self._spawn_agent()
        self._wait_for_members(minimum=1, want=self.workers)
        self._adopt_pending()

    def _adopt_pending(self) -> List[_AgentHandle]:
        """Move newly connected agents into the roster (filling
        vacated slots first, then appending)."""
        with self._lock:
            fresh = self._pending
            self._pending = []
            adopted = list(fresh)
            for agent in fresh:
                for slot, existing in enumerate(self._roster):
                    if existing is None:  # pragma: no cover - safety
                        self._roster[slot] = agent
                        break
                else:
                    self._roster.append(agent)
            return adopted

    def _roster_snapshot(self) -> List[_AgentHandle]:
        with self._lock:
            return list(self._roster)

    def _replace_lost(self, lost: Set[_AgentHandle]) -> int:
        """Drop lost agents from the roster, respawn local
        replacements, and adopt whatever reconnects into the vacated
        slots (respawn-at-slot).  Returns the number of adopted
        replacements; the roster shrinks for slots nobody refills."""
        with self._lock:
            slots = [
                i for i, a in enumerate(self._roster) if a in lost
            ]
        for agent in lost:
            agent.destroy()
        if not slots:
            return 0
        if self.spawn == "local":
            self._reap_spawned()
            for _ in slots:
                self._spawn_agent()
        deadline = time.monotonic() + self.accept_timeout
        while time.monotonic() < deadline:
            with self._lock:
                if len(self._pending) >= len(slots):
                    break
            time.sleep(0.01)
        with self._lock:
            fresh = self._pending
            self._pending = []
            for slot, agent in zip(slots, fresh):
                self._roster[slot] = agent
            for agent in fresh[len(slots):]:
                self._roster.append(agent)
            for slot in reversed(slots[len(fresh):]):
                del self._roster[slot]
            self.reconnects += len(fresh)
            return len(fresh)

    # -- public API ----------------------------------------------------
    def health_check(
        self, timeout: Optional[float] = None
    ) -> Dict[str, bool]:
        """Heartbeat every connected agent (request/reply ping; only
        valid between supersteps).  Returns ``{agent name: alive}``."""
        if timeout is None:
            timeout = self.supervisor.heartbeat_timeout_s
        return {
            agent.name: agent.ping(timeout)
            for agent in self._roster_snapshot()
        }

    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        return TCPSession(
            size, ledger, tracer, shared, self, next(self._sids)
        )

    def close(self) -> None:
        self._closing = True
        with self._lock:
            members = self._roster + self._pending
            self._roster = []
            self._pending = []
        for agent in members:
            agent.stop()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover
                pass
            self._server = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
            self._accept_thread = None
        grace = self.supervisor.shutdown_grace_s
        for proc in self._spawned:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=grace)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=self.supervisor.kill_grace_s)
        self._spawned = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TCPBackend({self.host}:{self.port}, "
            f"workers={self.workers}, spawn={self.spawn!r})"
        )


# ----------------------------------------------------------------------
# session
# ----------------------------------------------------------------------


class TCPSession(SpmdSession):
    """Session whose ranks execute on the coordinator's agent fleet.

    Mirrors :class:`~repro.runtime.backends.process.ProcessSession`:
    lazily goes *remote* at the first superstep (unpicklable steps fall
    back to in-process serial with a warning), dispatches under the
    supervision policy, classifies losses into dead/hung, recovers by
    respawn + deterministic history replay, and degrades to local
    execution when the retry budget runs out.  On top of that it adopts
    newly joined agents at superstep boundaries (elastic membership).
    """

    def __init__(
        self,
        size: int,
        ledger: Optional[CommLedger],
        tracer: Optional[TracerBase],
        shared: Optional[Mapping[str, Any]],
        backend: TCPBackend,
        sid: int,
    ) -> None:
        super().__init__(size, ledger, tracer)
        self._backend = backend
        self._sid = sid
        self._shared_input: Mapping[str, Any] = (
            dict(shared) if shared else {}
        )
        self._trace = bool(getattr(self.tracer, "enabled", False))
        self._mode = "pending"  # -> "remote" | "local" | "failed"
        self._owners: List[Tuple[_AgentHandle, List[int]]] = []
        self._rank_owner: Dict[int, str] = {}
        self._local_states: List[Dict[str, Any]] = []
        # (disarmed fn, arg, per-rank inbox copies) of every successful
        # step — replayed into fresh agents to rebuild rank state
        self._history: List[
            Tuple[StepFn, Any, List[List[Message]]]
        ] = []

    # -- local fallback ------------------------------------------------
    def _run_local(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        return [
            run_rank_step(
                fn, arg, rank, self.size, self._shared_input,
                self._local_states[rank], inboxes[rank], self._trace,
            )
            for rank in range(self.size)
        ]

    def _fall_back_local(self, fn: StepFn, reason: BaseException) -> None:
        warnings.warn(
            f"tcp backend: superstep {getattr(fn, '__qualname__', fn)!r} "
            f"is not picklable ({reason}); the session falls back to "
            "in-process serial execution. Use module-level superstep "
            "functions to run on the agent fleet.",
            RuntimeWarning,
            stacklevel=4,
        )
        self._mode = "local"
        self._local_states = [{} for _ in range(self.size)]

    # -- remote path ---------------------------------------------------
    def _map_owners(self) -> None:
        agents = self._backend._roster_snapshot()
        if not agents:
            raise BackendError("tcp backend: no connected agents")
        used = min(len(agents), self.size)
        self._owners = [
            (
                agents[w],
                [r for r in range(self.size) if r % used == w],
            )
            for w in range(used)
        ]
        self._rank_owner = {
            rank: agent.name
            for agent, ranks in self._owners
            for rank in ranks
        }

    def _send_open(self) -> None:
        open_msg = (
            "open", self._sid, self.size, dict(self._shared_input),
            self._trace,
        )
        for agent, _ranks in self._owners:
            agent.send(open_msg)
        self._collect_acks("open")

    def _send_replay(self) -> None:
        for agent, ranks in self._owners:
            entries = [
                (
                    hist_fn,
                    hist_arg,
                    [(r, list(hist_inboxes[r])) for r in ranks],
                )
                for hist_fn, hist_arg, hist_inboxes in self._history
            ]
            agent.send(("replay", self._sid, entries))
        self._collect_acks("replay")

    def _open_remote(self) -> None:
        self._backend._ensure_members()
        self._map_owners()
        self._send_open()
        self._mode = "remote"

    def _collect_acks(self, what: str) -> None:
        errors: List[str] = []
        for agent, _ranks in self._owners:
            try:
                tag, payload = agent.recv(None)
            except BackendError as exc:
                errors.append(str(exc))
                continue
            if tag != "ok":
                errors.append(str(payload))
        if errors:
            raise BackendError(
                f"{what} failed on {len(errors)} agent(s):\n"
                + "\n".join(errors)
            )

    def _adopt_new_members(self) -> None:
        """Superstep-boundary adoption of agents that joined mid-run:
        reset the fleet, re-map ranks over the grown roster, re-open,
        and replay the whole history so the newcomers are
        indistinguishable from founding members."""
        fresh = self._backend._adopt_pending()
        if not fresh:
            return
        for agent, _ranks in self._owners:
            self._reset_survivor(agent)
        previous = dict(self._rank_owner)
        self._map_owners()
        migrated = sum(
            1
            for rank, owner in previous.items()
            if self._rank_owner.get(rank) != owner
        )
        self._send_open()
        self._send_replay()
        with self.tracer.span("distributed"):
            self.tracer.count("agents_joined", len(fresh))
            self.tracer.count("ranks_migrated", migrated)

    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        if self._mode == "failed":
            raise BackendError(
                "session lost its agents and cannot continue"
            )
        if self._mode == "local":
            return self._run_local(fn, arg, inboxes)
        try:
            pickle.dumps((fn, arg), protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            if self._mode == "pending":
                self._fall_back_local(fn, exc)
                return self._run_local(fn, arg, inboxes)
            raise BackendError(
                "superstep function/argument is not picklable and the "
                "session already has remote per-rank state; use "
                "module-level superstep functions"
            ) from exc
        if self._mode == "pending":
            self._open_remote()
        else:
            self._adopt_new_members()
        cfg = self._backend.supervisor
        attempt = 0
        delay = cfg.backoff_base_s
        while True:
            try:
                outcomes, sent, received = self._dispatch(
                    fn, arg, inboxes
                )
            except _StepUndecodable as exc:
                if self._history:
                    raise BackendError(
                        "agents cannot decode the superstep (its "
                        "module is not importable on the agent hosts) "
                        "and the session already has remote per-rank "
                        f"state:\n{exc}"
                    ) from None
                # nothing committed remotely yet: run in-process
                for agent, _ranks in self._owners:
                    self._reset_survivor(agent)
                self._owners = []
                self._rank_owner = {}
                self._fall_back_local(
                    fn,
                    RuntimeError(
                        "its module is not importable on the agent "
                        "hosts"
                    ),
                )
                return self._run_local(fn, arg, inboxes)
            except _AgentLoss as loss:
                attempt += 1
                if attempt > cfg.max_retries:
                    if cfg.degrade:
                        self._degrade(loss)
                        return self._run_local(fn, arg, inboxes)
                    self._abandon_remote(loss)
                    raise BackendError(
                        f"superstep lost "
                        f"{len(loss.dead) + len(loss.hung)} agent(s) "
                        f"({loss}) and the retry budget "
                        f"({cfg.max_retries}) is exhausted"
                    ) from None
                try:
                    with self.tracer.span("recovery"):
                        self.tracer.count("step_retries", 1)
                        self.tracer.count("worker_deaths", len(loss.dead))
                        self.tracer.count(
                            "deadline_timeouts", len(loss.hung)
                        )
                        self._recover(loss)
                        time.sleep(delay)
                except BackendError:
                    # the fleet could not be rebuilt (e.g. every agent
                    # is gone and nobody reconnected)
                    if cfg.degrade:
                        self._degrade(loss)
                        return self._run_local(fn, arg, inboxes)
                    self._mode = "failed"
                    raise
                delay *= cfg.backoff_factor
                # injected one-shot faults (chaos harness) fire on the
                # first attempt only — retries run the plain superstep
                fn = _disarm_step(fn)
                continue
            self._history.append(
                (
                    _disarm_step(fn),
                    arg,
                    [list(box) for box in inboxes],
                )
            )
            with self.tracer.span("distributed"):
                self.tracer.count("bytes_sent", sent)
                self.tracer.count("bytes_recv", received)
            return outcomes

    def _dispatch(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> Tuple[List[RankOutcome], int, int]:
        """One dispatch attempt: ship the step to every owner, collect
        replies under the deadline, classify losses.  Returns the
        rank-ordered outcomes plus the step's traffic volume."""
        cfg = self._backend.supervisor
        dead: List[_AgentHandle] = []
        hung: List[_AgentHandle] = []
        pending: List[_AgentHandle] = []
        sent = 0
        received = 0
        before_recv = self._backend.bytes_recv
        for agent, ranks in self._owners:
            tasks = [(r, inboxes[r]) for r in ranks]
            try:
                sent += agent.send(("step", self._sid, fn, arg, tasks))
            except BackendError:
                dead.append(agent)
                continue
            pending.append(agent)
        deadline = (
            time.monotonic() + cfg.step_deadline_s
            if cfg.step_deadline_s is not None
            else None
        )
        by_rank: Dict[int, RankOutcome] = {}
        errors: List[str] = []
        undecodable: List[str] = []
        for agent in pending:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                tag, payload = agent.recv(remaining)
            except _AgentTimeout:
                hung.append(agent)
                continue
            except BackendError:
                dead.append(agent)
                continue
            if tag == "err-decode":
                undecodable.append(str(payload))
                continue
            if tag != "ok":
                errors.append(str(payload))
                continue
            for rank, value, sends, records, span_dict in payload:
                spans = (
                    Span.from_dict(span_dict)
                    if span_dict is not None
                    else None
                )
                by_rank[rank] = RankOutcome(value, sends, records, spans)
        received = self._backend.bytes_recv - before_recv
        if dead or hung:
            raise _AgentLoss(dead, hung)
        if undecodable and not errors:
            raise _StepUndecodable(undecodable[0])
        if errors:
            # the superstep itself raised — an application bug, not an
            # agent loss; retrying would fail identically
            raise BackendError(
                f"superstep failed on {len(errors)} agent(s):\n"
                + "\n".join(errors)
            )
        return (
            [by_rank[rank] for rank in range(self.size)],
            sent,
            received,
        )

    # -- recovery ------------------------------------------------------
    def _reset_survivor(self, agent: _AgentHandle) -> bool:
        """Drop the session's state on a surviving agent so the replay
        can rebuild it from scratch; False marks the agent lost too."""
        cfg = self._backend.supervisor
        try:
            agent.send(("close", self._sid))
            tag, _payload = agent.recv(cfg.heartbeat_timeout_s)
        except (BackendError, _AgentTimeout):
            return False
        return tag == "ok"

    def _recover(self, loss: _AgentLoss) -> None:
        """Replace lost agents and deterministically rebuild the whole
        session (open + history replay) on the refreshed fleet."""
        lost: Set[_AgentHandle] = set(loss.dead) | set(loss.hung)
        for agent, _ranks in self._owners:
            if agent not in lost and not self._reset_survivor(agent):
                lost.add(agent)
        replaced = self._backend._replace_lost(lost)
        self.tracer.count("worker_respawns", len(lost))
        self.tracer.count("reconnects", replaced)
        previous = dict(self._rank_owner)
        self._map_owners()
        migrated = sum(
            1
            for rank, owner in previous.items()
            if self._rank_owner.get(rank) != owner
        )
        self.tracer.count("ranks_migrated", migrated)
        self._send_open()
        self._send_replay()

    def _rebuild_local_states(self) -> None:
        """In-process replay of the step history (outcomes discarded —
        their ledger/span contributions were merged when the steps
        first succeeded)."""
        self._local_states = [{} for _ in range(self.size)]
        for hist_fn, hist_arg, hist_inboxes in self._history:
            for rank in range(self.size):
                run_rank_step(
                    hist_fn, hist_arg, rank, self.size,
                    self._shared_input, self._local_states[rank],
                    list(hist_inboxes[rank]), False,
                )

    def _teardown_remote(self, loss: _AgentLoss) -> None:
        lost: Set[_AgentHandle] = set(loss.dead) | set(loss.hung)
        self._backend._replace_lost(lost)
        for agent, _ranks in self._owners:
            if agent not in lost:
                self._reset_survivor(agent)
        self._owners = []
        self._rank_owner = {}

    def _degrade(self, loss: _AgentLoss) -> None:
        cfg = self._backend.supervisor
        warnings.warn(
            f"tcp backend: {len(loss.dead) + len(loss.hung)} "
            f"agent(s) unrecoverable after {cfg.max_retries} "
            "retr(y/ies); the session degrades to in-process serial "
            "execution.",
            RuntimeWarning,
            stacklevel=6,
        )
        with self.tracer.span("recovery"):
            self.tracer.count("worker_deaths", len(loss.dead))
            self.tracer.count("deadline_timeouts", len(loss.hung))
            self.tracer.count("ranks_degraded", self.size)
            self._teardown_remote(loss)
            self._mode = "local"
            self._rebuild_local_states()

    def _abandon_remote(self, loss: _AgentLoss) -> None:
        with self.tracer.span("recovery"):
            self.tracer.count("worker_deaths", len(loss.dead))
            self.tracer.count("deadline_timeouts", len(loss.hung))
            self._teardown_remote(loss)
            self._mode = "failed"

    # -- rollback hooks (chaos harness) --------------------------------
    def _state_snapshot(self) -> Any:
        if self._mode == "local":
            return ("local", copy.deepcopy(self._local_states))
        return (self._mode, None)

    def _state_restore(self, snapshot: Any) -> None:
        kind, payload = snapshot
        if self._mode == "local":
            if kind == "local":
                self._local_states = payload
            else:
                # the session went local mid-attempt (degrade or pickle
                # fallback); rebuild rank state from the step history
                self._rebuild_local_states()
            return
        if self._mode == "failed":
            raise BackendError(
                "session lost its agents and cannot roll back"
            )
        # pending/remote: a failed attempt never commits agent state
        # (recovery replays the successful history), nothing to restore

    # ------------------------------------------------------------------
    def _close(self) -> None:
        try:
            if self._mode == "remote":
                alive: List[_AgentHandle] = []
                for agent, _ranks in self._owners:
                    try:
                        agent.send(("close", self._sid))
                        alive.append(agent)
                    except BackendError:
                        pass
                for agent in alive:
                    try:
                        agent.recv(
                            self._backend.supervisor.heartbeat_timeout_s
                        )
                    except (BackendError, _AgentTimeout):
                        pass
        finally:
            self._local_states = []
            self._owners = []
            self._rank_owner = {}
            self._history = []


def tcp_from_spec(spec: BackendSpec) -> TCPBackend:
    """Registry factory for ``tcp`` (URI form:
    ``tcp://host:port:workers?deadline=30&spawn=external``)."""
    opts = spec.typed_options(
        {
            "deadline": float,
            "spawn": str,
            "accept_timeout": float,
            "heartbeat": float,
            "retries": int,
        }
    )
    overrides: Dict[str, Any] = {}
    if "deadline" in opts:
        deadline = float(opts["deadline"])
        overrides["step_deadline_s"] = deadline if deadline > 0 else None
    if "heartbeat" in opts:
        overrides["heartbeat_timeout_s"] = float(opts["heartbeat"])
    if "retries" in opts:
        overrides["max_retries"] = max(0, int(opts["retries"]))
    base = SupervisorConfig.from_env()
    supervisor = (
        SupervisorConfig(
            **{
                **{
                    f.name: getattr(base, f.name)
                    for f in base.__dataclass_fields__.values()
                },
                **overrides,
            }
        )
        if overrides
        else base
    )
    return TCPBackend(
        host=spec.host or "127.0.0.1",
        port=spec.port or 0,
        workers=spec.workers,
        spawn=opts.get("spawn"),
        supervisor=supervisor,
        accept_timeout=float(
            opts.get("accept_timeout", ACCEPT_TIMEOUT_S)
        ),
    )


# ----------------------------------------------------------------------
# worker agent (remote side)
# ----------------------------------------------------------------------


class _AgentSessionState:
    """Everything an agent holds for one open session."""

    __slots__ = ("shared", "states", "size", "trace")

    def __init__(
        self, shared: Dict[str, Any], size: int, trace: bool
    ) -> None:
        self.shared = shared
        self.states: Dict[int, Dict[str, Any]] = {}
        self.size = size
        self.trace = trace


def _serve(chan: _Channel) -> None:
    """Command loop of one worker agent (runs in the agent process)."""
    sessions: Dict[int, _AgentSessionState] = {}
    while True:
        try:
            msg, _n = chan.recv(None)
        except (EOFError, OSError, WireError):
            break
        except Exception:
            # the frames were fully consumed but the payload would not
            # unpickle (typically: the superstep's module is not
            # importable on this host) — the stream is still at a
            # message boundary, so report and keep serving
            try:
                chan.send(("err-decode", traceback.format_exc()))
                continue
            except OSError:  # pragma: no cover - coordinator gone
                break
        tag = msg[0]
        if tag == "shutdown":
            break
        reply: Tuple[str, Any]
        try:
            if tag == "ping":
                reply = ("ok", "pong")
            elif tag == "open":
                _, sid, size, shared, trace = msg
                sessions[sid] = _AgentSessionState(
                    dict(shared), size, trace
                )
                reply = ("ok", None)
            elif tag == "replay":
                # deterministic state reconstruction after a respawn /
                # adoption: re-execute the session's successful step
                # history for this agent's ranks, discarding the
                # outcomes (they were already merged when the steps
                # first succeeded)
                _, sid, entries = msg
                sess = sessions[sid]
                for fn, arg, tasks in entries:
                    for rank, inbox in tasks:
                        state = sess.states.setdefault(rank, {})
                        run_rank_step(
                            fn, arg, rank, sess.size, sess.shared,
                            state, inbox, False,
                        )
                reply = ("ok", None)
            elif tag == "step":
                _, sid, fn, arg, tasks = msg
                sess = sessions[sid]
                outs = []
                for rank, inbox in tasks:
                    state = sess.states.setdefault(rank, {})
                    out = run_rank_step(
                        fn, arg, rank, sess.size, sess.shared, state,
                        inbox, sess.trace,
                    )
                    outs.append(
                        (
                            rank,
                            out.value,
                            out.sends,
                            out.records,
                            out.spans.to_dict()
                            if out.spans is not None
                            else None,
                        )
                    )
                reply = ("ok", outs)
            elif tag == "close":
                _, sid = msg
                sessions.pop(sid, None)
                reply = ("ok", None)
            else:
                reply = ("err", f"unknown command {tag!r}")
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            chan.send(reply)
        except OSError:  # coordinator is gone
            break
    sessions.clear()
    chan.close()


def _connect(
    host: str, port: int, retries: int, retry_delay: float
) -> socket.socket:
    last: Optional[OSError] = None
    for attempt in range(retries + 1):
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            last = exc
            if attempt < retries:
                time.sleep(retry_delay)
    raise last if last is not None else OSError("connect failed")


def agent_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-agent`` console script.

    Connects to a coordinator, performs the ``repro.wire/1`` hello/
    welcome handshake, and serves supersteps until the coordinator
    disconnects.  Exit codes: 0 on orderly shutdown, 1 on a rejected
    handshake or unreachable coordinator.
    """
    parser = argparse.ArgumentParser(
        prog="repro-agent",
        description=(
            "SPMD worker agent for the distributed tcp backend: dials "
            "a coordinator and executes supersteps shipped over "
            f"{WIRE_SCHEMA}."
        ),
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to dial",
    )
    parser.add_argument(
        "--name",
        default=None,
        help="agent name advertised to the coordinator",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=10,
        help="connection attempts before giving up (default 10)",
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=0.5,
        help="seconds between connection attempts (default 0.5)",
    )
    args = parser.parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    name = args.name or f"{AGENT_NAME_PREFIX}-{os.getpid()}"
    # the chaos harness identifies workers by process name — adopt the
    # worker prefix so `kill@STEP.RANK` faults fire inside the agent
    import multiprocessing

    multiprocessing.current_process().name = name
    try:
        sock = _connect(
            host, int(port_text), args.retries, args.retry_delay
        )
    except OSError as exc:
        print(
            f"repro-agent: cannot reach coordinator {args.connect}: "
            f"{exc}",
            file=sys.stderr,
        )
        return 1
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    chan = _Channel(sock)
    try:
        chan.send(
            (
                "hello",
                {
                    "schema": WIRE_SCHEMA,
                    "name": name,
                    "pid": os.getpid(),
                },
            )
        )
        reply, _n = chan.recv(HANDSHAKE_TIMEOUT_S)
    except (
        _AgentTimeout, EOFError, OSError, WireError,
    ) as exc:
        print(
            f"repro-agent: handshake with {args.connect} failed: {exc}",
            file=sys.stderr,
        )
        chan.close()
        return 1
    if not isinstance(reply, tuple) or reply[0] != "welcome":
        reason = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
        print(
            f"repro-agent: coordinator rejected the handshake: {reason}",
            file=sys.stderr,
        )
        chan.close()
        return 1
    # superstep functions arrive pickled by reference — make the
    # coordinator's import roots visible so they resolve here too
    for entry in reply[1].get("sys_path", []):
        if entry not in sys.path:
            sys.path.append(entry)
    _serve(chan)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via Popen
    raise SystemExit(agent_main())
