"""``repro.wire/1`` — the framed message protocol of the runtime.

One message = one header frame + N raw buffer frames.  The header
frame is a pickle (protocol 5) of the Python object with every
contiguous NumPy array (and anything else exposing the
:class:`pickle.PickleBuffer` protocol) hoisted *out-of-band*: the
pickle stream holds only a placeholder, and the array's bytes travel
as their own raw frame, never copied through the pickler.  Decoding
hands the frames back to :func:`pickle.loads` via ``buffers=``, so
arrays are rebuilt directly from the received frames.

The same frames ride two transports:

* **streams** (TCP sockets, :mod:`repro.runtime.backends.tcp`):
  :func:`write_stream` / :func:`read_stream` prefix the frames with a
  fixed header — magic, protocol version, frame count, per-frame
  lengths — so the peer can pre-check the version before trusting a
  byte of payload (the coordinator/agent handshake rejects a
  mismatched peer with :class:`WireVersionError`);
* **pipes** (the process backend's ``multiprocessing`` connections):
  :func:`pipe_send` / :func:`pipe_recv` reuse the connection's own
  message framing and send each frame in bounded chunks — this is the
  "slim the pickle pipes" seam of ROADMAP item 1: array payloads no
  longer pass through the pickler as opaque blobs.

Every send/receive helper returns the byte count moved, so transports
can account ``bytes_sent`` / ``bytes_recv`` in tracers and reports.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable, List, Sequence, Tuple, Union

#: 4-byte magic opening every stream message
WIRE_MAGIC = b"RPW\x01"
#: protocol version (bump on any incompatible framing change)
WIRE_VERSION = 1
#: schema identifier (documentation / handshake payloads)
WIRE_SCHEMA = "repro.wire/1"

#: pickle protocol carrying the header frame (5 = out-of-band buffers)
PICKLE_PROTOCOL = 5

#: ``<magic><u16 version><u32 nframes>``
_HEAD = struct.Struct("<4sHI")
#: one ``u64`` length per frame
_LEN = struct.Struct("<Q")

#: hard cap on frames per message (a malformed peer cannot make the
#: reader allocate an unbounded length table)
MAX_FRAMES = 1 << 20

Frame = Union[bytes, memoryview]


class WireError(RuntimeError):
    """Malformed ``repro.wire/1`` traffic (bad magic, bad framing)."""


class WireVersionError(WireError):
    """The peer speaks a different wire protocol version."""

    def __init__(self, theirs: int, ours: int = WIRE_VERSION) -> None:
        self.theirs = theirs
        self.ours = ours
        super().__init__(
            f"wire protocol version mismatch: peer speaks {theirs}, "
            f"this end speaks {ours} ({WIRE_SCHEMA})"
        )


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------


def to_frames(obj: Any) -> List[Frame]:
    """Encode ``obj`` as ``[header frame, *raw buffer frames]``.

    Contiguous NumPy arrays inside ``obj`` become raw frames
    (zero-copy ``memoryview``s of the array data); non-contiguous
    arrays and ordinary objects stay in the header pickle.
    """
    buffers: List[pickle.PickleBuffer] = []
    head = pickle.dumps(
        obj, protocol=PICKLE_PROTOCOL, buffer_callback=buffers.append
    )
    frames: List[Frame] = [head]
    for buf in buffers:
        try:
            frames.append(buf.raw())
        except BufferError:  # pragma: no cover - non-C-contiguous buffer
            frames.append(memoryview(buf).tobytes())
    return frames


def from_frames(frames: Sequence[Frame]) -> Any:
    """Decode a message produced by :func:`to_frames`."""
    if not frames:
        raise WireError("empty wire message (no header frame)")
    return pickle.loads(frames[0], buffers=frames[1:])


def frames_nbytes(frames: Sequence[Frame]) -> int:
    """Total payload bytes across ``frames``."""
    return sum(len(frame) for frame in frames)


# ----------------------------------------------------------------------
# stream transport (sockets)
# ----------------------------------------------------------------------


def encode_stream(obj: Any) -> Tuple[List[Frame], int]:
    """Frames plus the full on-the-wire byte count (header included)."""
    frames = to_frames(obj)
    total = (
        _HEAD.size
        + _LEN.size * len(frames)
        + frames_nbytes(frames)
    )
    return frames, total


def write_stream(write: Callable[[Frame], None], obj: Any) -> int:
    """Write one message through ``write`` (e.g. ``socket.sendall``).

    Returns the number of bytes written.
    """
    frames, total = encode_stream(obj)
    head = bytearray(_HEAD.pack(WIRE_MAGIC, WIRE_VERSION, len(frames)))
    for frame in frames:
        head += _LEN.pack(len(frame))
    write(bytes(head))
    for frame in frames:
        write(frame)
    return total


def read_stream(read_exact: Callable[[int], bytes]) -> Tuple[Any, int]:
    """Read one message via ``read_exact(n) -> n bytes``.

    Returns ``(object, bytes_read)``.  Raises :class:`WireError` on a
    bad magic and :class:`WireVersionError` on a version mismatch —
    both *before* any payload byte is consumed, so a handshake can
    reject a peer cheaply.
    """
    head = read_exact(_HEAD.size)
    magic, version, n_frames = _HEAD.unpack(head)
    if magic != WIRE_MAGIC:
        raise WireError(
            f"bad wire magic {magic!r} (not a {WIRE_SCHEMA} peer)"
        )
    if version != WIRE_VERSION:
        raise WireVersionError(version)
    if n_frames < 1 or n_frames > MAX_FRAMES:
        raise WireError(f"unreasonable wire frame count {n_frames}")
    lengths = [
        _LEN.unpack(read_exact(_LEN.size))[0] for _ in range(n_frames)
    ]
    frames: List[Frame] = [read_exact(length) for length in lengths]
    total = _HEAD.size + _LEN.size * n_frames + frames_nbytes(frames)
    return from_frames(frames), total


def peek_version(head: bytes) -> int:
    """Protocol version claimed by a raw stream header (for handshake
    diagnostics; raises :class:`WireError` on bad magic/size)."""
    if len(head) < _HEAD.size:
        raise WireError("short wire header")
    magic, version, _n = _HEAD.unpack(head[: _HEAD.size])
    if magic != WIRE_MAGIC:
        raise WireError(f"bad wire magic {magic!r}")
    return int(version)


# ----------------------------------------------------------------------
# pipe transport (multiprocessing connections)
# ----------------------------------------------------------------------

#: default chunk size for pipe frames (bounded kernel-buffer writes)
PIPE_CHUNK_BYTES = 1 << 24


def pipe_send(
    conn: Any, obj: Any, chunk_bytes: int = PIPE_CHUNK_BYTES
) -> int:
    """Send one wire message over a byte-message connection.

    The connection's own framing replaces the stream length prefix: the
    first ``send_bytes`` carries ``version | frame lengths``, then each
    frame follows in ``chunk_bytes``-bounded chunks.  Returns payload
    bytes sent (header included).
    """
    frames = to_frames(obj)
    head = bytearray(_HEAD.pack(WIRE_MAGIC, WIRE_VERSION, len(frames)))
    for frame in frames:
        head += _LEN.pack(len(frame))
    conn.send_bytes(bytes(head))
    for frame in frames:
        view = memoryview(frame)
        if not view.contiguous:  # pragma: no cover - defensive
            view = memoryview(view.tobytes())
        view = view.cast("B")
        for offset in range(0, len(view), chunk_bytes):
            conn.send_bytes(view[offset:offset + chunk_bytes])
        if len(view) == 0:
            conn.send_bytes(b"")
    return len(head) + frames_nbytes(frames)


def pipe_recv(conn: Any) -> Tuple[Any, int]:
    """Receive one wire message sent by :func:`pipe_send`.

    Returns ``(object, bytes_read)``.
    """
    head = conn.recv_bytes()
    if len(head) < _HEAD.size:
        raise WireError("short wire header on pipe")
    magic, version, n_frames = _HEAD.unpack(head[: _HEAD.size])
    if magic != WIRE_MAGIC:
        raise WireError(f"bad wire magic {magic!r} on pipe")
    if version != WIRE_VERSION:
        raise WireVersionError(version)
    if n_frames < 1 or n_frames > MAX_FRAMES:
        raise WireError(f"unreasonable wire frame count {n_frames}")
    expect = _HEAD.size + _LEN.size * n_frames
    if len(head) != expect:
        raise WireError("wire header length table is truncated")
    lengths = [
        _LEN.unpack_from(head, _HEAD.size + _LEN.size * i)[0]
        for i in range(n_frames)
    ]
    frames: List[Frame] = []
    for length in lengths:
        if length == 0:
            # zero-length frames still occupy one (empty) chunk so the
            # chunk stream never desynchronises
            chunk = conn.recv_bytes()
            if chunk:
                raise WireError("expected empty chunk for empty frame")
            frames.append(b"")
            continue
        buf = bytearray(length)
        view = memoryview(buf)
        received = 0
        while received < length:
            chunk = conn.recv_bytes()
            if not chunk:
                raise WireError("truncated wire frame on pipe")
            view[received:received + len(chunk)] = chunk
            received += len(chunk)
        frames.append(bytes(buf))
    return from_frames(frames), len(head) + frames_nbytes(frames)
