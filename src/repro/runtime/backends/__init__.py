"""Pluggable execution backends for the SPMD runtime.

See :mod:`repro.runtime.backends.base` for the session protocol and
``docs/PARALLELISM.md`` for the full backend model (selection, the
shared-memory transfer protocol, determinism guarantees, and how
per-rank spans surface in run reports).
"""

from repro.runtime.backends.base import (
    BACKEND_ENV,
    BACKEND_NAMES,
    CHAOS_INNER_ENV,
    FAULT_PLAN_ENV,
    MAX_RETRIES_ENV,
    STEP_DEADLINE_ENV,
    WORKERS_ENV,
    Backend,
    BackendError,
    BackendLike,
    BackendSpec,
    SpmdContext,
    SpmdSession,
    backend_names,
    build_backend,
    default_workers,
    make_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    unregister_backend,
)
from repro.runtime.backends.process import ProcessBackend, SupervisorConfig
from repro.runtime.backends.sentinel import (
    SentinelBackend,
    SharedStateMutationError,
)
from repro.runtime.backends.serial import SerialBackend
from repro.runtime.backends.tcp import TCPBackend
from repro.runtime.backends.thread import ThreadBackend

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "CHAOS_INNER_ENV",
    "FAULT_PLAN_ENV",
    "MAX_RETRIES_ENV",
    "STEP_DEADLINE_ENV",
    "WORKERS_ENV",
    "Backend",
    "BackendError",
    "BackendLike",
    "BackendSpec",
    "ProcessBackend",
    "SentinelBackend",
    "SerialBackend",
    "SharedStateMutationError",
    "SpmdContext",
    "SpmdSession",
    "SupervisorConfig",
    "TCPBackend",
    "ThreadBackend",
    "backend_names",
    "build_backend",
    "default_workers",
    "make_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "unregister_backend",
]
