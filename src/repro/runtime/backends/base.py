"""Execution-backend core: where SPMD supersteps actually run.

The simulated runtime of :mod:`repro.runtime.comm` accounts the
communication structure of the paper's algorithms but executes every
rank sequentially in one process.  This package makes the rank loop a
pluggable *backend* behind one small session protocol, so the same
superstep functions run

* sequentially in-process (:class:`~repro.runtime.backends.serial.SerialBackend`,
  the reference semantics),
* on a thread pool (:class:`~repro.runtime.backends.thread.ThreadBackend`), or
* on a persistent pool of worker processes with shared-memory array
  transfer (:class:`~repro.runtime.backends.process.ProcessBackend`).

Execution stays bulk-synchronous: a *session* owns ``size`` ranks, and
every :meth:`SpmdSession.step` call runs one superstep function on all
ranks, then plays the barrier — queued sends are routed into the
destination inboxes for the next step.  All merging (return values,
ledger records, queued messages, per-rank span trees) happens in rank
order in the calling process, so results are bit-identical across
backends regardless of scheduling.

Superstep functions receive a :class:`SpmdContext` with

* ``rank`` / ``size`` — who am I, how many of us,
* ``shared`` — the read-only mapping of run-wide inputs the backend
  distributed (NumPy arrays travel zero-copy on the process backend),
* ``state`` — a per-rank dict that persists across the session's steps
  (resident in the owning worker on the process backend),
* ``send`` / ``inbox`` — the mpi4py-style verbs of the simulator,
* ``span`` / ``count`` — per-rank tracing merged back into the session
  tracer (see ``docs/PARALLELISM.md``).
"""

from __future__ import annotations

import importlib
import os
import warnings
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    ContextManager,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)
from types import TracebackType
from urllib.parse import parse_qsl, urlsplit

from repro.obs.tracer import (
    NULL_TRACER,
    Number,
    Span,
    Tracer,
    TracerBase,
    ensure_tracer,
)
from repro.runtime.ledger import CommLedger

#: (phase, src, dst, items) — one ledger entry recorded on a rank
LedgerRecord = Tuple[str, int, int, int]
#: (dst, payload) — one queued message (src is the producing rank)
SendRecord = Tuple[int, Any]
#: (src, payload) — one delivered message
Message = Tuple[int, Any]
#: a superstep: ``fn(ctx, arg) -> per-rank result``
StepFn = Callable[["SpmdContext", Any], Any]

#: environment variable selecting the default backend (e.g. ``process``
#: or ``process:4``); read by :func:`resolve_backend`
BACKEND_ENV = "REPRO_BACKEND"
#: environment variable with the default worker count
WORKERS_ENV = "REPRO_WORKERS"
#: fault plan injected by the ``chaos`` backend (see
#: :mod:`repro.runtime.faults` for the grammar)
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
#: execution backend the ``chaos`` backend wraps (default ``process``)
CHAOS_INNER_ENV = "REPRO_CHAOS_INNER"
#: per-superstep deadline (seconds) for the supervised process backend
STEP_DEADLINE_ENV = "REPRO_STEP_DEADLINE"
#: per-superstep retry budget for the supervised process backend
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"

class BackendError(RuntimeError):
    """An execution backend failed (worker crash, protocol misuse)."""


class SpmdContext:
    """Per-rank execution context handed to superstep functions."""

    __slots__ = (
        "rank",
        "size",
        "shared",
        "state",
        "tracer",
        "_inbox",
        "_sends",
        "_records",
    )

    def __init__(
        self,
        rank: int,
        size: int,
        shared: Mapping[str, Any],
        state: Dict[str, Any],
        inbox: List[Message],
        tracer: TracerBase,
    ) -> None:
        self.rank = rank
        self.size = size
        self.shared = shared
        self.state = state
        self.tracer = tracer
        self._inbox = inbox
        self._sends: List[SendRecord] = []
        self._records: List[LedgerRecord] = []

    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any, phase: str, items: int) -> None:
        """Queue a message for barrier delivery (``items`` is the
        logical item count recorded in the ledger)."""
        if not 0 <= dst < self.size:
            raise ValueError(f"rank {dst} out of range [0, {self.size})")
        if items < 0:
            raise ValueError("items must be >= 0")
        self._records.append((phase, self.rank, dst, items))
        self._sends.append((dst, payload))

    def inbox(self) -> List[Message]:
        """Messages delivered to this rank (consumed on read)."""
        msgs = self._inbox
        self._inbox = []
        return msgs

    # ------------------------------------------------------------------
    def span(self, name: str) -> ContextManager[Optional[Span]]:
        """Open (or re-enter) a per-rank trace span."""
        return self.tracer.span(name)

    def count(self, name: str, value: Number = 1) -> None:
        """Add into a counter of the innermost open per-rank span."""
        self.tracer.count(name, value)


class RankOutcome:
    """Everything one rank's superstep produced (transported back to
    the session for the deterministic rank-ordered merge)."""

    __slots__ = ("value", "sends", "records", "spans")

    def __init__(
        self,
        value: Any,
        sends: List[SendRecord],
        records: List[LedgerRecord],
        spans: Optional[Span],
    ) -> None:
        self.value = value
        self.sends = sends
        self.records = records
        self.spans = spans


def run_rank_step(
    fn: StepFn,
    arg: Any,
    rank: int,
    size: int,
    shared: Mapping[str, Any],
    state: Dict[str, Any],
    inbox: List[Message],
    trace: bool,
) -> RankOutcome:
    """Execute one rank's share of a superstep (backend-agnostic)."""
    tracer: TracerBase = Tracer("rank") if trace else NULL_TRACER
    ctx = SpmdContext(rank, size, shared, state, inbox, tracer)
    value = fn(ctx, arg)
    spans: Optional[Span] = None
    if isinstance(tracer, Tracer) and tracer.root.children:
        spans = tracer.finish()
    return RankOutcome(value, ctx._sends, ctx._records, spans)


def accumulate_span(dst: Span, src: Span) -> None:
    """Merge ``src``'s totals/counters/children into ``dst`` (the
    accumulating semantics of re-entering a span name)."""
    dst.n_calls += src.n_calls
    dst.total_s += src.total_s
    for key, value in src.counters.items():
        dst.count(key, value)
    for child in src.children.values():
        accumulate_span(dst.child(child.name), child)


class SpmdSession:
    """One bulk-synchronous run: ``size`` ranks stepping in lockstep.

    Subclasses implement :meth:`_run_step` (and may override the
    lifecycle hooks).  The base class owns everything that must be
    deterministic: message routing, ledger replay, and span merging,
    all performed in rank order in the calling process.
    """

    def __init__(
        self,
        size: int,
        ledger: Optional[CommLedger],
        tracer: Optional[TracerBase],
    ) -> None:
        if size < 1:
            raise ValueError(
                f"SPMD session size must be >= 1, got {size}"
            )
        self.size = size
        self.ledger = ledger if ledger is not None else CommLedger()
        self.tracer = ensure_tracer(tracer)
        self._inboxes: List[List[Message]] = [[] for _ in range(size)]
        self._closed = False

    # -- subclass interface --------------------------------------------
    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        raise NotImplementedError

    def _close(self) -> None:
        """Release backend resources (hook; base is a no-op)."""

    # -- rollback hooks (used by the chaos harness) --------------------
    def _state_snapshot(self) -> Any:
        """Snapshot per-rank state so a failed step can be retried.

        Sessions that cannot roll back return ``None`` (the default);
        :meth:`_state_restore` then refuses the retry.
        """
        return None

    def _state_restore(self, snapshot: Any) -> None:
        """Restore a snapshot taken by :meth:`_state_snapshot`."""
        raise BackendError(
            f"{type(self).__name__} cannot roll back per-rank state"
        )

    # ------------------------------------------------------------------
    def step(self, fn: StepFn, arg: Any = None) -> List[Any]:
        """Run ``fn(ctx, arg)`` on every rank, then play the barrier.

        Returns the per-rank results in rank order.  Messages queued
        with ``ctx.send`` become readable from ``ctx.inbox()`` in the
        *next* step, exactly like
        :meth:`repro.runtime.comm.SimComm.barrier`.
        """
        if self._closed:
            raise BackendError("session is closed")
        inboxes = self._inboxes
        self._inboxes = [[] for _ in range(self.size)]
        outcomes = self._run_step(fn, arg, inboxes)
        return self._merge(outcomes)

    def _merge(self, outcomes: List[RankOutcome]) -> List[Any]:
        """Rank-ordered merge: ledger replay, message routing, spans."""
        if len(outcomes) != self.size:
            raise BackendError(
                f"backend returned {len(outcomes)} rank outcomes for a "
                f"{self.size}-rank session"
            )
        current: Optional[Span] = getattr(self.tracer, "current", None)
        values: List[Any] = []
        for rank, out in enumerate(outcomes):
            for phase, src, dst, items in out.records:
                self.ledger.record(phase, src, dst, items)
            for dst, payload in out.sends:
                if dst != rank:  # self-sends drop at the barrier
                    self._inboxes[dst].append((rank, payload))
            if out.spans is not None and current is not None:
                for child in out.spans.children.values():
                    accumulate_span(current.child(child.name), child)
            values.append(out.value)
        return values

    # ------------------------------------------------------------------
    def account(self, phase: str, src: int, dst: int, items: int) -> None:
        """Record coordinator-side traffic directly in the ledger (for
        protocol steps whose data never leaves the calling process)."""
        for rank in (src, dst):
            if not 0 <= rank < self.size:
                raise ValueError(
                    f"rank {rank} out of range [0, {self.size})"
                )
        self.ledger.record(phase, src, dst, items)

    def close(self) -> None:
        """End the session and release per-rank state."""
        if not self._closed:
            self._closed = True
            self._close()

    def __enter__(self) -> "SpmdSession":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class Backend:
    """Execution-backend interface.

    A backend is a (possibly pooled) place to run SPMD sessions; it is
    cheap to keep around and safe to reuse across many sessions — the
    process backend keeps its worker pool alive between sessions so
    repeated runs (e.g. one contact search per driver step) amortise
    the startup cost.
    """

    #: short identifier (``serial`` / ``thread`` / ``process`` /
    #: ``sentinel`` / ``chaos``)
    name: str = "base"

    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        """Start a ``size``-rank bulk-synchronous session."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (idempotent; base is a no-op)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# backend specs (URI form)
# ----------------------------------------------------------------------


def _parse_workers(text: str, source: str) -> int:
    try:
        workers = int(text)
    except ValueError:
        raise ValueError(
            f"invalid worker count {text!r} in {source}"
        ) from None
    if workers < 1:
        raise ValueError(
            f"worker count must be >= 1, got {workers} in {source}"
        )
    return workers


def default_workers() -> int:
    """Worker count used when none is requested: ``REPRO_WORKERS`` if
    set, else the machine's CPU count (at least 1)."""
    env = os.environ.get(WORKERS_ENV)
    if env:
        return _parse_workers(env, f"${WORKERS_ENV}")
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class BackendSpec:
    """A parsed, typed backend selection.

    Every textual way of naming a backend — ``--backend``,
    ``$REPRO_BACKEND``, the service request's ``backend`` field, a
    checkpoint's provenance string — parses **once** into this frozen
    value, and every resolution path consumes it.  Three text forms:

    * bare name: ``"serial"``, ``"process"``,
    * name with worker count: ``"process:4"`` (the historical form),
    * URI: ``"tcp://host:port?workers=4&deadline=30"`` — scheme is the
      registered backend name, the authority carries host/port (a
      trailing ``:N`` authority segment is an alternative worker
      count: ``tcp://127.0.0.1:0:2``), and query parameters become
      :attr:`options`, validated against the backend's registered
      ``spec_schema``.

    Instances are hashable (options are a sorted tuple of pairs), so a
    spec can key caches — :func:`_backend_from_env` keys its memo on
    the parsed spec, which is what keeps registry-registered backends
    configured through URI query parameters from going stale.
    """

    scheme: str
    workers: Optional[int] = None
    host: Optional[str] = None
    port: Optional[int] = None
    options: Tuple[Tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.scheme:
            raise ValueError("backend spec needs a name")
        if self.workers is not None and self.workers < 1:
            raise ValueError(
                f"worker count must be >= 1, got {self.workers}"
            )
        if self.port is not None and not 0 <= self.port <= 65535:
            raise ValueError(f"port out of range: {self.port}")

    # -- parsing -------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "BackendSpec":
        """Parse any of the three textual spec forms (see class doc)."""
        text = text.strip()
        if not text:
            raise ValueError("empty backend spec")
        if "://" not in text:
            name, _, count = text.partition(":")
            name = name.strip().lower()
            workers = (
                _parse_workers(count, f"backend spec {text!r}")
                if count
                else None
            )
            return cls(scheme=name, workers=workers)
        parts = urlsplit(text)
        scheme = parts.scheme.strip().lower()
        if parts.path not in ("", "/") or parts.fragment:
            raise ValueError(
                f"backend URI {text!r} must not carry a path/fragment"
            )
        host: Optional[str] = None
        port: Optional[int] = None
        workers = None
        netloc = parts.netloc
        # authority may be host[:port[:workers]]; urlsplit rejects the
        # second colon, so split by hand
        if netloc:
            pieces = netloc.split(":")
            if len(pieces) > 3:
                raise ValueError(
                    f"backend URI authority {netloc!r} has too many "
                    "':' segments (host[:port[:workers]])"
                )
            host = pieces[0] or None
            if len(pieces) >= 2 and pieces[1]:
                try:
                    port = int(pieces[1])
                except ValueError:
                    raise ValueError(
                        f"invalid port {pieces[1]!r} in backend URI "
                        f"{text!r}"
                    ) from None
            if len(pieces) == 3 and pieces[2]:
                workers = _parse_workers(pieces[2], f"backend URI {text!r}")
        options: List[Tuple[str, str]] = []
        for key, value in parse_qsl(parts.query, keep_blank_values=True):
            if key == "workers":
                workers = _parse_workers(value, f"backend URI {text!r}")
            else:
                options.append((key, value))
        return cls(
            scheme=scheme,
            workers=workers,
            host=host,
            port=port,
            options=tuple(sorted(options)),
        )

    # -- accessors -----------------------------------------------------
    @property
    def options_map(self) -> Dict[str, str]:
        """Query options as a plain dict."""
        return dict(self.options)

    def option(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """One query option (raw text; ``default`` when absent)."""
        return self.options_map.get(key, default)

    def typed_options(
        self, schema: Mapping[str, Callable[[str], Any]]
    ) -> Dict[str, Any]:
        """Options converted through ``schema`` (the backend's
        registered ``spec_schema``); unknown keys raise."""
        out: Dict[str, Any] = {}
        for key, raw in self.options:
            convert = schema.get(key)
            if convert is None:
                raise ValueError(
                    f"backend {self.scheme!r} does not accept option "
                    f"{key!r}; allowed: {sorted(schema) or 'none'}"
                )
            try:
                out[key] = convert(raw)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"invalid value {raw!r} for backend option "
                    f"{key!r}: {exc}"
                ) from None
        return out

    def with_workers(self, workers: Optional[int]) -> "BackendSpec":
        """A copy with ``workers`` replaced."""
        return replace(self, workers=workers)

    def to_text(self) -> str:
        """Canonical textual form (parses back to an equal spec)."""
        if self.host is None and self.port is None and not self.options:
            if self.workers is None:
                return self.scheme
            return f"{self.scheme}:{self.workers}"
        authority = self.host or ""
        if self.port is not None:
            authority += f":{self.port}"
        query = list(self.options)
        if self.workers is not None:
            query.append(("workers", str(self.workers)))
        text = f"{self.scheme}://{authority}"
        if query:
            text += "?" + "&".join(f"{k}={v}" for k, v in sorted(query))
        return text

    def __str__(self) -> str:
        return self.to_text()


# ----------------------------------------------------------------------
# the backend registry
# ----------------------------------------------------------------------

#: a factory builds a backend from its parsed spec
BackendFactory = Callable[[BackendSpec], Backend]
#: per-option converters validating a spec's query parameters
SpecSchema = Mapping[str, Callable[[str], Any]]


@dataclass
class _RegistryEntry:
    name: str
    factory: Union[str, BackendFactory]
    spec_schema: Optional[SpecSchema]

    def resolve(self) -> BackendFactory:
        """Import a lazy ``"module:attr"`` factory on first use."""
        if isinstance(self.factory, str):
            module_name, _, attr_path = self.factory.partition(":")
            if not attr_path:
                raise ValueError(
                    f"lazy backend factory {self.factory!r} must be "
                    "'module:attribute'"
                )
            target: Any = importlib.import_module(module_name)
            for attr in attr_path.split("."):
                target = getattr(target, attr)
            self.factory = target
        return self.factory


_REGISTRY: Dict[str, _RegistryEntry] = {}
#: bumped on every (un)registration — cache keys include it so a
#: re-registered name is never served from a stale memo
_registry_generation = 0


def register_backend(
    name: str,
    factory: Union[str, BackendFactory],
    *,
    spec_schema: Optional[SpecSchema] = None,
    overwrite: bool = False,
) -> None:
    """Register an execution backend under ``name``.

    ``factory`` is either a callable ``factory(spec: BackendSpec) ->
    Backend`` or a lazy ``"module:attribute"`` string imported on
    first use (how the built-ins register without importing their
    modules eagerly).  ``spec_schema`` maps the URI query options the
    backend accepts to converter callables (e.g. ``{"deadline":
    float}``); ``None`` means the backend takes no options, and
    unknown options always fail resolution with the allowed list.
    Re-registering an existing name requires ``overwrite=True``.
    """
    global _registry_generation
    key = name.strip().lower()
    if not key or any(ch in key for ch in ":/?&= \t"):
        raise ValueError(f"invalid backend name {name!r}")
    if key in _REGISTRY and not overwrite:
        raise ValueError(
            f"backend {key!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[key] = _RegistryEntry(key, factory, spec_schema)
    _registry_generation += 1


def unregister_backend(name: str) -> bool:
    """Remove a registered backend; returns whether it existed."""
    global _registry_generation
    existed = _REGISTRY.pop(name.strip().lower(), None) is not None
    if existed:
        _registry_generation += 1
    return existed


def backend_names() -> Tuple[str, ...]:
    """The currently registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


class _BackendNames(Sequence[str]):
    """Live, read-only view of the registered names.

    Importing modules keep seeing a truthful ``BACKEND_NAMES`` even
    when backends are registered after import."""

    def __getitem__(self, index: Any) -> Any:
        return backend_names()[index]

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __contains__(self, item: object) -> bool:
        return item in _REGISTRY

    def __iter__(self) -> Iterator[str]:
        return iter(backend_names())

    def __repr__(self) -> str:
        return repr(backend_names())


#: registered backend names (live registry view, not a frozen tuple)
BACKEND_NAMES: Sequence[str] = _BackendNames()


def build_backend(
    spec: Union[str, BackendSpec, Backend],
    workers: Optional[int] = None,
) -> Backend:
    """Build a backend instance through the registry.

    ``spec`` is a spec string (any :meth:`BackendSpec.parse` form), a
    parsed :class:`BackendSpec`, or an already-built :class:`Backend`
    (passed through untouched — the instance already has its pool).
    ``workers`` applies only when the spec embeds no count.  Query
    options are validated against the backend's registered
    ``spec_schema`` before the factory runs.
    """
    if isinstance(spec, Backend):
        return spec
    parsed = spec if isinstance(spec, BackendSpec) else BackendSpec.parse(spec)
    if workers is not None and parsed.workers is None:
        if workers < 1:
            raise ValueError(
                f"worker count must be >= 1, got {workers}"
            )
        parsed = parsed.with_workers(workers)
    entry = _REGISTRY.get(parsed.scheme)
    if entry is None:
        raise ValueError(
            f"unknown backend {parsed.scheme!r}; "
            f"expected one of {backend_names()}"
        )
    parsed.typed_options(entry.spec_schema or {})
    return entry.resolve()(parsed)


def make_backend(
    spec: Union[str, Backend], workers: Optional[int] = None
) -> Backend:
    """Deprecated alias of :func:`build_backend`.

    .. deprecated:: PR 10
       The hardcoded backend chain is gone; use
       :func:`build_backend` (or :func:`resolve_backend` for the full
       precedence), and :func:`register_backend` to add backends.
    """
    warnings.warn(
        "make_backend() is deprecated; use build_backend()/"
        "resolve_backend(), and register_backend() to add backends "
        "(repro.runtime.backends registry)",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_backend(spec, workers)


# ----------------------------------------------------------------------
# default-backend resolution
# ----------------------------------------------------------------------

#: anything a ``backend=`` argument accepts
BackendLike = Union[None, str, BackendSpec, Backend]

_default_backend: Optional[Backend] = None
_env_backend: Optional[Backend] = None
_env_backend_key: Optional[Tuple[Any, ...]] = None


def set_default_backend(backend: BackendLike) -> None:
    """Install the process-wide default backend (``None`` resets to the
    environment/serial resolution).  Accepts a spec string too."""
    global _default_backend
    if isinstance(backend, (str, BackendSpec)):
        backend = build_backend(backend)
    _default_backend = backend


def _backend_from_env() -> Optional[Backend]:
    """Backend selected by ``$REPRO_BACKEND``.

    The built instance is memoised on the **parsed**
    :class:`BackendSpec` (plus the registry generation and the
    auxiliary env vars every backend may read), so any change visible
    in the spec — including URI query options of registry-registered
    backends — invalidates the cache.
    """
    global _env_backend, _env_backend_key
    text = os.environ.get(BACKEND_ENV)
    if not text:
        return None
    spec = BackendSpec.parse(text)
    key: Tuple[Any, ...] = (
        spec,
        _registry_generation,
        tuple(
            os.environ.get(var, "")
            for var in (
                WORKERS_ENV,
                FAULT_PLAN_ENV,
                CHAOS_INNER_ENV,
                STEP_DEADLINE_ENV,
                MAX_RETRIES_ENV,
            )
        ),
    )
    if _env_backend is None or _env_backend_key != key:
        _env_backend = build_backend(spec)
        _env_backend_key = key
    return _env_backend


def resolve_backend(
    backend: BackendLike = None, workers: Optional[int] = None
) -> Backend:
    """Normalise a backend argument to a usable instance.

    The single backend-selection entry point (used by ``spmd_run``,
    ``ContactStepDriver``, and the CLI).  Resolution order:

    1. an explicit :class:`Backend` instance — returned as-is
       (``workers`` is ignored; the instance already has its pool),
    2. an explicit spec — a string (``name`` / ``name:count`` /
       ``scheme://host:port?workers=N``) or a parsed
       :class:`BackendSpec` — built via :func:`build_backend`;
       ``workers`` applies when the spec embeds no count,
    3. ``workers`` alone — implies a ``process`` pool of that size,
    4. the default installed with :func:`set_default_backend`,
    5. ``$REPRO_BACKEND`` (with ``$REPRO_WORKERS``),
    6. a fresh :class:`SerialBackend`.
    """
    if isinstance(backend, Backend):
        return backend
    if isinstance(backend, (str, BackendSpec)):
        return build_backend(backend, workers)
    if workers is not None:
        return build_backend("process", workers)
    if _default_backend is not None:
        return _default_backend
    env = _backend_from_env()
    if env is not None:
        return env
    from repro.runtime.backends.serial import SerialBackend

    return SerialBackend()


# ----------------------------------------------------------------------
# built-in registrations (lazy factories: nothing imports eagerly)
# ----------------------------------------------------------------------

register_backend(
    "serial", "repro.runtime.backends.serial:serial_from_spec"
)
register_backend(
    "thread", "repro.runtime.backends.thread:thread_from_spec"
)
register_backend(
    "process", "repro.runtime.backends.process:process_from_spec"
)
register_backend(
    "sentinel", "repro.runtime.backends.sentinel:sentinel_from_spec"
)
register_backend(
    "chaos",
    "repro.runtime.faults:chaos_from_spec",
    spec_schema={"plan": str, "inner": str},
)
register_backend(
    "tcp",
    "repro.runtime.backends.tcp:tcp_from_spec",
    spec_schema={
        "deadline": float,
        "spawn": str,
        "accept_timeout": float,
        "heartbeat": float,
        "retries": int,
    },
)


# ----------------------------------------------------------------------
# adapters
# ----------------------------------------------------------------------


def call_without_arg(fn: Callable[[SpmdContext], Any],
                     ctx: SpmdContext, arg: Any) -> Any:
    """Adapter for legacy one-argument superstep functions.

    Module-level (not a closure) so ``functools.partial`` of it stays
    picklable whenever ``fn`` itself is.
    """
    return fn(ctx)
