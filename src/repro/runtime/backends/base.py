"""Execution-backend core: where SPMD supersteps actually run.

The simulated runtime of :mod:`repro.runtime.comm` accounts the
communication structure of the paper's algorithms but executes every
rank sequentially in one process.  This package makes the rank loop a
pluggable *backend* behind one small session protocol, so the same
superstep functions run

* sequentially in-process (:class:`~repro.runtime.backends.serial.SerialBackend`,
  the reference semantics),
* on a thread pool (:class:`~repro.runtime.backends.thread.ThreadBackend`), or
* on a persistent pool of worker processes with shared-memory array
  transfer (:class:`~repro.runtime.backends.process.ProcessBackend`).

Execution stays bulk-synchronous: a *session* owns ``size`` ranks, and
every :meth:`SpmdSession.step` call runs one superstep function on all
ranks, then plays the barrier — queued sends are routed into the
destination inboxes for the next step.  All merging (return values,
ledger records, queued messages, per-rank span trees) happens in rank
order in the calling process, so results are bit-identical across
backends regardless of scheduling.

Superstep functions receive a :class:`SpmdContext` with

* ``rank`` / ``size`` — who am I, how many of us,
* ``shared`` — the read-only mapping of run-wide inputs the backend
  distributed (NumPy arrays travel zero-copy on the process backend),
* ``state`` — a per-rank dict that persists across the session's steps
  (resident in the owning worker on the process backend),
* ``send`` / ``inbox`` — the mpi4py-style verbs of the simulator,
* ``span`` / ``count`` — per-rank tracing merged back into the session
  tracer (see ``docs/PARALLELISM.md``).
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Callable,
    ContextManager,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    Union,
)
from types import TracebackType

from repro.obs.tracer import (
    NULL_TRACER,
    Number,
    Span,
    Tracer,
    TracerBase,
    ensure_tracer,
)
from repro.runtime.ledger import CommLedger

#: (phase, src, dst, items) — one ledger entry recorded on a rank
LedgerRecord = Tuple[str, int, int, int]
#: (dst, payload) — one queued message (src is the producing rank)
SendRecord = Tuple[int, Any]
#: (src, payload) — one delivered message
Message = Tuple[int, Any]
#: a superstep: ``fn(ctx, arg) -> per-rank result``
StepFn = Callable[["SpmdContext", Any], Any]

#: environment variable selecting the default backend (e.g. ``process``
#: or ``process:4``); read by :func:`resolve_backend`
BACKEND_ENV = "REPRO_BACKEND"
#: environment variable with the default worker count
WORKERS_ENV = "REPRO_WORKERS"
#: fault plan injected by the ``chaos`` backend (see
#: :mod:`repro.runtime.faults` for the grammar)
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
#: execution backend the ``chaos`` backend wraps (default ``process``)
CHAOS_INNER_ENV = "REPRO_CHAOS_INNER"
#: per-superstep deadline (seconds) for the supervised process backend
STEP_DEADLINE_ENV = "REPRO_STEP_DEADLINE"
#: per-superstep retry budget for the supervised process backend
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"

BACKEND_NAMES = ("serial", "thread", "process", "sentinel", "chaos")


class BackendError(RuntimeError):
    """An execution backend failed (worker crash, protocol misuse)."""


class SpmdContext:
    """Per-rank execution context handed to superstep functions."""

    __slots__ = (
        "rank",
        "size",
        "shared",
        "state",
        "tracer",
        "_inbox",
        "_sends",
        "_records",
    )

    def __init__(
        self,
        rank: int,
        size: int,
        shared: Mapping[str, Any],
        state: Dict[str, Any],
        inbox: List[Message],
        tracer: TracerBase,
    ) -> None:
        self.rank = rank
        self.size = size
        self.shared = shared
        self.state = state
        self.tracer = tracer
        self._inbox = inbox
        self._sends: List[SendRecord] = []
        self._records: List[LedgerRecord] = []

    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any, phase: str, items: int) -> None:
        """Queue a message for barrier delivery (``items`` is the
        logical item count recorded in the ledger)."""
        if not 0 <= dst < self.size:
            raise ValueError(f"rank {dst} out of range [0, {self.size})")
        if items < 0:
            raise ValueError("items must be >= 0")
        self._records.append((phase, self.rank, dst, items))
        self._sends.append((dst, payload))

    def inbox(self) -> List[Message]:
        """Messages delivered to this rank (consumed on read)."""
        msgs = self._inbox
        self._inbox = []
        return msgs

    # ------------------------------------------------------------------
    def span(self, name: str) -> ContextManager[Optional[Span]]:
        """Open (or re-enter) a per-rank trace span."""
        return self.tracer.span(name)

    def count(self, name: str, value: Number = 1) -> None:
        """Add into a counter of the innermost open per-rank span."""
        self.tracer.count(name, value)


class RankOutcome:
    """Everything one rank's superstep produced (transported back to
    the session for the deterministic rank-ordered merge)."""

    __slots__ = ("value", "sends", "records", "spans")

    def __init__(
        self,
        value: Any,
        sends: List[SendRecord],
        records: List[LedgerRecord],
        spans: Optional[Span],
    ) -> None:
        self.value = value
        self.sends = sends
        self.records = records
        self.spans = spans


def run_rank_step(
    fn: StepFn,
    arg: Any,
    rank: int,
    size: int,
    shared: Mapping[str, Any],
    state: Dict[str, Any],
    inbox: List[Message],
    trace: bool,
) -> RankOutcome:
    """Execute one rank's share of a superstep (backend-agnostic)."""
    tracer: TracerBase = Tracer("rank") if trace else NULL_TRACER
    ctx = SpmdContext(rank, size, shared, state, inbox, tracer)
    value = fn(ctx, arg)
    spans: Optional[Span] = None
    if isinstance(tracer, Tracer) and tracer.root.children:
        spans = tracer.finish()
    return RankOutcome(value, ctx._sends, ctx._records, spans)


def accumulate_span(dst: Span, src: Span) -> None:
    """Merge ``src``'s totals/counters/children into ``dst`` (the
    accumulating semantics of re-entering a span name)."""
    dst.n_calls += src.n_calls
    dst.total_s += src.total_s
    for key, value in src.counters.items():
        dst.count(key, value)
    for child in src.children.values():
        accumulate_span(dst.child(child.name), child)


class SpmdSession:
    """One bulk-synchronous run: ``size`` ranks stepping in lockstep.

    Subclasses implement :meth:`_run_step` (and may override the
    lifecycle hooks).  The base class owns everything that must be
    deterministic: message routing, ledger replay, and span merging,
    all performed in rank order in the calling process.
    """

    def __init__(
        self,
        size: int,
        ledger: Optional[CommLedger],
        tracer: Optional[TracerBase],
    ) -> None:
        if size < 1:
            raise ValueError(
                f"SPMD session size must be >= 1, got {size}"
            )
        self.size = size
        self.ledger = ledger if ledger is not None else CommLedger()
        self.tracer = ensure_tracer(tracer)
        self._inboxes: List[List[Message]] = [[] for _ in range(size)]
        self._closed = False

    # -- subclass interface --------------------------------------------
    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        raise NotImplementedError

    def _close(self) -> None:
        """Release backend resources (hook; base is a no-op)."""

    # -- rollback hooks (used by the chaos harness) --------------------
    def _state_snapshot(self) -> Any:
        """Snapshot per-rank state so a failed step can be retried.

        Sessions that cannot roll back return ``None`` (the default);
        :meth:`_state_restore` then refuses the retry.
        """
        return None

    def _state_restore(self, snapshot: Any) -> None:
        """Restore a snapshot taken by :meth:`_state_snapshot`."""
        raise BackendError(
            f"{type(self).__name__} cannot roll back per-rank state"
        )

    # ------------------------------------------------------------------
    def step(self, fn: StepFn, arg: Any = None) -> List[Any]:
        """Run ``fn(ctx, arg)`` on every rank, then play the barrier.

        Returns the per-rank results in rank order.  Messages queued
        with ``ctx.send`` become readable from ``ctx.inbox()`` in the
        *next* step, exactly like
        :meth:`repro.runtime.comm.SimComm.barrier`.
        """
        if self._closed:
            raise BackendError("session is closed")
        inboxes = self._inboxes
        self._inboxes = [[] for _ in range(self.size)]
        outcomes = self._run_step(fn, arg, inboxes)
        return self._merge(outcomes)

    def _merge(self, outcomes: List[RankOutcome]) -> List[Any]:
        """Rank-ordered merge: ledger replay, message routing, spans."""
        if len(outcomes) != self.size:
            raise BackendError(
                f"backend returned {len(outcomes)} rank outcomes for a "
                f"{self.size}-rank session"
            )
        current: Optional[Span] = getattr(self.tracer, "current", None)
        values: List[Any] = []
        for rank, out in enumerate(outcomes):
            for phase, src, dst, items in out.records:
                self.ledger.record(phase, src, dst, items)
            for dst, payload in out.sends:
                if dst != rank:  # self-sends drop at the barrier
                    self._inboxes[dst].append((rank, payload))
            if out.spans is not None and current is not None:
                for child in out.spans.children.values():
                    accumulate_span(current.child(child.name), child)
            values.append(out.value)
        return values

    # ------------------------------------------------------------------
    def account(self, phase: str, src: int, dst: int, items: int) -> None:
        """Record coordinator-side traffic directly in the ledger (for
        protocol steps whose data never leaves the calling process)."""
        for rank in (src, dst):
            if not 0 <= rank < self.size:
                raise ValueError(
                    f"rank {rank} out of range [0, {self.size})"
                )
        self.ledger.record(phase, src, dst, items)

    def close(self) -> None:
        """End the session and release per-rank state."""
        if not self._closed:
            self._closed = True
            self._close()

    def __enter__(self) -> "SpmdSession":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class Backend:
    """Execution-backend interface.

    A backend is a (possibly pooled) place to run SPMD sessions; it is
    cheap to keep around and safe to reuse across many sessions — the
    process backend keeps its worker pool alive between sessions so
    repeated runs (e.g. one contact search per driver step) amortise
    the startup cost.
    """

    #: short identifier (``serial`` / ``thread`` / ``process`` /
    #: ``sentinel`` / ``chaos``)
    name: str = "base"

    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        """Start a ``size``-rank bulk-synchronous session."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (idempotent; base is a no-op)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# default-backend resolution
# ----------------------------------------------------------------------

BackendSpec = Union[None, str, Backend]

_default_backend: Optional[Backend] = None
_env_backend: Optional[Backend] = None
_env_backend_key: Optional[Tuple[str, ...]] = None


def _parse_workers(text: str, source: str) -> int:
    try:
        workers = int(text)
    except ValueError:
        raise ValueError(
            f"invalid worker count {text!r} in {source}"
        ) from None
    if workers < 1:
        raise ValueError(
            f"worker count must be >= 1, got {workers} in {source}"
        )
    return workers


def default_workers() -> int:
    """Worker count used when none is requested: ``REPRO_WORKERS`` if
    set, else the machine's CPU count (at least 1)."""
    env = os.environ.get(WORKERS_ENV)
    if env:
        return _parse_workers(env, f"${WORKERS_ENV}")
    return max(1, os.cpu_count() or 1)


def make_backend(
    spec: Union[str, Backend], workers: Optional[int] = None
) -> Backend:
    """Build a backend from ``name`` or ``name:workers`` text.

    ``workers`` (when given) overrides any count embedded in the spec.
    An already-constructed :class:`Backend` instance passes through
    untouched (``workers`` is ignored — the instance already has its
    pool), so call sites that resolve a spec once and hand the pooled
    instance around (the service engine runs every job on one resolved
    backend) can feed it back through any resolution path without
    re-triggering precedence or building a second pool.
    """
    if isinstance(spec, Backend):
        return spec
    name, _, count = spec.partition(":")
    name = name.strip().lower()
    if count:
        workers = _parse_workers(count, f"backend spec {spec!r}")
    if workers is not None and workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    if name == "serial":
        from repro.runtime.backends.serial import SerialBackend

        return SerialBackend()
    if name == "thread":
        from repro.runtime.backends.thread import ThreadBackend

        return ThreadBackend(workers=workers)
    if name == "process":
        from repro.runtime.backends.process import ProcessBackend

        return ProcessBackend(workers=workers)
    if name == "sentinel":
        from repro.runtime.backends.sentinel import SentinelBackend

        return SentinelBackend(workers=workers)
    if name == "chaos":
        from repro.runtime.faults import ChaosBackend

        return ChaosBackend(workers=workers)
    raise ValueError(
        f"unknown backend {spec!r}; expected one of {BACKEND_NAMES}"
    )


def set_default_backend(backend: Union[None, str, Backend]) -> None:
    """Install the process-wide default backend (``None`` resets to the
    environment/serial resolution).  Accepts a spec string too."""
    global _default_backend
    if isinstance(backend, str):
        backend = make_backend(backend)
    _default_backend = backend


def _backend_from_env() -> Optional[Backend]:
    """Backend selected by ``$REPRO_BACKEND`` (cached per env value)."""
    global _env_backend, _env_backend_key
    spec = os.environ.get(BACKEND_ENV)
    if not spec:
        return None
    key = tuple(
        os.environ.get(var, "")
        for var in (
            BACKEND_ENV,
            WORKERS_ENV,
            FAULT_PLAN_ENV,
            CHAOS_INNER_ENV,
            STEP_DEADLINE_ENV,
            MAX_RETRIES_ENV,
        )
    )
    if _env_backend is None or _env_backend_key != key:
        _env_backend = make_backend(spec)
        _env_backend_key = key
    return _env_backend


def resolve_backend(
    backend: BackendSpec = None, workers: Optional[int] = None
) -> Backend:
    """Normalise a backend argument to a usable instance.

    The single backend-selection entry point (used by ``spmd_run``,
    ``ContactStepDriver``, and the CLI).  Resolution order:

    1. an explicit :class:`Backend` instance — returned as-is
       (``workers`` is ignored; the instance already has its pool),
    2. an explicit spec string (``name`` / ``name:count``) — built via
       :func:`make_backend`; ``workers`` applies when the spec embeds
       no count,
    3. ``workers`` alone — implies a ``process`` pool of that size,
    4. the default installed with :func:`set_default_backend`,
    5. ``$REPRO_BACKEND`` (with ``$REPRO_WORKERS``),
    6. a fresh :class:`SerialBackend`.
    """
    if isinstance(backend, Backend):
        return backend
    if isinstance(backend, str):
        return make_backend(backend, workers)
    if workers is not None:
        return make_backend("process", workers)
    if _default_backend is not None:
        return _default_backend
    env = _backend_from_env()
    if env is not None:
        return env
    from repro.runtime.backends.serial import SerialBackend

    return SerialBackend()


# ----------------------------------------------------------------------
# adapters
# ----------------------------------------------------------------------


def call_without_arg(fn: Callable[[SpmdContext], Any],
                     ctx: SpmdContext, arg: Any) -> Any:
    """Adapter for legacy one-argument superstep functions.

    Module-level (not a closure) so ``functools.partial`` of it stays
    picklable whenever ``fn`` itself is.
    """
    return fn(ctx)
