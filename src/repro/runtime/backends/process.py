"""Process-pool backend: real parallel ranks with shared-memory arrays.

The backend owns a persistent pool of worker processes (created lazily,
reused across sessions so per-step runs amortise startup).  A session
distributes its ``shared`` mapping once: NumPy arrays are placed in
:mod:`multiprocessing.shared_memory` segments and attached zero-copy in
every worker; everything else rides along pickled.  Across sessions
with the same array layout (the driver's step loop), the backend
reuses the previous session's segment **plan** — values are copied
into the existing segments, names stay stable, and workers re-attach
from a local cache instead of mmap-ing anew (:class:`_SharedPlan`).  Each superstep then
ships only the function reference, the small ``arg``, and the ranks'
pending inbox messages over the worker pipes (length-prefixed, chunked
pickle frames), and ships back per-rank results, queued sends, ledger
records, and span trees.

Determinism: workers never talk to each other — all routing and ledger
replay happens in the parent in rank order
(:meth:`repro.runtime.backends.base.SpmdSession._merge`), so results
are bit-identical to :class:`~repro.runtime.backends.serial.SerialBackend`.

Superstep functions must be picklable (module-level ``def``s).  A
session whose *first* superstep is not picklable falls back to
in-process serial execution with a :class:`RuntimeWarning` instead of
failing — closures keep working everywhere, they just never leave the
process.

Supervision: every superstep dispatch runs under a
:class:`SupervisorConfig` policy — an optional per-step deadline, a
worker heartbeat timeout, and a bounded retry budget with exponential
backoff.  When a worker dies (or blows the deadline) mid-step, the
session kills and respawns the lost workers, resets the survivors, and
deterministically *replays* the session's successful step history into
the fresh pool before retrying the failed step, so recovery is
invisible in the results.  When the retry budget is exhausted the
session degrades to in-process serial execution (``RuntimeWarning``;
ledger accounting preserved) — or raises :class:`BackendError` when
``degrade`` is off.  See ``docs/FAULT_TOLERANCE.md``.
"""

from __future__ import annotations

import atexit
import copy
import itertools
import os
import pickle
import time
import traceback
import warnings
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.obs.tracer import Span, TracerBase
from repro.runtime.backends.base import (
    MAX_RETRIES_ENV,
    STEP_DEADLINE_ENV,
    Backend,
    BackendError,
    BackendSpec,
    Message,
    RankOutcome,
    SpmdSession,
    StepFn,
    default_workers,
    run_rank_step,
)
from repro.runtime.backends.wire import pipe_recv, pipe_send
from repro.runtime.ledger import CommLedger

#: pipe frames are sent in chunks of this many bytes
CHUNK_BYTES = 1 << 24

#: (key, shm segment name, dtype str, shape) describing one shared array
ArraySpec = Tuple[str, str, str, Tuple[int, ...]]


# ----------------------------------------------------------------------
# supervision policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy for the process backend's worker pool.

    ``step_deadline_s``
        Wall-clock budget for one superstep dispatch; a worker that has
        not replied when it expires is treated as hung and respawned.
        ``None`` (the default) waits forever.
    ``heartbeat_timeout_s``
        How long health checks and survivor resets wait for a reply
        before declaring a worker unresponsive.
    ``max_retries``
        How many times a failed superstep is retried (with the lost
        workers respawned and the session history replayed) before the
        session gives up.
    ``backoff_base_s`` / ``backoff_factor``
        Exponential backoff between retries: the first retry sleeps
        ``backoff_base_s``, each further retry multiplies the delay.
    ``shutdown_grace_s`` / ``kill_grace_s``
        Shutdown escalation budget: graceful join, then ``terminate``
        with another ``shutdown_grace_s`` join, then ``kill``.
    ``degrade``
        After the retry budget is exhausted: ``True`` degrades the
        session to in-process serial execution (``RuntimeWarning``,
        ledger accounting preserved); ``False`` raises
        :class:`BackendError`.
    """

    step_deadline_s: Optional[float] = None
    heartbeat_timeout_s: float = 2.0
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    shutdown_grace_s: float = 5.0
    kill_grace_s: float = 1.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.step_deadline_s is not None and self.step_deadline_s <= 0:
            raise ValueError("step_deadline_s must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("invalid backoff configuration")

    @classmethod
    def from_env(cls) -> "SupervisorConfig":
        """Policy from ``$REPRO_STEP_DEADLINE`` / ``$REPRO_MAX_RETRIES``
        (unset variables keep the defaults)."""
        kwargs: Dict[str, Any] = {}
        deadline = os.environ.get(STEP_DEADLINE_ENV)
        if deadline:
            try:
                value = float(deadline)
            except ValueError:
                raise ValueError(
                    f"invalid ${STEP_DEADLINE_ENV}={deadline!r}; "
                    "expected seconds as a float"
                ) from None
            kwargs["step_deadline_s"] = value if value > 0 else None
        retries = os.environ.get(MAX_RETRIES_ENV)
        if retries:
            try:
                kwargs["max_retries"] = max(0, int(retries))
            except ValueError:
                raise ValueError(
                    f"invalid ${MAX_RETRIES_ENV}={retries!r}; "
                    "expected an integer"
                ) from None
        return cls(**kwargs)


def _disarm_step(fn: StepFn) -> StepFn:
    """Strip a one-shot fault wrapper (the chaos harness's
    ``ChaosStep``) so retries and history replays run the plain
    superstep — injected faults fire on the first attempt only."""
    disarm = getattr(fn, "disarm", None)
    if callable(disarm):
        return disarm()  # type: ignore[no-any-return]
    return fn


class _WorkerLoss(Exception):
    """Internal: one dispatch lost workers (died or blew the deadline)."""

    def __init__(
        self, dead: List["_WorkerHandle"], hung: List["_WorkerHandle"]
    ) -> None:
        self.dead = dead
        self.hung = hung
        names = [w.proc.name for w in dead + hung]
        super().__init__(f"lost worker(s): {', '.join(names)}")


# ----------------------------------------------------------------------
# chunked pipe transport (``repro.wire/1`` framing)
# ----------------------------------------------------------------------


def _send_msg(conn: Connection, obj: Any) -> int:
    """Send ``obj`` as one ``repro.wire/1`` message: NumPy array
    payloads travel as raw out-of-band frames instead of passing
    through the pickler as opaque blobs.  Returns bytes sent."""
    return pipe_send(conn, obj, CHUNK_BYTES)


def _recv_msg(conn: Connection) -> Any:
    """Receive one wire message (:func:`_recv_msg_counted` also
    reports the byte count)."""
    obj, _nbytes = pipe_recv(conn)
    return obj


def _recv_msg_counted(conn: Connection) -> Tuple[Any, int]:
    """Receive one wire message, returning ``(object, bytes_read)``."""
    return pipe_recv(conn)


# ----------------------------------------------------------------------
# shared-memory array distribution
# ----------------------------------------------------------------------


def _pack_shared(
    shared: Mapping[str, Any],
) -> Tuple[Dict[str, Any], List[ArraySpec], List[SharedMemory]]:
    """Split ``shared`` into inline values and shared-memory arrays.

    Returns ``(inline, specs, segments)``; the caller owns the segments
    and must close+unlink them when the session ends.  If the platform
    refuses shared memory the arrays degrade to inline pickling.
    """
    inline: Dict[str, Any] = {}
    specs: List[ArraySpec] = []
    segments: List[SharedMemory] = []
    for key, value in shared.items():
        if isinstance(value, np.ndarray) and value.nbytes > 0:
            try:
                seg = SharedMemory(create=True, size=value.nbytes)
            except OSError:
                inline[key] = value
                continue
            view: np.ndarray = np.ndarray(
                value.shape, dtype=value.dtype, buffer=seg.buf
            )
            view[...] = value
            specs.append((key, seg.name, value.dtype.str, value.shape))
            segments.append(seg)
        else:
            inline[key] = value
    return inline, specs, segments


class _SharedPlan:
    """A reusable shared-memory layout (ROADMAP item 1: amortise the
    process backend's per-step transfer setup).

    The driver opens one SPMD session per step, and step after step the
    ``shared`` mapping has the same arrays with the same dtypes and
    shapes — only the values change.  Instead of creating (and later
    unlinking) fresh segments per session, the backend caches the last
    session's plan: when the next session's layout matches, the new
    values are copied into the **existing** segments and the workers
    re-attach by the same names (served from their attachment cache, so
    re-opening is a dict lookup, not an mmap).  ``in_use`` guards
    concurrent sessions — a second live session falls back to the
    uncached path.
    """

    __slots__ = ("layout", "specs", "segments", "views", "in_use")

    def __init__(
        self,
        layout: Tuple[Tuple[str, str, Tuple[int, ...]], ...],
        specs: List[ArraySpec],
        segments: List[SharedMemory],
        views: List[np.ndarray],
    ) -> None:
        self.layout = layout
        self.specs = specs
        self.segments = segments
        self.views = views
        self.in_use = False

    def unlink(self) -> None:
        self.views = []
        for seg in self.segments:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self.segments = []


def _shared_layout(
    shared: Mapping[str, Any],
) -> Tuple[
    Dict[str, Any],
    List[Tuple[str, np.ndarray]],
    Tuple[Tuple[str, str, Tuple[int, ...]], ...],
]:
    """Split ``shared`` into inline values and segment-worthy arrays,
    with the arrays' reuse-comparable layout (key, dtype, shape)."""
    inline: Dict[str, Any] = {}
    arrays: List[Tuple[str, np.ndarray]] = []
    for key, value in shared.items():
        if isinstance(value, np.ndarray) and value.nbytes > 0:
            arrays.append((key, value))
        else:
            inline[key] = value
    layout = tuple(
        (key, value.dtype.str, value.shape) for key, value in arrays
    )
    return inline, arrays, layout


def _tracker_inherited() -> bool:
    """Whether this (forked) process shares the parent's resource
    tracker.  Attach-side registrations are then idempotent no-ops in
    the parent's tracker and must NOT be unregistered — that would
    delete the parent's own bookkeeping and make its ``unlink`` noisy.
    """
    try:  # pragma: no cover - tracker internals differ by version
        from multiprocessing import resource_tracker

        fd = getattr(resource_tracker._resource_tracker, "_fd", None)  # type: ignore[attr-defined]
        return fd is not None
    except Exception:
        return False


#: worker-side attachment-cache capacity (distinct segment names; the
#: backend's plan cache is single-slot, so live names stay far below
#: this — eviction only ever hits retired plans)
ATTACH_CACHE_MAX = 64


def _attach_shared(
    inline: Dict[str, Any],
    specs: List[ArraySpec],
    unregister: bool,
    cache: Optional[Dict[str, SharedMemory]] = None,
) -> Tuple[Dict[str, Any], List[SharedMemory]]:
    """Worker-side: rebuild the shared mapping, attaching arrays
    zero-copy from their shared-memory segments (read-only views).

    With ``cache`` (plan-backed sessions), attachments persist across
    sessions keyed by segment name — re-opening a reused plan is a dict
    hit instead of an mmap; stale entries are evicted FIFO.
    """
    shared = dict(inline)
    segments: List[SharedMemory] = []
    for key, name, dtype, shape in specs:
        seg = cache.get(name) if cache is not None else None
        if seg is None:
            seg = SharedMemory(name=name)
            # the parent owns the segment's lifetime; when this process
            # has its own resource tracker (spawn), unregister the
            # attachment so worker exit neither unlinks the segment
            # early nor warns about a "leak" (with an inherited tracker
            # the registration already belongs to the parent and is
            # left alone)
            if unregister:
                try:  # pragma: no cover - tracker internals differ
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
                except Exception:
                    pass
            if cache is not None:
                cache[name] = seg
                while len(cache) > ATTACH_CACHE_MAX:
                    _oldest = next(iter(cache))
                    cache.pop(_oldest).close()
        arr: np.ndarray = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=seg.buf
        )
        arr.flags.writeable = False
        shared[key] = arr
        segments.append(seg)
    return shared, segments


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


class _WorkerSessionState:
    """Everything a worker holds for one open session."""

    __slots__ = ("shared", "segments", "states", "size", "trace", "cached")

    def __init__(
        self,
        shared: Dict[str, Any],
        segments: List[SharedMemory],
        size: int,
        trace: bool,
        cached: bool,
    ) -> None:
        self.shared = shared
        self.segments = segments
        self.states: Dict[int, Dict[str, Any]] = {}
        self.size = size
        self.trace = trace
        self.cached = cached

    def release(self) -> None:
        self.states.clear()
        if not self.cached:
            # cached attachments belong to the worker's attachment
            # cache and outlive the session (plan reuse)
            for seg in self.segments:
                seg.close()
        self.segments = []


def _worker_main(conn: Connection) -> None:
    """Command loop of one pool worker (runs in the child process)."""
    sessions: Dict[int, _WorkerSessionState] = {}
    attach_cache: Dict[str, SharedMemory] = {}
    unregister_shared = not _tracker_inherited()
    while True:
        try:
            msg = _recv_msg(conn)
        except (EOFError, OSError):
            break
        tag = msg[0]
        if tag == "shutdown":
            break
        reply: Tuple[str, Any]
        try:
            if tag == "ping":
                reply = ("ok", "pong")
            elif tag == "open":
                _, sid, size, inline, specs, trace, cached = msg
                shared, segments = _attach_shared(
                    inline,
                    specs,
                    unregister_shared,
                    attach_cache if cached else None,
                )
                sessions[sid] = _WorkerSessionState(
                    shared, segments, size, trace, cached
                )
                reply = ("ok", None)
            elif tag == "replay":
                # deterministic state reconstruction after a respawn:
                # re-execute the session's successful step history for
                # this worker's ranks, discarding the outcomes (they
                # were already merged when the steps first succeeded)
                _, sid, entries = msg
                sess = sessions[sid]
                for fn, arg, tasks in entries:
                    for rank, inbox in tasks:
                        state = sess.states.setdefault(rank, {})
                        run_rank_step(
                            fn, arg, rank, sess.size, sess.shared,
                            state, inbox, False,
                        )
                reply = ("ok", None)
            elif tag == "step":
                _, sid, fn, arg, tasks = msg
                sess = sessions[sid]
                outs = []
                for rank, inbox in tasks:
                    state = sess.states.setdefault(rank, {})
                    out = run_rank_step(
                        fn, arg, rank, sess.size, sess.shared, state,
                        inbox, sess.trace,
                    )
                    outs.append(
                        (
                            rank,
                            out.value,
                            out.sends,
                            out.records,
                            out.spans.to_dict()
                            if out.spans is not None
                            else None,
                        )
                    )
                reply = ("ok", outs)
            elif tag == "close":
                _, sid = msg
                closing = sessions.pop(sid, None)
                if closing is not None:
                    closing.release()
                reply = ("ok", None)
            else:
                reply = ("err", f"unknown command {tag!r}")
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            _send_msg(conn, reply)
        except (BrokenPipeError, OSError):  # parent is gone
            break
    for sess in sessions.values():
        sess.release()
    for seg in attach_cache.values():
        seg.close()
    conn.close()


class _WorkerHandle:
    """Parent-side handle to one pooled worker process."""

    def __init__(
        self,
        ctx: BaseContext,
        index: int,
        sink: Optional["ProcessBackend"] = None,
    ) -> None:
        self.index = index
        self.sink = sink
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc: BaseProcess = ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-spmd-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    def send(self, msg: Any) -> None:
        try:
            nbytes = _send_msg(self.conn, msg)
        except (BrokenPipeError, OSError) as exc:
            raise BackendError(
                f"worker {self.proc.name} is gone "
                f"(exitcode={self.proc.exitcode})"
            ) from exc
        if self.sink is not None:
            self.sink.bytes_sent += nbytes

    def poll(self, timeout: Optional[float]) -> bool:
        """Whether a reply is readable within ``timeout`` seconds
        (a dead worker reads as readable — ``recv`` surfaces it)."""
        try:
            return bool(self.conn.poll(timeout))
        except (EOFError, OSError):
            return True

    def recv(self) -> Tuple[str, Any]:
        try:
            reply, nbytes = _recv_msg_counted(self.conn)
        except (EOFError, OSError) as exc:
            raise BackendError(
                f"worker {self.proc.name} died "
                f"(exitcode={self.proc.exitcode})"
            ) from exc
        if self.sink is not None:
            self.sink.bytes_recv += nbytes
        if not isinstance(reply, tuple) or len(reply) != 2:
            raise BackendError(f"malformed worker reply: {reply!r}")
        return reply

    def ping(self, timeout: float) -> bool:
        """Request/reply heartbeat (only valid between supersteps)."""
        if not self.proc.is_alive():
            return False
        try:
            _send_msg(self.conn, ("ping",))
        except (BrokenPipeError, OSError):
            return False
        if not self.poll(timeout):
            return False
        try:
            tag, payload = self.recv()
        except BackendError:
            return False
        return tag == "ok" and payload == "pong"

    def stop(self, grace: float = 5.0, kill_grace: float = 1.0) -> None:
        """Graceful shutdown, escalating join → terminate → kill."""
        try:
            _send_msg(self.conn, ("shutdown",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=grace)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=grace)
            if self.proc.is_alive():  # pragma: no cover - wedged worker
                self.proc.kill()
                self.proc.join(timeout=kill_grace)
        self.conn.close()

    def destroy(self, grace: float = 1.0, kill_grace: float = 1.0) -> None:
        """Forcible teardown for a dead or hung worker (no shutdown
        handshake — the command loop may never read it)."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=grace)
            if self.proc.is_alive():  # pragma: no cover - wedged worker
                self.proc.kill()
                self.proc.join(timeout=kill_grace)


# ----------------------------------------------------------------------
# session
# ----------------------------------------------------------------------


class ProcessSession(SpmdSession):
    """Session whose ranks execute on the backend's worker pool.

    The session goes *remote* lazily at the first superstep: if that
    step's ``(fn, arg)`` cannot be pickled, the whole session falls
    back to in-process serial execution (with a warning) — per-rank
    state has not left the process yet, so the downgrade is safe.
    """

    def __init__(
        self,
        size: int,
        ledger: Optional[CommLedger],
        tracer: Optional[TracerBase],
        shared: Optional[Mapping[str, Any]],
        backend: "ProcessBackend",
        sid: int,
    ) -> None:
        super().__init__(size, ledger, tracer)
        self._backend = backend
        self._sid = sid
        self._shared_input: Mapping[str, Any] = (
            dict(shared) if shared else {}
        )
        self._trace = bool(getattr(self.tracer, "enabled", False))
        self._mode = "pending"  # -> "remote" | "local" | "failed"
        self._owners: List[Tuple[_WorkerHandle, List[int]]] = []
        self._segments: List[SharedMemory] = []
        self._plan: Optional[_SharedPlan] = None
        self._local_states: List[Dict[str, Any]] = []
        # (disarmed fn, arg, per-rank inbox copies) of every successful
        # step — replayed into respawned workers to rebuild rank state
        self._history: List[
            Tuple[StepFn, Any, List[List[Message]]]
        ] = []
        self._inline: Dict[str, Any] = {}
        self._specs: List[ArraySpec] = []

    # -- local fallback ------------------------------------------------
    def _run_local(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        return [
            run_rank_step(
                fn, arg, rank, self.size, self._shared_input,
                self._local_states[rank], inboxes[rank], self._trace,
            )
            for rank in range(self.size)
        ]

    def _fall_back_local(self, fn: StepFn, reason: BaseException) -> None:
        warnings.warn(
            f"process backend: superstep {getattr(fn, '__qualname__', fn)!r} "
            f"is not picklable ({reason}); the session falls back to "
            "in-process serial execution. Use module-level superstep "
            "functions to run on the worker pool.",
            RuntimeWarning,
            stacklevel=4,
        )
        self._mode = "local"
        self._local_states = [{} for _ in range(self.size)]

    # -- remote path ---------------------------------------------------
    def _map_owners(self) -> None:
        handles = self._backend._ensure_pool()
        used = min(len(handles), self.size)
        self._owners = [
            (
                handles[w],
                [r for r in range(self.size) if r % used == w],
            )
            for w in range(used)
        ]

    def _open_remote(self) -> None:
        self._map_owners()
        inline, specs, plan, segments = (
            self._backend._acquire_shared_plan(self._shared_input)
        )
        self._inline, self._specs = inline, specs
        self._plan = plan
        self._segments = segments
        open_msg = ("open", self._sid, self.size, inline, specs,
                    self._trace, plan is not None)
        for worker, _ranks in self._owners:
            worker.send(open_msg)
        self._collect_acks("open")
        self._mode = "remote"

    def _collect_acks(self, what: str) -> None:
        errors: List[str] = []
        for worker, _ranks in self._owners:
            tag, payload = worker.recv()
            if tag != "ok":
                errors.append(str(payload))
        if errors:
            raise BackendError(
                f"{what} failed on {len(errors)} worker(s):\n"
                + "\n".join(errors)
            )

    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        if self._mode == "failed":
            raise BackendError(
                "session lost its workers and cannot continue"
            )
        if self._mode == "local":
            return self._run_local(fn, arg, inboxes)
        try:
            pickle.dumps((fn, arg), protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            if self._mode == "pending":
                self._fall_back_local(fn, exc)
                return self._run_local(fn, arg, inboxes)
            raise BackendError(
                "superstep function/argument is not picklable and the "
                "session already has remote per-rank state; use "
                "module-level superstep functions"
            ) from exc
        if self._mode == "pending":
            self._open_remote()
        cfg = self._backend.supervisor
        attempt = 0
        delay = cfg.backoff_base_s
        while True:
            try:
                outcomes = self._dispatch(fn, arg, inboxes)
            except _WorkerLoss as loss:
                attempt += 1
                if attempt > cfg.max_retries:
                    if cfg.degrade:
                        self._degrade(loss)
                        return self._run_local(fn, arg, inboxes)
                    self._abandon_remote(loss)
                    raise BackendError(
                        f"superstep lost "
                        f"{len(loss.dead) + len(loss.hung)} worker(s) "
                        f"({loss}) and the retry budget "
                        f"({cfg.max_retries}) is exhausted"
                    ) from None
                with self.tracer.span("recovery"):
                    self.tracer.count("step_retries", 1)
                    self.tracer.count("worker_deaths", len(loss.dead))
                    self.tracer.count(
                        "deadline_timeouts", len(loss.hung)
                    )
                    self._recover(loss)
                    time.sleep(delay)
                delay *= cfg.backoff_factor
                # injected one-shot faults (chaos harness) fire on the
                # first attempt only — retries run the plain superstep
                fn = _disarm_step(fn)
                continue
            self._history.append(
                (
                    _disarm_step(fn),
                    arg,
                    [list(box) for box in inboxes],
                )
            )
            return outcomes

    def _dispatch(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        """One dispatch attempt: send the step to every owner, collect
        replies under the deadline, classify losses."""
        cfg = self._backend.supervisor
        dead: List[_WorkerHandle] = []
        hung: List[_WorkerHandle] = []
        pending: List[_WorkerHandle] = []
        for worker, ranks in self._owners:
            tasks = [(r, inboxes[r]) for r in ranks]
            try:
                worker.send(("step", self._sid, fn, arg, tasks))
            except BackendError:
                dead.append(worker)
                continue
            pending.append(worker)
        deadline = (
            time.monotonic() + cfg.step_deadline_s
            if cfg.step_deadline_s is not None
            else None
        )
        by_rank: Dict[int, RankOutcome] = {}
        errors: List[str] = []
        for worker in pending:
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
                if not worker.poll(remaining):
                    hung.append(worker)
                    continue
            try:
                tag, payload = worker.recv()
            except BackendError:
                dead.append(worker)
                continue
            if tag != "ok":
                errors.append(str(payload))
                continue
            for rank, value, sends, records, span_dict in payload:
                spans = (
                    Span.from_dict(span_dict)
                    if span_dict is not None
                    else None
                )
                by_rank[rank] = RankOutcome(value, sends, records, spans)
        if dead or hung:
            raise _WorkerLoss(dead, hung)
        if errors:
            # the superstep itself raised — an application bug, not a
            # worker loss; retrying would fail identically
            raise BackendError(
                f"superstep failed on {len(errors)} worker(s):\n"
                + "\n".join(errors)
            )
        return [by_rank[rank] for rank in range(self.size)]

    # -- recovery ------------------------------------------------------
    def _reset_survivor(self, worker: _WorkerHandle) -> bool:
        """Drop the session's state on a surviving worker so the replay
        can rebuild it from scratch; False marks the worker lost too."""
        cfg = self._backend.supervisor
        try:
            worker.send(("close", self._sid))
        except BackendError:
            return False
        if not worker.poll(cfg.heartbeat_timeout_s):
            return False
        try:
            tag, _payload = worker.recv()
        except BackendError:
            return False
        return tag == "ok"

    def _recover(self, loss: _WorkerLoss) -> None:
        """Respawn lost workers and deterministically rebuild the whole
        session (open + history replay) on the refreshed pool."""
        lost: Set[_WorkerHandle] = set(loss.dead) | set(loss.hung)
        for worker, _ranks in self._owners:
            if worker not in lost and not self._reset_survivor(worker):
                lost.add(worker)
        for worker in lost:
            self._backend._respawn(worker)
        self.tracer.count("worker_respawns", len(lost))
        self._map_owners()
        open_msg = ("open", self._sid, self.size, self._inline,
                    self._specs, self._trace, self._plan is not None)
        for worker, _ranks in self._owners:
            worker.send(open_msg)
        self._collect_acks("recovery re-open")
        for worker, ranks in self._owners:
            entries = [
                (
                    hist_fn,
                    hist_arg,
                    [(r, list(hist_inboxes[r])) for r in ranks],
                )
                for hist_fn, hist_arg, hist_inboxes in self._history
            ]
            worker.send(("replay", self._sid, entries))
        self._collect_acks("recovery replay")

    def _rebuild_local_states(self) -> None:
        """In-process replay of the step history (outcomes discarded —
        their ledger/span contributions were merged when the steps
        first succeeded)."""
        self._local_states = [{} for _ in range(self.size)]
        for hist_fn, hist_arg, hist_inboxes in self._history:
            for rank in range(self.size):
                run_rank_step(
                    hist_fn, hist_arg, rank, self.size,
                    self._shared_input, self._local_states[rank],
                    list(hist_inboxes[rank]), False,
                )

    def _teardown_remote(self, loss: _WorkerLoss) -> None:
        """Respawn the lost workers (the pool stays healthy for other
        sessions), reset the survivors, release the shared segments."""
        lost: Set[_WorkerHandle] = set(loss.dead) | set(loss.hung)
        for worker in lost:
            self._backend._respawn(worker)
        for worker, _ranks in self._owners:
            if worker not in lost:
                self._reset_survivor(worker)
        self._release_segments()
        self._owners = []

    def _degrade(self, loss: _WorkerLoss) -> None:
        cfg = self._backend.supervisor
        warnings.warn(
            f"process backend: {len(loss.dead) + len(loss.hung)} "
            f"worker(s) unrecoverable after {cfg.max_retries} "
            "retr(y/ies); the session degrades to in-process serial "
            "execution.",
            RuntimeWarning,
            stacklevel=6,
        )
        with self.tracer.span("recovery"):
            self.tracer.count("worker_deaths", len(loss.dead))
            self.tracer.count("deadline_timeouts", len(loss.hung))
            self.tracer.count("worker_respawns",
                              len(loss.dead) + len(loss.hung))
            self.tracer.count("ranks_degraded", self.size)
            self._teardown_remote(loss)
            self._mode = "local"
            self._rebuild_local_states()

    def _abandon_remote(self, loss: _WorkerLoss) -> None:
        with self.tracer.span("recovery"):
            self.tracer.count("worker_deaths", len(loss.dead))
            self.tracer.count("deadline_timeouts", len(loss.hung))
            self.tracer.count("worker_respawns",
                              len(loss.dead) + len(loss.hung))
            self._teardown_remote(loss)
            self._mode = "failed"

    # -- rollback hooks (chaos harness) --------------------------------
    def _state_snapshot(self) -> Any:
        if self._mode == "local":
            return ("local", copy.deepcopy(self._local_states))
        return (self._mode, None)

    def _state_restore(self, snapshot: Any) -> None:
        kind, payload = snapshot
        if self._mode == "local":
            if kind == "local":
                self._local_states = payload
            else:
                # the session went local mid-attempt (degrade or pickle
                # fallback); rebuild rank state from the step history
                self._rebuild_local_states()
            return
        if self._mode == "failed":
            raise BackendError(
                "session lost its workers and cannot roll back"
            )
        # pending/remote: a failed attempt never commits worker state
        # (recovery replays the successful history), nothing to restore

    # ------------------------------------------------------------------
    def _release_segments(self) -> None:
        if self._plan is not None:
            # plan-backed segments stay alive (and keep their names)
            # for the next session with the same layout
            self._backend._release_shared_plan(self._plan)
            self._plan = None
        for seg in self._segments:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._segments = []

    def _close(self) -> None:
        try:
            if self._mode == "remote":
                alive = []
                for worker, _ranks in self._owners:
                    try:
                        worker.send(("close", self._sid))
                        alive.append(worker)
                    except BackendError:
                        pass
                for worker in alive:
                    try:
                        worker.recv()
                    except BackendError:
                        pass
        finally:
            self._release_segments()
            self._local_states = []
            self._owners = []
            self._history = []


# ----------------------------------------------------------------------
# backend
# ----------------------------------------------------------------------


class ProcessBackend(Backend):
    """Persistent ``multiprocessing`` worker pool backend (supervised:
    see :class:`SupervisorConfig`)."""

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        supervisor: Optional[SupervisorConfig] = None,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.supervisor = (
            supervisor if supervisor is not None
            else SupervisorConfig.from_env()
        )
        if start_method is None:
            # fork (where available) keeps pool startup in the low
            # milliseconds, which is what lets per-step sessions win
            try:
                get_context("fork")
                start_method = "fork"
            except ValueError:  # pragma: no cover - non-POSIX
                start_method = None
        self._ctx = get_context(start_method)
        self._pool: Optional[List[_WorkerHandle]] = None
        self._sids = itertools.count()
        self._atexit_registered = False
        self._shared_plan: Optional[_SharedPlan] = None
        #: shared-memory segments created / reused across sessions
        #: (plan reuse — ROADMAP item 1 transfer-cost attack)
        self.shm_creates = 0
        self.shm_reuses = 0
        #: parent-side ``repro.wire/1`` pipe traffic
        self.bytes_sent = 0
        self.bytes_recv = 0

    def _ensure_pool(self) -> List[_WorkerHandle]:
        if self._pool is None:
            self._pool = [
                _WorkerHandle(self._ctx, i, self)
                for i in range(self.workers)
            ]
            if not self._atexit_registered:
                atexit.register(self.close)
                self._atexit_registered = True
        return self._pool

    def _respawn(self, handle: _WorkerHandle) -> _WorkerHandle:
        """Replace a dead/hung worker with a fresh one at the same pool
        slot (the old process is terminated, escalating to kill)."""
        cfg = self.supervisor
        handle.destroy(cfg.shutdown_grace_s, cfg.kill_grace_s)
        fresh = _WorkerHandle(self._ctx, handle.index, self)
        pool = self._ensure_pool()
        for slot, existing in enumerate(pool):
            if existing is handle:
                pool[slot] = fresh
                break
        else:  # pragma: no cover - handle already rotated out
            pool[handle.index % len(pool)] = fresh
        return fresh

    # -- shared-memory plan cache --------------------------------------
    def _acquire_shared_plan(
        self, shared: Mapping[str, Any]
    ) -> Tuple[
        Dict[str, Any],
        List[ArraySpec],
        Optional["_SharedPlan"],
        List[SharedMemory],
    ]:
        """Shared-memory distribution for one session, reusing the
        cached plan when the array layout is unchanged.

        Returns ``(inline, specs, plan, owned_segments)``: exactly one
        of ``plan`` (backend-cached, stable segment names) and
        ``owned_segments`` (session-owned legacy path, unlinked at
        session close) carries the arrays.
        """
        inline, arrays, layout = _shared_layout(shared)
        plan = self._shared_plan
        if (
            plan is not None
            and not plan.in_use
            and plan.layout == layout
        ):
            for view, (_key, value) in zip(plan.views, arrays):
                view[...] = value
            plan.in_use = True
            self.shm_reuses += len(plan.segments)
            return inline, list(plan.specs), plan, []
        if not arrays:
            return inline, [], None, []
        specs: List[ArraySpec] = []
        segments: List[SharedMemory] = []
        views: List[np.ndarray] = []
        for key, value in arrays:
            try:
                seg = SharedMemory(create=True, size=value.nbytes)
            except OSError:
                # platform refuses shared memory: retire the partial
                # plan and degrade to the uncached path, which inlines
                # whatever cannot get a segment
                for built in segments:
                    built.close()
                    built.unlink()
                legacy = _pack_shared(shared)
                self.shm_creates += len(legacy[2])
                return legacy[0], legacy[1], None, legacy[2]
            view: np.ndarray = np.ndarray(
                value.shape, dtype=value.dtype, buffer=seg.buf
            )
            view[...] = value
            specs.append((key, seg.name, value.dtype.str, value.shape))
            segments.append(seg)
            views.append(view)
        self.shm_creates += len(segments)
        if plan is not None and plan.in_use:
            # another live session holds the cached plan: hand these
            # segments to the session to own (no caching)
            return inline, specs, None, segments
        if plan is not None:
            plan.unlink()  # layout changed: retire the stale plan
        fresh = _SharedPlan(layout, specs, segments, views)
        fresh.in_use = True
        self._shared_plan = fresh
        return inline, list(specs), fresh, []

    def _release_shared_plan(self, plan: "_SharedPlan") -> None:
        """A session finished with ``plan``: keep it cached for the
        next matching session (unlink only if it was displaced)."""
        if plan is self._shared_plan:
            plan.in_use = False
        else:  # pragma: no cover - displaced while in use
            plan.unlink()

    def health_check(
        self, timeout: Optional[float] = None
    ) -> Dict[str, bool]:
        """Heartbeat every pooled worker (request/reply ping; only
        valid between supersteps).  Returns ``{worker name: alive}``."""
        if timeout is None:
            timeout = self.supervisor.heartbeat_timeout_s
        return {
            worker.proc.name: worker.ping(timeout)
            for worker in self._ensure_pool()
        }

    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        return ProcessSession(
            size, ledger, tracer, shared, self, next(self._sids)
        )

    def close(self) -> None:
        if self._shared_plan is not None:
            self._shared_plan.unlink()
            self._shared_plan = None
        if self._pool is not None:
            cfg = self.supervisor
            for worker in self._pool:
                worker.stop(cfg.shutdown_grace_s, cfg.kill_grace_s)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(workers={self.workers})"


def process_from_spec(spec: BackendSpec) -> ProcessBackend:
    """Registry factory for ``process``."""
    return ProcessBackend(workers=spec.workers)
