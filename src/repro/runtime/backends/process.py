"""Process-pool backend: real parallel ranks with shared-memory arrays.

The backend owns a persistent pool of worker processes (created lazily,
reused across sessions so per-step runs amortise startup).  A session
distributes its ``shared`` mapping once: NumPy arrays are placed in
:mod:`multiprocessing.shared_memory` segments and attached zero-copy in
every worker; everything else rides along pickled.  Each superstep then
ships only the function reference, the small ``arg``, and the ranks'
pending inbox messages over the worker pipes (length-prefixed, chunked
pickle frames), and ships back per-rank results, queued sends, ledger
records, and span trees.

Determinism: workers never talk to each other — all routing and ledger
replay happens in the parent in rank order
(:meth:`repro.runtime.backends.base.SpmdSession._merge`), so results
are bit-identical to :class:`~repro.runtime.backends.serial.SerialBackend`.

Superstep functions must be picklable (module-level ``def``s).  A
session whose *first* superstep is not picklable falls back to
in-process serial execution with a :class:`RuntimeWarning` instead of
failing — closures keep working everywhere, they just never leave the
process.
"""

from __future__ import annotations

import atexit
import itertools
import pickle
import struct
import traceback
import warnings
from multiprocessing import get_context
from multiprocessing.connection import Connection
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs.tracer import Span, TracerBase
from repro.runtime.backends.base import (
    Backend,
    BackendError,
    Message,
    RankOutcome,
    SpmdSession,
    StepFn,
    default_workers,
    run_rank_step,
)
from repro.runtime.ledger import CommLedger

#: pipe frames are sent in chunks of this many bytes
CHUNK_BYTES = 1 << 24

#: (key, shm segment name, dtype str, shape) describing one shared array
ArraySpec = Tuple[str, str, str, Tuple[int, ...]]


# ----------------------------------------------------------------------
# chunked pipe transport
# ----------------------------------------------------------------------


def _send_msg(conn: Connection, obj: Any) -> None:
    """Pickle ``obj`` and send it as a length-prefixed chunked frame."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    conn.send_bytes(struct.pack("<Q", len(blob)))
    for offset in range(0, len(blob), CHUNK_BYTES):
        conn.send_bytes(blob[offset:offset + CHUNK_BYTES])


def _recv_msg(conn: Connection) -> Any:
    """Receive one chunked frame and unpickle it."""
    header = conn.recv_bytes()
    (total,) = struct.unpack("<Q", header)
    parts: List[bytes] = []
    received = 0
    while received < total:
        chunk = conn.recv_bytes()
        parts.append(chunk)
        received += len(chunk)
    return pickle.loads(b"".join(parts))


# ----------------------------------------------------------------------
# shared-memory array distribution
# ----------------------------------------------------------------------


def _pack_shared(
    shared: Mapping[str, Any],
) -> Tuple[Dict[str, Any], List[ArraySpec], List[SharedMemory]]:
    """Split ``shared`` into inline values and shared-memory arrays.

    Returns ``(inline, specs, segments)``; the caller owns the segments
    and must close+unlink them when the session ends.  If the platform
    refuses shared memory the arrays degrade to inline pickling.
    """
    inline: Dict[str, Any] = {}
    specs: List[ArraySpec] = []
    segments: List[SharedMemory] = []
    for key, value in shared.items():
        if isinstance(value, np.ndarray) and value.nbytes > 0:
            try:
                seg = SharedMemory(create=True, size=value.nbytes)
            except OSError:
                inline[key] = value
                continue
            view: np.ndarray = np.ndarray(
                value.shape, dtype=value.dtype, buffer=seg.buf
            )
            view[...] = value
            specs.append((key, seg.name, value.dtype.str, value.shape))
            segments.append(seg)
        else:
            inline[key] = value
    return inline, specs, segments


def _tracker_inherited() -> bool:
    """Whether this (forked) process shares the parent's resource
    tracker.  Attach-side registrations are then idempotent no-ops in
    the parent's tracker and must NOT be unregistered — that would
    delete the parent's own bookkeeping and make its ``unlink`` noisy.
    """
    try:  # pragma: no cover - tracker internals differ by version
        from multiprocessing import resource_tracker

        fd = getattr(resource_tracker._resource_tracker, "_fd", None)  # type: ignore[attr-defined]
        return fd is not None
    except Exception:
        return False


def _attach_shared(
    inline: Dict[str, Any], specs: List[ArraySpec], unregister: bool
) -> Tuple[Dict[str, Any], List[SharedMemory]]:
    """Worker-side: rebuild the shared mapping, attaching arrays
    zero-copy from their shared-memory segments (read-only views)."""
    shared = dict(inline)
    segments: List[SharedMemory] = []
    for key, name, dtype, shape in specs:
        seg = SharedMemory(name=name)
        # the parent owns the segment's lifetime; when this process has
        # its own resource tracker (spawn), unregister the attachment so
        # worker exit neither unlinks the segment early nor warns about
        # a "leak" (with an inherited tracker the registration already
        # belongs to the parent and is left alone)
        if unregister:
            try:  # pragma: no cover - tracker internals differ by version
                from multiprocessing import resource_tracker

                resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
        arr: np.ndarray = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=seg.buf
        )
        arr.flags.writeable = False
        shared[key] = arr
        segments.append(seg)
    return shared, segments


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


class _WorkerSessionState:
    """Everything a worker holds for one open session."""

    __slots__ = ("shared", "segments", "states", "size", "trace")

    def __init__(
        self,
        shared: Dict[str, Any],
        segments: List[SharedMemory],
        size: int,
        trace: bool,
    ) -> None:
        self.shared = shared
        self.segments = segments
        self.states: Dict[int, Dict[str, Any]] = {}
        self.size = size
        self.trace = trace

    def release(self) -> None:
        self.states.clear()
        for seg in self.segments:
            seg.close()
        self.segments = []


def _worker_main(conn: Connection) -> None:
    """Command loop of one pool worker (runs in the child process)."""
    sessions: Dict[int, _WorkerSessionState] = {}
    unregister_shared = not _tracker_inherited()
    while True:
        try:
            msg = _recv_msg(conn)
        except (EOFError, OSError):
            break
        tag = msg[0]
        if tag == "shutdown":
            break
        try:
            if tag == "open":
                _, sid, size, inline, specs, trace = msg
                shared, segments = _attach_shared(
                    inline, specs, unregister_shared
                )
                sessions[sid] = _WorkerSessionState(
                    shared, segments, size, trace
                )
                reply: Tuple[str, Any] = ("ok", None)
            elif tag == "step":
                _, sid, fn, arg, tasks = msg
                sess = sessions[sid]
                outs = []
                for rank, inbox in tasks:
                    state = sess.states.setdefault(rank, {})
                    out = run_rank_step(
                        fn, arg, rank, sess.size, sess.shared, state,
                        inbox, sess.trace,
                    )
                    outs.append(
                        (
                            rank,
                            out.value,
                            out.sends,
                            out.records,
                            out.spans.to_dict()
                            if out.spans is not None
                            else None,
                        )
                    )
                reply = ("ok", outs)
            elif tag == "close":
                _, sid = msg
                closing = sessions.pop(sid, None)
                if closing is not None:
                    closing.release()
                reply = ("ok", None)
            else:
                reply = ("err", f"unknown command {tag!r}")
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            _send_msg(conn, reply)
        except (BrokenPipeError, OSError):  # parent is gone
            break
    for sess in sessions.values():
        sess.release()
    conn.close()


class _WorkerHandle:
    """Parent-side handle to one pooled worker process."""

    def __init__(self, ctx: BaseContext, index: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc: BaseProcess = ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-spmd-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    def send(self, msg: Any) -> None:
        try:
            _send_msg(self.conn, msg)
        except (BrokenPipeError, OSError) as exc:
            raise BackendError(
                f"worker {self.proc.name} is gone "
                f"(exitcode={self.proc.exitcode})"
            ) from exc

    def recv(self) -> Tuple[str, Any]:
        try:
            reply = _recv_msg(self.conn)
        except (EOFError, OSError) as exc:
            raise BackendError(
                f"worker {self.proc.name} died "
                f"(exitcode={self.proc.exitcode})"
            ) from exc
        if not isinstance(reply, tuple) or len(reply) != 2:
            raise BackendError(f"malformed worker reply: {reply!r}")
        return reply

    def stop(self) -> None:
        try:
            _send_msg(self.conn, ("shutdown",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        self.conn.close()


# ----------------------------------------------------------------------
# session
# ----------------------------------------------------------------------


class ProcessSession(SpmdSession):
    """Session whose ranks execute on the backend's worker pool.

    The session goes *remote* lazily at the first superstep: if that
    step's ``(fn, arg)`` cannot be pickled, the whole session falls
    back to in-process serial execution (with a warning) — per-rank
    state has not left the process yet, so the downgrade is safe.
    """

    def __init__(
        self,
        size: int,
        ledger: Optional[CommLedger],
        tracer: Optional[TracerBase],
        shared: Optional[Mapping[str, Any]],
        backend: "ProcessBackend",
        sid: int,
    ) -> None:
        super().__init__(size, ledger, tracer)
        self._backend = backend
        self._sid = sid
        self._shared_input: Mapping[str, Any] = (
            dict(shared) if shared else {}
        )
        self._trace = bool(getattr(self.tracer, "enabled", False))
        self._mode = "pending"  # -> "remote" | "local"
        self._owners: List[Tuple[_WorkerHandle, List[int]]] = []
        self._segments: List[SharedMemory] = []
        self._local_states: List[Dict[str, Any]] = []

    # -- local fallback ------------------------------------------------
    def _run_local(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        return [
            run_rank_step(
                fn, arg, rank, self.size, self._shared_input,
                self._local_states[rank], inboxes[rank], self._trace,
            )
            for rank in range(self.size)
        ]

    def _fall_back_local(self, fn: StepFn, reason: BaseException) -> None:
        warnings.warn(
            f"process backend: superstep {getattr(fn, '__qualname__', fn)!r} "
            f"is not picklable ({reason}); the session falls back to "
            "in-process serial execution. Use module-level superstep "
            "functions to run on the worker pool.",
            RuntimeWarning,
            stacklevel=4,
        )
        self._mode = "local"
        self._local_states = [{} for _ in range(self.size)]

    # -- remote path ---------------------------------------------------
    def _open_remote(self) -> None:
        handles = self._backend._ensure_pool()
        used = min(len(handles), self.size)
        self._owners = [
            (
                handles[w],
                [r for r in range(self.size) if r % used == w],
            )
            for w in range(used)
        ]
        inline, specs, segments = _pack_shared(self._shared_input)
        self._segments = segments
        open_msg = ("open", self._sid, self.size, inline, specs,
                    self._trace)
        for worker, _ranks in self._owners:
            worker.send(open_msg)
        self._collect_acks("open")
        self._mode = "remote"

    def _collect_acks(self, what: str) -> None:
        errors: List[str] = []
        for worker, _ranks in self._owners:
            tag, payload = worker.recv()
            if tag != "ok":
                errors.append(str(payload))
        if errors:
            raise BackendError(
                f"{what} failed on {len(errors)} worker(s):\n"
                + "\n".join(errors)
            )

    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        if self._mode == "local":
            return self._run_local(fn, arg, inboxes)
        try:
            pickle.dumps((fn, arg), protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            if self._mode == "pending":
                self._fall_back_local(fn, exc)
                return self._run_local(fn, arg, inboxes)
            raise BackendError(
                "superstep function/argument is not picklable and the "
                "session already has remote per-rank state; use "
                "module-level superstep functions"
            ) from exc
        if self._mode == "pending":
            self._open_remote()
        for worker, ranks in self._owners:
            tasks = [(r, inboxes[r]) for r in ranks]
            worker.send(("step", self._sid, fn, arg, tasks))
        by_rank: Dict[int, RankOutcome] = {}
        errors: List[str] = []
        for worker, _ranks in self._owners:
            tag, payload = worker.recv()
            if tag != "ok":
                errors.append(str(payload))
                continue
            for rank, value, sends, records, span_dict in payload:
                spans = (
                    Span.from_dict(span_dict)
                    if span_dict is not None
                    else None
                )
                by_rank[rank] = RankOutcome(value, sends, records, spans)
        if errors:
            raise BackendError(
                f"superstep failed on {len(errors)} worker(s):\n"
                + "\n".join(errors)
            )
        return [by_rank[rank] for rank in range(self.size)]

    # ------------------------------------------------------------------
    def _close(self) -> None:
        try:
            if self._mode == "remote":
                alive = []
                for worker, _ranks in self._owners:
                    try:
                        worker.send(("close", self._sid))
                        alive.append(worker)
                    except BackendError:
                        pass
                for worker in alive:
                    try:
                        worker.recv()
                    except BackendError:
                        pass
        finally:
            for seg in self._segments:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            self._segments = []
            self._local_states = []
            self._owners = []


# ----------------------------------------------------------------------
# backend
# ----------------------------------------------------------------------


class ProcessBackend(Backend):
    """Persistent ``multiprocessing`` worker pool backend."""

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if start_method is None:
            # fork (where available) keeps pool startup in the low
            # milliseconds, which is what lets per-step sessions win
            try:
                get_context("fork")
                start_method = "fork"
            except ValueError:  # pragma: no cover - non-POSIX
                start_method = None
        self._ctx = get_context(start_method)
        self._pool: Optional[List[_WorkerHandle]] = None
        self._sids = itertools.count()
        self._atexit_registered = False

    def _ensure_pool(self) -> List[_WorkerHandle]:
        if self._pool is None:
            self._pool = [
                _WorkerHandle(self._ctx, i) for i in range(self.workers)
            ]
            if not self._atexit_registered:
                atexit.register(self.close)
                self._atexit_registered = True
        return self._pool

    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        return ProcessSession(
            size, ledger, tracer, shared, self, next(self._sids)
        )

    def close(self) -> None:
        if self._pool is not None:
            for worker in self._pool:
                worker.stop()
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(workers={self.workers})"
