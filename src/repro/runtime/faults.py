"""Deterministic fault injection for the SPMD runtime (`chaos`).

The chaos backend wraps a real execution backend and injects faults —
kill / hang / slow — into a chosen rank at a chosen superstep,
according to a :class:`FaultPlan`.  Each fault fires exactly once
(first dispatch attempt of its superstep), *before* the rank's
superstep function runs, so a retried or replayed step re-executes
from clean state and the run's results stay bit-identical to an
uninjected run:

* ``kill`` — on a process-pool worker the rank's process exits hard
  (``os._exit``), exercising the supervised respawn/replay path of
  :class:`~repro.runtime.backends.process.ProcessBackend`; in-process
  (serial/thread/sentinel, or the process backend's local fallback) it
  raises :class:`InjectedFault`, exercising the chaos harness's own
  snapshot/rollback retry.
* ``hang`` — the rank sleeps (default 30 s), long enough to blow the
  supervisor's per-step deadline where one is configured.
* ``slow`` — the rank sleeps briefly (default 10 ms) without failing;
  a latency probe.

Superstep indexes are global across the backend's lifetime (a run is
usually many short sessions — e.g. one per driver step), so a plan
like ``kill@2.1`` targets the third superstep *of the run*.  Use
:meth:`ChaosBackend.reset` to restart the counter and re-arm a plan.

Selection: ``--backend chaos`` / ``REPRO_BACKEND=chaos`` with the plan
in ``$REPRO_FAULT_PLAN`` and the wrapped backend in
``$REPRO_CHAOS_INNER`` (default ``process``).  See
``docs/FAULT_TOLERANCE.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.obs.tracer import TracerBase
from repro.runtime.backends.base import (
    CHAOS_INNER_ENV,
    FAULT_PLAN_ENV,
    Backend,
    BackendError,
    BackendSpec,
    Message,
    RankOutcome,
    SpmdContext,
    SpmdSession,
    StepFn,
    build_backend,
)
from repro.runtime.ledger import CommLedger

__all__ = [
    "ChaosBackend",
    "ChaosSession",
    "ChaosStep",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
]

#: recognised fault kinds
FAULT_KINDS = ("kill", "hang", "slow")

#: per-kind default duration (seconds; unused by ``kill``)
DEFAULT_SECONDS = {"kill": 0.0, "hang": 30.0, "slow": 0.01}

#: exit status of a killed worker (EX_SOFTWARE)
KILL_EXIT_CODE = 70


class InjectedFault(BackendError):
    """An injected fault fired in the calling process (in-process
    ``kill``); the chaos session rolls back and retries."""


def _in_worker() -> bool:
    """Whether this process is a process-pool worker (by the pool's
    ``repro-spmd-*`` process naming — no import cycle with the
    backend)."""
    return multiprocessing.current_process().name.startswith("repro-spmd-")


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One fault: inject ``kind`` into ``rank`` at global superstep
    ``step`` (``seconds`` is the sleep for hang/slow)."""

    kind: str
    step: int
    rank: int
    seconds: float

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.step < 0 or self.rank < 0:
            raise ValueError("fault step and rank must be >= 0")
        if self.seconds < 0:
            raise ValueError("fault seconds must be >= 0")

    def to_text(self) -> str:
        base = f"{self.kind}@{self.step}.{self.rank}"
        if self.seconds != DEFAULT_SECONDS[self.kind]:
            base += f":{self.seconds:g}"
        return base


def _parse_entry(entry: str) -> FaultSpec:
    problem = (
        f"invalid fault entry {entry!r}; expected "
        f"KIND@STEP.RANK[:SECONDS] with KIND in {FAULT_KINDS}"
    )
    kind, at, rest = entry.partition("@")
    kind = kind.strip().lower()
    if not at or kind not in FAULT_KINDS:
        raise ValueError(problem)
    where, colon, secs_text = rest.partition(":")
    step_text, dot, rank_text = where.partition(".")
    if not dot:
        raise ValueError(problem)
    try:
        step = int(step_text)
        rank = int(rank_text)
    except ValueError:
        raise ValueError(problem) from None
    seconds = DEFAULT_SECONDS[kind]
    if colon:
        try:
            seconds = float(secs_text)
        except ValueError:
            raise ValueError(problem) from None
    return FaultSpec(kind, step, rank, seconds)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults (see the grammar below).

    Text grammar: comma-separated ``KIND@STEP.RANK[:SECONDS]`` entries,
    e.g. ``"kill@2.1,slow@5.0:0.02,hang@7.1:12"``.
    """

    faults: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs: List[FaultSpec] = []
        for raw in text.split(","):
            entry = raw.strip()
            if entry:
                specs.append(_parse_entry(entry))
        return cls(tuple(specs))

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """The plan in ``$REPRO_FAULT_PLAN`` (empty plan when unset)."""
        return cls.parse(os.environ.get(FAULT_PLAN_ENV, ""))

    def to_text(self) -> str:
        return ",".join(spec.to_text() for spec in self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


# ----------------------------------------------------------------------
# the injecting superstep wrapper
# ----------------------------------------------------------------------


def _trigger(kind: str, seconds: float, rank: int, step: int) -> None:
    if kind in ("hang", "slow"):
        time.sleep(seconds)
        return
    # kind == "kill" (FaultSpec validated the kind)
    if _in_worker():
        os._exit(KILL_EXIT_CODE)
    raise InjectedFault(
        f"injected kill of rank {rank} at superstep {step}"
    )


class ChaosStep:
    """Picklable wrapper around one superstep: triggers this attempt's
    armed faults *before* running the wrapped function, so a faulted
    rank never half-mutates its state.

    ``__wrapped__`` / ``disarm()`` let the sentinel backend, the SPMD
    linter, and the process backend's retry/replay machinery reach the
    plain superstep underneath.
    """

    def __init__(
        self,
        fn: StepFn,
        step_index: int,
        faults: Mapping[int, Tuple[str, float]],
    ) -> None:
        self.fn = fn
        self.step_index = step_index
        self.faults: Dict[int, Tuple[str, float]] = dict(faults)
        self.__wrapped__ = fn
        for attr in ("__name__", "__qualname__", "__doc__"):
            try:
                setattr(self, attr, getattr(fn, attr))
            except AttributeError:
                pass

    def disarm(self) -> StepFn:
        """The plain superstep (retries/replays run this)."""
        return self.fn

    def __call__(self, ctx: SpmdContext, arg: Any) -> Any:
        fault = self.faults.get(ctx.rank)
        if fault is not None:
            kind, seconds = fault
            _trigger(kind, seconds, ctx.rank, self.step_index)
        return self.fn(ctx, arg)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChaosStep({getattr(self.fn, '__qualname__', self.fn)!r}, "
            f"step={self.step_index}, faults={self.faults!r})"
        )


# ----------------------------------------------------------------------
# session and backend
# ----------------------------------------------------------------------


class ChaosSession(SpmdSession):
    """Session that injects the backend's plan into an inner session.

    The inner session is driven through its ``_run_step`` hook (never
    its public ``step``), so routing/ledger/span merging happens
    exactly once, here, and failed attempts never pollute the run.
    In-process ``kill`` faults raise :class:`InjectedFault`; the
    session rolls the inner per-rank state back to the pre-attempt
    snapshot and retries with the fault disarmed.
    """

    def __init__(
        self,
        size: int,
        ledger: Optional[CommLedger],
        tracer: Optional[TracerBase],
        shared: Optional[Mapping[str, Any]],
        backend: "ChaosBackend",
    ) -> None:
        super().__init__(size, ledger, tracer)
        self._backend = backend
        self._inner = backend.inner.open_session(
            size, ledger=self.ledger, tracer=self.tracer, shared=shared
        )

    def _run_step(
        self, fn: StepFn, arg: Any, inboxes: List[List[Message]]
    ) -> List[RankOutcome]:
        step_index = self._backend._next_step()
        max_attempts = len(self._backend.plan.faults) + 1
        attempt = 0
        while True:
            armed = (
                self._backend._arm(step_index, self.size)
                if attempt == 0
                else {}
            )
            wrapped: StepFn = fn
            if armed:
                self.tracer.count("faults_injected", len(armed))
                wrapped = ChaosStep(fn, step_index, armed)
            snapshot = self._inner._state_snapshot()
            try:
                return self._inner._run_step(wrapped, arg, inboxes)
            except InjectedFault:
                attempt += 1
                if attempt >= max_attempts:  # pragma: no cover - guard
                    raise
                with self.tracer.span("recovery"):
                    self.tracer.count("step_retries", 1)
                    self._inner._state_restore(snapshot)

    def _state_snapshot(self) -> Any:
        return self._inner._state_snapshot()

    def _state_restore(self, snapshot: Any) -> None:
        self._inner._state_restore(snapshot)

    def _close(self) -> None:
        self._inner.close()


class ChaosBackend(Backend):
    """Deterministic fault-injection harness around a real backend.

    ``plan`` is a :class:`FaultPlan` (or its text form; default
    ``$REPRO_FAULT_PLAN``); ``inner`` is a backend instance or spec
    string (default ``$REPRO_CHAOS_INNER``, then ``process``).  Every
    fault fires at most once; the backend keeps a *global* superstep
    counter across all its sessions.
    """

    name = "chaos"

    def __init__(
        self,
        plan: Union[None, str, FaultPlan] = None,
        inner: Union[None, str, Backend] = None,
        workers: Optional[int] = None,
    ) -> None:
        if plan is None:
            plan = FaultPlan.from_env()
        elif isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        self.plan = plan
        if inner is None:
            inner = os.environ.get(CHAOS_INNER_ENV) or "process"
        if isinstance(inner, str):
            if BackendSpec.parse(inner).scheme == "chaos":
                raise ValueError("chaos backend cannot wrap itself")
            inner = build_backend(inner, workers)
        elif isinstance(inner, ChaosBackend):
            raise ValueError("chaos backend cannot wrap itself")
        self.inner: Backend = inner
        self._step_counter = 0
        self._fired: Set[int] = set()

    # -- plan bookkeeping ----------------------------------------------
    def _next_step(self) -> int:
        index = self._step_counter
        self._step_counter += 1
        return index

    def _arm(self, step_index: int, size: int) -> Dict[int, Tuple[str, float]]:
        """One-shot faults scheduled for this superstep (a fault aimed
        at a rank outside the session is skipped, not consumed)."""
        armed: Dict[int, Tuple[str, float]] = {}
        for idx, spec in enumerate(self.plan.faults):
            if idx in self._fired or spec.step != step_index:
                continue
            if spec.rank >= size:
                continue
            self._fired.add(idx)
            armed[spec.rank] = (spec.kind, spec.seconds)
        return armed

    def reset(self) -> None:
        """Restart the global superstep counter and re-arm the plan."""
        self._step_counter = 0
        self._fired.clear()

    # ------------------------------------------------------------------
    def open_session(
        self,
        size: int,
        ledger: Optional[CommLedger] = None,
        tracer: Optional[TracerBase] = None,
        shared: Optional[Mapping[str, Any]] = None,
    ) -> SpmdSession:
        return ChaosSession(size, ledger, tracer, shared, self)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChaosBackend(inner={self.inner!r}, "
            f"plan={self.plan.to_text()!r})"
        )


def chaos_from_spec(spec: BackendSpec) -> ChaosBackend:
    """Registry factory for ``chaos``.

    URI options override the environment: ``plan`` is a fault-plan
    text (``KIND@STEP.RANK[:SECONDS]``, comma-separated), ``inner``
    the wrapped backend spec — e.g.
    ``chaos://?plan=kill@2.1&inner=tcp://127.0.0.1:0:2``.
    """
    opts = spec.typed_options({"plan": str, "inner": str})
    return ChaosBackend(
        plan=opts.get("plan"),
        inner=opts.get("inner"),
        workers=spec.workers,
    )
