"""Bulk-synchronous SPMD execution over the pluggable backends.

``spmd_run`` executes a list of superstep functions; within each
superstep every rank's function runs once — sequentially in rank order
on the default :class:`~repro.runtime.backends.serial.SerialBackend`,
concurrently on the thread or process backends — then the barrier
delivers the queued messages.  Return values are collected per
superstep per rank, so drivers can fold local results into global
answers — the analogue of a gather.

Algorithms that interleave coordinator logic between supersteps (the
distributed tree induction, RCB, and k-way modules) use the underlying
:meth:`~repro.runtime.backends.base.Backend.open_session` /
:meth:`~repro.runtime.backends.base.SpmdSession.step` protocol
directly; ``spmd_run`` is the convenience wrapper for straight-line
superstep pipelines.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, List, Mapping, Optional, Sequence

from repro.obs.tracer import TracerBase
from repro.runtime.backends.base import (
    BackendLike,
    SpmdContext,
    call_without_arg,
    resolve_backend,
)
from repro.runtime.ledger import CommLedger

SuperstepFn = Callable[[SpmdContext], Any]


def spmd_run(
    size: int,
    supersteps: Sequence[SuperstepFn],
    ledger: Optional[CommLedger] = None,
    backend: BackendLike = None,
    tracer: Optional[TracerBase] = None,
    shared: Optional[Mapping[str, Any]] = None,
) -> List[List[Any]]:
    """Run ``supersteps`` on a ``size``-rank SPMD machine.

    Returns ``results[step][rank]``. All ranks execute superstep ``i``
    before any executes ``i+1`` (messages sent in step ``i`` are
    readable from the inbox in step ``i+1``).

    ``backend`` selects where ranks execute (instance, spec string like
    ``"process:4"``, or ``None`` for the configured default — see
    :func:`repro.runtime.backends.resolve_backend`). ``shared`` is a
    read-only mapping distributed to every rank as ``ctx.shared``; on
    the process backend its NumPy arrays travel via shared memory.
    Superstep functions must be module-level (picklable) to execute on
    the process pool.
    """
    if size < 1:
        raise ValueError(
            f"spmd_run needs at least one rank, got size={size}"
        )
    resolved = resolve_backend(backend)
    results: List[List[Any]] = []
    with resolved.open_session(
        size, ledger=ledger, tracer=tracer, shared=shared
    ) as session:
        for fn in supersteps:
            results.append(session.step(partial(call_without_arg, fn)))
    return results
