"""Bulk-synchronous SPMD execution over the simulated communicator.

``spmd_run`` executes a list of superstep functions; within each
superstep every rank's function runs once (sequentially, in rank
order), then the barrier delivers the queued messages. Return values
are collected per superstep per rank, so drivers can fold local results
into global answers — the simulated analogue of a gather.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.runtime.comm import RankContext, SimComm
from repro.runtime.ledger import CommLedger

SuperstepFn = Callable[[RankContext], Any]


def spmd_run(
    size: int,
    supersteps: Sequence[SuperstepFn],
    ledger: Optional[CommLedger] = None,
) -> List[List[Any]]:
    """Run ``supersteps`` on a ``size``-rank simulated machine.

    Returns ``results[step][rank]``. All ranks execute superstep ``i``
    before any executes ``i+1`` (messages sent in step ``i`` are
    readable from the inbox in step ``i+1``).
    """
    comm = SimComm(size, ledger)
    contexts = [RankContext(rank=r, comm=comm) for r in range(size)]
    results: List[List[Any]] = []
    for fn in supersteps:
        step_results = [fn(ctx) for ctx in contexts]
        comm.barrier()
        results.append(step_results)
    return results
