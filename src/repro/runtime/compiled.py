"""Compiled kernel runtime: the execution side of the certified seam.

:mod:`repro.kernels` declares which functions are compiled-path
candidates and ``repro-lint --perf`` certifies them jit-compilable;
this module is where the certification pays off.  Every declared
kernel dispatches through :func:`dispatch`, which selects an execution
**tier**:

``pure``
    Always run the original vectorised NumPy implementation.
``compiled``
    Run a numba-jitted implementation, falling back **per kernel** to
    the pure path (with a single :class:`RuntimeWarning`) when numba is
    unavailable or the kernel fails to compile.
``auto`` (the default)
    ``compiled`` when numba is importable, ``pure`` otherwise — no
    warnings either way.

Tier selection precedence: :func:`set_kernel_tier` (the CLI's
``--kernels`` flag) > ``$REPRO_KERNELS`` > ``auto``.

Compilation is lazy and cached per ``(kernel name, dtype signature)``:
the first call with a new signature pays the jit cost (counted in
``kernel_compiles`` / ``kernel_compile_seconds``), later calls hit the
specialised machine code.  Dispatches are counted in
``kernel_calls_compiled`` / ``kernel_calls_pure``; a recording
:class:`repro.obs.Tracer` constructed with ``kernel_counters=True``
attaches the per-run deltas to its root span so they render in
:class:`~repro.obs.report.RunReport`.

The compiled implementations are **loop forms** of the pure kernels
(numba's nopython mode supports neither ``axis=`` reductions nor
``None``-broadcasting), written so every arithmetic operation matches
the pure path element for element — comparisons, integer cumulative
sums, and IEEE-754 ``sqrt`` (correctly rounded by definition) — which
is what makes the differential conformance suite
(``tests/kernels/test_conformance.py``) able to demand **bit-identical**
results, dtype and shape included.  Counters are process-local: on the
process backend, worker-side dispatches are counted inside the workers
(see ``docs/PARALLELISM.md``).
"""

from __future__ import annotations

import os
import threading
import warnings
from time import perf_counter
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

#: environment variable selecting the kernel execution tier
KERNELS_ENV = "REPRO_KERNELS"

#: valid tier names, in documentation order
KERNEL_TIERS = ("pure", "compiled", "auto")

#: one argument's contribution to a dtype signature
SigPart = Tuple[str, int]
#: compile-cache key: (kernel dotted name, per-argument dtype signature)
CacheKey = Tuple[str, Tuple[object, ...]]


class KernelCompileError(RuntimeError):
    """A kernel could not be compiled (numba missing, typing failure)."""


# ----------------------------------------------------------------------
# dispatch counters
# ----------------------------------------------------------------------


class KernelStats:
    """Process-wide compile/dispatch counters for the kernel tiers."""

    __slots__ = (
        "kernel_compiles",
        "kernel_compile_seconds",
        "kernel_calls_compiled",
        "kernel_calls_pure",
    )

    def __init__(self) -> None:
        self.kernel_compiles = 0
        self.kernel_compile_seconds = 0.0
        self.kernel_calls_compiled = 0
        self.kernel_calls_pure = 0

    def as_dict(self) -> Dict[str, float]:
        """Counters as a plain ``{name: value}`` mapping."""
        return {
            "kernel_compiles": self.kernel_compiles,
            "kernel_compile_seconds": self.kernel_compile_seconds,
            "kernel_calls_compiled": self.kernel_calls_compiled,
            "kernel_calls_pure": self.kernel_calls_pure,
        }


#: the process-wide counter instance (see :func:`kernel_stats`)
STATS = KernelStats()


def kernel_stats() -> Dict[str, float]:
    """Snapshot of the process-wide compile/dispatch counters."""
    return STATS.as_dict()


def stats_snapshot() -> Tuple[int, float, int, int]:
    """Opaque counter snapshot for later :func:`stats_delta`."""
    return (
        STATS.kernel_compiles,
        STATS.kernel_compile_seconds,
        STATS.kernel_calls_compiled,
        STATS.kernel_calls_pure,
    )


def stats_delta(before: Tuple[int, float, int, int]) -> Dict[str, float]:
    """Counter increments since ``before`` (a :func:`stats_snapshot`)."""
    now = stats_snapshot()
    names = (
        "kernel_compiles",
        "kernel_compile_seconds",
        "kernel_calls_compiled",
        "kernel_calls_pure",
    )
    return {name: now[i] - before[i] for i, name in enumerate(names)}


# ----------------------------------------------------------------------
# tier selection
# ----------------------------------------------------------------------

_tier_override: Optional[str] = None


def _validate_tier(tier: str, source: str) -> str:
    if tier not in KERNEL_TIERS:
        raise ValueError(
            f"invalid kernel tier {tier!r} in {source}; "
            f"expected one of {KERNEL_TIERS}"
        )
    return tier


def set_kernel_tier(tier: Optional[str]) -> None:
    """Install the process-wide kernel tier (``None`` resets to the
    ``$REPRO_KERNELS``/``auto`` resolution).  The CLI's ``--kernels``
    flag lands here, so it outranks the environment."""
    global _tier_override
    if tier is not None:
        tier = _validate_tier(tier, "set_kernel_tier()")
    _tier_override = tier


def kernel_tier() -> str:
    """The active tier: override > ``$REPRO_KERNELS`` > ``auto``."""
    if _tier_override is not None:
        return _tier_override
    env = os.environ.get(KERNELS_ENV)
    if env:
        return _validate_tier(env.strip().lower(), f"${KERNELS_ENV}")
    return "auto"


# ----------------------------------------------------------------------
# numba loading (lazy; monkeypatch `_load_numba` to simulate absence)
# ----------------------------------------------------------------------

_numba_module: Optional[Any] = None
_numba_error: Optional[str] = None


def _load_numba() -> Any:
    """Import and return numba (the single import site, so tests can
    monkeypatch it to simulate a platform without numba)."""
    import numba

    return numba


def _ensure_numba() -> Any:
    """numba module, or :class:`KernelCompileError` (result cached)."""
    global _numba_module, _numba_error
    if _numba_module is not None:
        return _numba_module
    if _numba_error is not None:
        raise KernelCompileError(_numba_error)
    try:
        _numba_module = _load_numba()
    except Exception as exc:
        _numba_error = f"numba is unavailable: {exc}"
        raise KernelCompileError(_numba_error) from exc
    return _numba_module


def numba_available() -> bool:
    """Whether the compiled tier has a jit compiler to use."""
    try:
        _ensure_numba()
    except KernelCompileError:
        return False
    return True


def _is_numba_error(exc: BaseException) -> bool:
    """Whether ``exc`` came out of numba itself (typing/lowering
    failures) rather than from the kernel's data."""
    module = type(exc).__module__ or ""
    return module.split(".")[0] == "numba"


def _jit_compile(
    name: str, source: Callable[..., Any]
) -> Callable[..., Any]:
    """nopython-jit ``source`` (tests monkeypatch this seam to simulate
    mid-compile ``TypingError``s without numba installed)."""
    numba = _ensure_numba()
    try:
        jitted: Callable[..., Any] = numba.njit(cache=False)(source)
    except Exception as exc:
        raise KernelCompileError(
            f"njit({name}) failed: {exc!r}"
        ) from exc
    return jitted


# ----------------------------------------------------------------------
# per-kernel registry: compiled sources + argument canonicalisation
# ----------------------------------------------------------------------

#: numba-compilable loop sources, keyed by the pure kernel's dotted name
NUMBA_SOURCES: Dict[str, Callable[..., Any]] = {}

#: argument canonicalisers: mirror the pure kernel's signature
#: (defaults included) and its input coercions, returning the exact
#: positional tuple the compiled source consumes — so pure and compiled
#: always see identical dtypes
_PREPARE: Dict[str, Callable[..., Tuple[Any, ...]]] = {}

_LOCK = threading.Lock()

#: per-kernel jitted callables (one njit object specialises per sig)
_JITTED: Dict[str, Callable[..., Any]] = {}

#: warmed ``(kernel name, dtype signature)`` pairs → compile seconds
_COMPILE_CACHE: Dict[CacheKey, float] = {}

#: kernels permanently on the pure path this process, with the reason
_FALLBACK: Dict[str, str] = {}


def compiled_signatures() -> Tuple[CacheKey, ...]:
    """The warmed compile-cache keys (kernel name, dtype signature)."""
    return tuple(sorted(_COMPILE_CACHE, key=repr))


def fallback_reasons() -> Dict[str, str]:
    """``{kernel name: reason}`` for kernels pinned to the pure path."""
    return dict(_FALLBACK)


def _reset_state() -> None:
    """Forget caches, fallbacks, counters, and the numba probe (tests
    and benchmarks only — never called by library code)."""
    global _numba_module, _numba_error
    with _LOCK:
        _JITTED.clear()
        _COMPILE_CACHE.clear()
        _FALLBACK.clear()
        _numba_module = None
        _numba_error = None
        STATS.kernel_compiles = 0
        STATS.kernel_compile_seconds = 0.0
        STATS.kernel_calls_compiled = 0
        STATS.kernel_calls_pure = 0


def _sig_key(args: Tuple[Any, ...]) -> Tuple[object, ...]:
    """Dtype signature of a prepared argument tuple."""
    parts: list = []
    for a in args:
        if isinstance(a, np.ndarray):
            parts.append((a.dtype.str, a.ndim))
        else:
            parts.append(type(a).__name__)
    return tuple(parts)


def _mark_fallback(name: str, reason: str, warn: bool) -> None:
    """Pin ``name`` to the pure path (idempotent; warns at most once,
    and only for the kernel that actually failed — other kernels'
    cache entries are untouched)."""
    with _LOCK:
        if name in _FALLBACK:
            return
        _FALLBACK[name] = reason
    if warn:
        warnings.warn(
            f"kernel {name}: compiled tier unavailable ({reason}); "
            "falling back to the pure implementation",
            RuntimeWarning,
            # _mark_fallback ← dispatch ← kernels._dispatch ← the
            # dispatcher wrapper ← the caller's kernel call site
            stacklevel=5,
        )


# ----------------------------------------------------------------------
# the dispatcher (called by the @repro.kernels.kernel wrapper)
# ----------------------------------------------------------------------


def dispatch(
    name: str,
    pure: Callable[..., Any],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
) -> Any:
    """Run kernel ``name`` on the active tier.

    The pure implementation is authoritative: any failure on the
    compiled path (missing numba, typing error, even a data error the
    pure path would also raise) routes the call to ``pure`` so callers
    observe exactly the pure semantics.  Compile failures pin the
    kernel to the pure path for the rest of the process.
    """
    tier = kernel_tier()
    if tier == "pure" or name in _FALLBACK:
        STATS.kernel_calls_pure += 1
        return pure(*args, **kwargs)
    if tier == "auto" and not numba_available():
        STATS.kernel_calls_pure += 1
        return pure(*args, **kwargs)
    source = NUMBA_SOURCES.get(name)
    prepare = _PREPARE.get(name)
    if source is None or prepare is None:
        _mark_fallback(
            name, "no compiled source registered", warn=(tier == "compiled")
        )
        STATS.kernel_calls_pure += 1
        return pure(*args, **kwargs)
    try:
        prepared = prepare(*args, **kwargs)
    except Exception:
        # malformed inputs: the pure path owns the error semantics
        STATS.kernel_calls_pure += 1
        return pure(*args, **kwargs)
    try:
        with _LOCK:
            jitted = _JITTED.get(name)
            if jitted is None:
                jitted = _jit_compile(name, source)
                _JITTED[name] = jitted
        key: CacheKey = (name, _sig_key(prepared))
        if key not in _COMPILE_CACHE:
            # lazy specialisation: the first call with this dtype
            # signature compiles (its whole duration is billed as
            # compile time — it includes one execution)
            t0 = perf_counter()
            try:
                out = jitted(*prepared)
            except Exception as exc:
                if _is_numba_error(exc):
                    raise KernelCompileError(
                        f"compiling {name} for signature {key[1]} "
                        f"failed: {exc}"
                    ) from exc
                raise
            elapsed = perf_counter() - t0
            with _LOCK:
                if key not in _COMPILE_CACHE:
                    _COMPILE_CACHE[key] = elapsed
                    STATS.kernel_compiles += 1
                    STATS.kernel_compile_seconds += elapsed
            STATS.kernel_calls_compiled += 1
            return out
        out = jitted(*prepared)
        STATS.kernel_calls_compiled += 1
        return out
    except KernelCompileError as exc:
        _mark_fallback(name, str(exc), warn=True)
        STATS.kernel_calls_pure += 1
        return pure(*args, **kwargs)
    except Exception:
        # a data error on the compiled path (bad indices, shape
        # mismatch): transient — re-run pure so the caller sees the
        # pure implementation's exception (or its result)
        STATS.kernel_calls_pure += 1
        return pure(*args, **kwargs)


# ----------------------------------------------------------------------
# compiled sources for the four certified kernels
#
# Each source is the loop form of its pure kernel, performing the same
# arithmetic per element (comparisons, int64 cumulative sums, IEEE
# sqrt) so results are bit-identical.  They are only ever executed
# jitted — interpreted, the loops would be orders of magnitude slower
# than the pure vectorised path, which is exactly what the fallback
# avoids.
# ----------------------------------------------------------------------


def _register(
    name: str, prepare: Callable[..., Tuple[Any, ...]]
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    def deco(source: Callable[..., Any]) -> Callable[..., Any]:
        NUMBA_SOURCES[name] = source
        _PREPARE[name] = prepare
        return source

    return deco


def _prep_bboxes_intersect_matrix(
    boxes_a: Any, boxes_b: Any, pad: float = 0.0
) -> Tuple[Any, ...]:
    return (
        np.asarray(boxes_a, dtype=float),
        np.asarray(boxes_b, dtype=float),
        float(pad),
    )


@_register(
    "repro.geometry.bbox.bboxes_intersect_matrix",
    _prep_bboxes_intersect_matrix,
)
def _src_bboxes_intersect_matrix(
    boxes_a: np.ndarray, boxes_b: np.ndarray, pad: float
) -> np.ndarray:
    m_a = boxes_a.shape[0]
    m_b = boxes_b.shape[0]
    d = boxes_a.shape[2]
    out = np.empty((m_a, m_b), dtype=np.bool_)
    for i in range(m_a):
        for j in range(m_b):
            hit = True
            for dim in range(d):
                lo_ok = boxes_a[i, 0, dim] <= boxes_b[j, 1, dim] + pad
                hi_ok = boxes_a[i, 1, dim] >= boxes_b[j, 0, dim] - pad
                if not (lo_ok and hi_ok):
                    hit = False
                    break
            out[i, j] = hit
    return out


def _prep_box_candidate_pairs(
    boxes: Any, points: Any, box_index: Any, point_index: Any
) -> Tuple[Any, ...]:
    return (
        np.asarray(boxes),
        np.asarray(points),
        np.asarray(box_index),
        np.asarray(point_index),
    )


@_register(
    "repro.geometry.boxsearch.box_candidate_pairs",
    _prep_box_candidate_pairs,
)
def _src_box_candidate_pairs(
    boxes: np.ndarray,
    points: np.ndarray,
    box_index: np.ndarray,
    point_index: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    n_pairs = box_index.shape[0]
    d = points.shape[1]
    keep = np.empty(n_pairs, dtype=np.bool_)
    n_kept = 0
    for t in range(n_pairs):
        b = box_index[t]
        p = point_index[t]
        inside = True
        for dim in range(d):
            v = points[p, dim]
            if v < boxes[b, 0, dim] or v > boxes[b, 1, dim]:
                inside = False
                break
        keep[t] = inside
        if inside:
            n_kept += 1
    out_boxes = np.empty(n_kept, dtype=box_index.dtype)
    out_points = np.empty(n_kept, dtype=point_index.dtype)
    k = 0
    for t in range(n_pairs):
        if keep[t]:
            out_boxes[k] = box_index[t]
            out_points[k] = point_index[t]
            k += 1
    return out_boxes, out_points


def _prep_row_majority(labels: Any) -> Tuple[Any, ...]:
    return (np.asarray(labels, dtype=np.int64),)


@_register("repro.core.contact_search.row_majority", _prep_row_majority)
def _src_row_majority(labels: np.ndarray) -> np.ndarray:
    n, w = labels.shape
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        srow = np.sort(labels[i].copy())
        best_val = srow[0]
        best_cnt = 1
        cur_cnt = 1
        for j in range(1, w):
            if srow[j] == srow[j - 1]:
                cur_cnt += 1
            else:
                cur_cnt = 1
            if cur_cnt > best_cnt:
                best_cnt = cur_cnt
                best_val = srow[j]
        out[i] = best_val
    return out


def _prep_split_index_curve(coords: Any, labels: Any) -> Tuple[Any, ...]:
    return (np.asarray(coords), np.asarray(labels))


@_register(
    "repro.dtree.splitter.split_index_curve", _prep_split_index_curve
)
def _src_split_index_curve(
    coords: np.ndarray, labels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    n = coords.shape[0]
    # mergesort is stable, and stability fully determines the
    # permutation — identical to the pure path's kind="stable"
    order = np.argsort(coords, kind="mergesort")
    c = coords[order]
    lab = labels[order]
    # prefix sums of per-class squared counts via occurrence ranks:
    # sum_c left_c(i)^2 == sum_{j<=i} (2*rank_j - 1)
    idx = np.argsort(lab, kind="mergesort")
    ranks = np.empty(n, dtype=np.int64)
    for t in range(n):
        if t > 0 and lab[idx[t]] == lab[idx[t - 1]]:
            ranks[idx[t]] = ranks[idx[t - 1]] + 1
        else:
            ranks[idx[t]] = 1
    left_sq = np.empty(n + 1, dtype=np.int64)
    left_sq[0] = 0
    for t in range(n):
        left_sq[t + 1] = left_sq[t] + 2 * ranks[t] - 1
    # suffix sums of squares: the same scan over the reversed labels
    rev = lab[::-1].copy()
    ridx = np.argsort(rev, kind="mergesort")
    rranks = np.empty(n, dtype=np.int64)
    for t in range(n):
        if t > 0 and rev[ridx[t]] == rev[ridx[t - 1]]:
            rranks[ridx[t]] = rranks[ridx[t - 1]] + 1
        else:
            rranks[ridx[t]] = 1
    rev_sq = np.empty(n + 1, dtype=np.int64)
    rev_sq[0] = 0
    for t in range(n):
        rev_sq[t + 1] = rev_sq[t] + 2 * rranks[t] - 1
    m = n - 1 if n > 0 else 0
    idx_vals = np.empty(m, dtype=np.float64)
    valid = np.empty(m, dtype=np.bool_)
    for i in range(m):
        # cut after sorted position i puts i+1 points left; the suffix
        # square-sum of the right side is rev_sq[n - (i + 1)]
        idx_vals[i] = np.sqrt(float(left_sq[i + 1])) + np.sqrt(
            float(rev_sq[n - (i + 1)])
        )
        valid[i] = c[i] < c[i + 1]
    return order, valid, idx_vals
