"""Communication accounting.

Every simulated message is logged with its phase tag ("fe-halo",
"contact-exchange", "map-transfer", ...), endpoints, and item count.
Benchmarks read phase totals; tests assert per-rank symmetry (bytes
sent = bytes received across the job).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class PhaseTotals:
    """Aggregated traffic for one phase."""

    n_messages: int = 0
    n_items: int = 0

    def add(self, items: int) -> None:
        """Count one message of ``items`` data items."""
        self.n_messages += 1
        self.n_items += items


@dataclass
class CommLedger:
    """Ledger of all simulated communication in a run."""

    phases: Dict[str, PhaseTotals] = field(default_factory=dict)
    sent_by_rank: Dict[Tuple[str, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    received_by_rank: Dict[Tuple[str, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def record(self, phase: str, src: int, dst: int, items: int) -> None:
        """Log one message of ``items`` data items from src to dst."""
        if items < 0:
            raise ValueError("items must be >= 0")
        if src == dst:
            return  # local handoff — never counted as communication
        self.phases.setdefault(phase, PhaseTotals()).add(items)
        self.sent_by_rank[(phase, src)] += items
        self.received_by_rank[(phase, dst)] += items

    def items(self, phase: str) -> int:
        """Total items moved in ``phase`` (0 for unknown phases)."""
        totals = self.phases.get(phase)
        return totals.n_items if totals else 0

    def messages(self, phase: str) -> int:
        """Total messages in ``phase``."""
        totals = self.phases.get(phase)
        return totals.n_messages if totals else 0

    def total_items(self) -> int:
        """Items moved across all phases."""
        return sum(t.n_items for t in self.phases.values())

    def max_rank_send(self, phase: str, k: int) -> int:
        """Largest per-rank send volume in a phase (hot-spot check)."""
        return max(
            (self.sent_by_rank.get((phase, r), 0) for r in range(k)),
            default=0,
        )

    def summary(self) -> Dict[str, Tuple[int, int]]:
        """``{phase: (n_messages, n_items)}`` for reporting."""
        return {
            name: (t.n_messages, t.n_items)
            for name, t in sorted(self.phases.items())
        }
