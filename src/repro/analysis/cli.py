"""``repro-lint`` console entry point.

Examples::

    repro-lint src/repro              # lint the library, human output
    repro-lint --format json src      # machine-readable diagnostics
    repro-lint --format sarif src > lint.sarif
    repro-lint --select ARR001,RNG001 src/repro
    repro-lint --spmd src/repro tests # + project-level SPMD pass
    repro-lint --perf src/repro       # + PERF family + kernel certifier
    repro-lint --service src/repro    # + async/service correctness pass
    repro-lint --perf --trace-json smoke-trace.json src/repro
    repro-lint --perf --baseline lint-baseline.json src/repro
    repro-lint --statistics src/repro
    repro-lint --list-rules

With no paths the installed ``repro`` package is linted.  ``--spmd``
adds the project-level dataflow pass (SPMD001–003, DET001, FLOAT001 —
see ``docs/STATIC_ANALYSIS.md``); it analyses every target file as one
program, so pass the whole tree.  ``--perf`` adds the opt-in PERF
family plus the kernel-purity certifier (KERN001); ``--service`` adds
the async/service correctness pass (ASYNC001-003, TIME001, SM001/002,
TRUST001 — also whole-program, so pass the full tree); ``--trace-json``
takes a ``repro.run-report/1`` artifact and ranks the findings by
measured span self-time; ``--baseline`` subtracts a committed
baseline so only *new* findings fail.  Exit status: 0 when clean, 1
when diagnostics were found, 2 on usage errors (unknown rule code,
nonexistent path, malformed baseline or trace).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import LintEngine, all_rules
from repro.analysis.kernelcheck import audit_paths
from repro.analysis.perf import (
    PerfAnalyzer,
    load_self_times,
    rank_diagnostics,
)
from repro.analysis.reporters import (
    format_human,
    format_json,
    format_sarif,
    format_statistics,
)
from repro.analysis.servicecheck import ServiceAnalyzer
from repro.analysis.spmd import SpmdAnalyzer


def _split_codes(value: str) -> List[str]:
    return [c.strip() for c in value.split(",") if c.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser (shared with ``repro.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro partitioning core "
            "(see docs/STATIC_ANALYSIS.md for the rule catalogue)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        type=_split_codes,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        type=_split_codes,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="GLOB",
        help=(
            "fnmatch pattern of paths to skip (repeatable; e.g. "
            "'tests/analysis/spmd_fixtures/*')"
        ),
    )
    parser.add_argument(
        "--spmd",
        action="store_true",
        help=(
            "also run the project-level SPMD dataflow pass "
            "(SPMD001-003, DET001, FLOAT001) over the target set"
        ),
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help=(
            "also run the async/service correctness pass (ASYNC001-003, "
            "TIME001, SM001/SM002, TRUST001) over the target set"
        ),
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help=(
            "also run the opt-in PERF performance family "
            "(PERF001-005) and the kernel-purity certifier (KERN001)"
        ),
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help=(
            "repro.run-report/1 artifact; PERF findings are annotated "
            "and ranked by the measured span self-times"
        ),
    )
    parser.add_argument(
        "--kernel-audit",
        metavar="PATH",
        default=None,
        help=(
            "write the repro.kernel-audit/1 registry produced by the "
            "certifier to PATH (implies --perf)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "committed lint baseline (repro.lint-baseline/1); "
            "baselined findings are subtracted so only new ones fail"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help=(
            "write the current findings to PATH as a new baseline "
            "and exit 0 (KERN001/TRUST001/SM001/SM002 findings are "
            "never baselined)"
        ),
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-code counts (human format only)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit status."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<24} {rule.description}")
        return 0

    paths = args.paths
    if not paths:
        # default to the installed library so `repro-lint` and
        # `repro-contact lint` work from any directory
        import repro

        paths = [str(Path(repro.__file__).parent)]

    try:
        engine = LintEngine(select=args.select, ignore=args.ignore)
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    run_perf = args.perf or args.kernel_audit is not None

    try:
        diagnostics = engine.lint_paths(paths, exclude=args.exclude)
        if args.spmd:
            analyzer = SpmdAnalyzer(
                select=args.select, ignore=args.ignore
            )
            diagnostics = sorted(
                set(diagnostics)
                | set(analyzer.analyze_paths(paths, exclude=args.exclude))
            )
        if args.service:
            service = ServiceAnalyzer(
                select=args.select, ignore=args.ignore
            )
            diagnostics = sorted(
                set(diagnostics)
                | set(service.analyze_paths(paths, exclude=args.exclude))
            )
        if run_perf:
            try:
                perf = PerfAnalyzer(
                    select=args.select, ignore=args.ignore
                )
            except KeyError as exc:
                print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
                return 2
            extra = set(perf.analyze_paths(paths, exclude=args.exclude))
            audit = audit_paths(paths, exclude=args.exclude)
            extra |= set(audit.diagnostics())
            diagnostics = sorted(set(diagnostics) | extra)
            if args.kernel_audit is not None:
                audit.save(args.kernel_audit)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        n = write_baseline(args.write_baseline, diagnostics)
        print(
            f"repro-lint: wrote {n} baseline entries to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        try:
            known = load_baseline(args.baseline)
        except (OSError, BaselineError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        diagnostics, suppressed = apply_baseline(diagnostics, known)
        if suppressed:
            print(
                f"repro-lint: {suppressed} baselined finding(s) "
                f"suppressed via {args.baseline}",
                file=sys.stderr,
            )

    if args.trace_json is not None:
        try:
            self_times = load_self_times(args.trace_json)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        diagnostics = rank_diagnostics(diagnostics, self_times)

    if args.format == "json":
        print(format_json(diagnostics))
    elif args.format == "sarif":
        print(format_sarif(diagnostics))
    else:
        print(format_human(diagnostics))
        if args.statistics and diagnostics:
            print(format_statistics(diagnostics))
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
