"""``repro-lint`` console entry point.

Examples::

    repro-lint src/repro              # lint the library, human output
    repro-lint --format json src      # machine-readable diagnostics
    repro-lint --format sarif src > lint.sarif
    repro-lint --select ARR001,RNG001 src/repro
    repro-lint --spmd src/repro tests # + project-level SPMD pass
    repro-lint --statistics src/repro
    repro-lint --list-rules

With no paths the installed ``repro`` package is linted.  ``--spmd``
adds the project-level dataflow pass (SPMD001–003, DET001, FLOAT001 —
see ``docs/STATIC_ANALYSIS.md``); it analyses every target file as one
program, so pass the whole tree.  Exit status: 0 when clean, 1 when
diagnostics were found, 2 on usage errors (unknown rule code,
nonexistent path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import LintEngine, all_rules
from repro.analysis.reporters import (
    format_human,
    format_json,
    format_sarif,
    format_statistics,
)
from repro.analysis.spmd import SpmdAnalyzer


def _split_codes(value: str) -> List[str]:
    return [c.strip() for c in value.split(",") if c.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser (shared with ``repro.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro partitioning core "
            "(see docs/STATIC_ANALYSIS.md for the rule catalogue)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        type=_split_codes,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        type=_split_codes,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="GLOB",
        help=(
            "fnmatch pattern of paths to skip (repeatable; e.g. "
            "'tests/analysis/spmd_fixtures/*')"
        ),
    )
    parser.add_argument(
        "--spmd",
        action="store_true",
        help=(
            "also run the project-level SPMD dataflow pass "
            "(SPMD001-003, DET001, FLOAT001) over the target set"
        ),
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-code counts (human format only)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit status."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<24} {rule.description}")
        return 0

    paths = args.paths
    if not paths:
        # default to the installed library so `repro-lint` and
        # `repro-contact lint` work from any directory
        import repro

        paths = [str(Path(repro.__file__).parent)]

    try:
        engine = LintEngine(select=args.select, ignore=args.ignore)
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    try:
        diagnostics = engine.lint_paths(paths, exclude=args.exclude)
        if args.spmd:
            analyzer = SpmdAnalyzer(
                select=args.select, ignore=args.ignore
            )
            diagnostics = sorted(
                set(diagnostics)
                | set(analyzer.analyze_paths(paths, exclude=args.exclude))
            )
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(format_json(diagnostics))
    elif args.format == "sarif":
        print(format_sarif(diagnostics))
    else:
        print(format_human(diagnostics))
        if args.statistics and diagnostics:
            print(format_statistics(diagnostics))
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
