"""Coroutine-safety rule family: keep the event loop non-blocking.

The service front end (:mod:`repro.service`) is an asyncio program
whose correctness rests on conventions no runtime check enforces: the
event loop must never execute blocking I/O or acquire a thread lock
(every such call stalls *all* in-flight requests), every coroutine
must be awaited or scheduled, and state shared between the loop and
the executor threads needs a lock or a single-writer discipline.
This module checks those conventions statically, reusing the dataflow
summaries of :mod:`repro.analysis.dataflow` plus a light class-aware
call resolver (attribute types recovered from ``self.x = Cls()``
assignments, parameter annotations, and return annotations):

========  ===========================================================
ASYNC001  blocking call (file/socket I/O, ``time.sleep``,
          ``np.load``, blocking queue ops, ``threading.Lock``
          acquisition) reached from coroutine context without a
          ``run_in_executor`` hop
ASYNC002  coroutine called but never awaited or scheduled
ASYNC003  attribute or module global mutated from both coroutine and
          executor-thread context without a lock
TIME001   wall-clock ``time.time()`` mixed into deadline/backoff
          arithmetic where ``time.monotonic()`` is required
========  ===========================================================

Context discovery is conservative: every ``async def`` is loop
context, and so is every *resolvable* synchronous callee reachable
from one; executor context is the closure of callables handed to
``loop.run_in_executor`` or ``threading.Thread(target=...)``.  Names
the resolver cannot type are skipped, never guessed, so the family
under-approximates like the SPMD pass.  See
``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the suppression
grammar (``# repro-lint: disable=ASYNC001`` works like any other
code).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.dataflow import (
    CallSite,
    FunctionSummary,
    ModuleSummary,
    ProjectIndex,
    _resolve_captures,
    _ScopeVisitor,
    dotted_parts,
    dotted_text,
)
from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintRule,
    register_rule,
)

__all__ = [
    "BLOCKING_CALLS",
    "BLOCKING_METHOD_TAILS",
    "ClassInfo",
    "ServiceProject",
    "ServiceRule",
    "build_service_project",
    "expanded_call_name",
    "scope_walk",
]

#: expanded dotted call → what it blocks on (the ASYNC001 catalogue)
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "sleeps the whole event loop",
    "input": "blocks on stdin",
    "open": "file I/O",
    "io.open": "file I/O",
    "os.makedirs": "filesystem I/O",
    "os.remove": "filesystem I/O",
    "os.replace": "filesystem I/O",
    "os.rename": "filesystem I/O",
    "os.listdir": "filesystem I/O",
    "os.stat": "filesystem metadata I/O",
    "os.path.exists": "filesystem metadata I/O",
    "os.path.getsize": "filesystem metadata I/O",
    "os.path.realpath": "filesystem metadata I/O (symlink resolution)",
    "shutil.rmtree": "filesystem I/O",
    "shutil.copy": "filesystem I/O",
    "shutil.copyfile": "filesystem I/O",
    "shutil.move": "filesystem I/O",
    "socket.create_connection": "network I/O",
    "socket.getaddrinfo": "DNS resolution",
    "urllib.request.urlopen": "network I/O",
    "requests.get": "network I/O",
    "requests.post": "network I/O",
    "requests.request": "network I/O",
    "subprocess.run": "waits on a subprocess",
    "subprocess.call": "waits on a subprocess",
    "subprocess.check_call": "waits on a subprocess",
    "subprocess.check_output": "waits on a subprocess",
    "numpy.load": "file I/O",
    "numpy.save": "file I/O",
    "numpy.savez": "file I/O",
    "numpy.savez_compressed": "file I/O",
    "numpy.loadtxt": "file I/O",
    "numpy.genfromtxt": "file I/O",
    "numpy.fromfile": "file I/O",
    "repro.mesh.io.load_mesh": "mesh file I/O",
}

#: method tails that block regardless of receiver type (names chosen
#: to be unambiguous — ``.get``/``.put`` are *not* here, they need a
#: typed ``queue.Queue`` receiver)
BLOCKING_METHOD_TAILS: Dict[str, str] = {
    "read_text": "file I/O",
    "read_bytes": "file I/O",
    "write_text": "file I/O",
    "write_bytes": "file I/O",
}

#: constructors whose instances expose blocking .get/.put/.join
_BLOCKING_QUEUE_FACTORIES = frozenset(
    {"queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
     "multiprocessing.Queue", "multiprocessing.JoinableQueue"}
)
_BLOCKING_QUEUE_METHODS = frozenset({"get", "put", "join"})

_THREAD_LOCK_FACTORIES = frozenset(
    {"threading.Lock", "threading.RLock"}
)

_DEADLINE_KEYWORDS = (
    "deadline",
    "timeout",
    "expire",
    "backoff",
    "retry_after",
)


def expanded_call_name(summary: ModuleSummary, name: str) -> str:
    """Expand a dotted call name through the module's import aliases
    (``np.load`` → ``numpy.load``, ``sleep`` → ``time.sleep``)."""
    head, _, rest = name.partition(".")
    target = summary.imports.get(head)
    if target is None:
        return name
    return f"{target}.{rest}" if rest else target


def scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes
    (their statements belong to other :class:`FunctionSummary` s)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # nested defs are yielded but not entered
        stack.extend(ast.iter_child_nodes(node))


def _parent_map(root: ast.AST) -> Dict[int, ast.AST]:
    """``id(child) → parent`` within one function scope."""
    parents: Dict[int, ast.AST] = {}
    for node in scope_walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


# ----------------------------------------------------------------------
# class-aware layer on top of the dataflow summaries
# ----------------------------------------------------------------------


@dataclass
class ClassInfo:
    """What the resolver knows about one module-level class."""

    module: str
    name: str
    #: bare method name → summary (dataflow walks class bodies in the
    #: enclosing scope, so methods land in ``top_level_functions``)
    methods: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: ``self.x`` attributes assigned a ``threading.Lock``/``RLock``
    lock_attrs: Set[str] = field(default_factory=set)
    #: ``self.x`` attribute → (module, class) of its resolved type
    attr_types: Dict[str, Tuple[str, str]] = field(default_factory=dict)


@dataclass
class ServiceProject:
    """Everything the service rules inspect about one analysed tree."""

    index: ProjectIndex
    #: path → parsed file context (suppressions and anchoring)
    contexts: Dict[str, FileContext]
    #: authoritative (module, qualname) → summary map.  The dataflow
    #: index walks class bodies in module scope, so two classes with a
    #: same-named method collide there; methods are re-summarised here
    #: under ``Class.method`` qualnames instead.
    functions: Dict[Tuple[str, str], FunctionSummary] = field(
        default_factory=dict
    )
    #: id(fn node) → authoritative summary, to canonicalise whatever
    #: the index resolver returns
    by_node: Dict[int, FunctionSummary] = field(default_factory=dict)
    #: (module, name) → class info, for every module-level class
    classes: Dict[Tuple[str, str], ClassInfo] = field(default_factory=dict)
    #: (module, qualname) → owning class name (methods only)
    owner_class: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: every ``async def`` in definition order
    coroutines: List[FunctionSummary] = field(default_factory=list)
    #: loop context: coroutines plus resolvable sync callees; the value
    #: is the coroutine root each function was first reached from
    loop_functions: Dict[Tuple[str, str], FunctionSummary] = field(
        default_factory=dict
    )
    #: executor context: run_in_executor / Thread targets + closure
    executor_functions: Dict[Tuple[str, str], FunctionSummary] = field(
        default_factory=dict
    )

    def summary_of(self, key: Tuple[str, str]) -> Optional[FunctionSummary]:
        return self.functions.get(key)

    def canonical(self, fn: FunctionSummary) -> FunctionSummary:
        """The authoritative summary for the same function node."""
        return self.by_node.get(id(fn.node), fn)

    def class_of(self, fn: FunctionSummary) -> Optional[ClassInfo]:
        name = self.owner_class.get((fn.module, fn.qualname))
        if name is None:
            return None
        return self.classes.get((fn.module, name))

    def in_loop(self, fn: FunctionSummary) -> bool:
        return (fn.module, fn.qualname) in self.loop_functions

    def in_executor(self, fn: FunctionSummary) -> bool:
        return (fn.module, fn.qualname) in self.executor_functions


def _annotation_class_name(node: Optional[ast.AST]) -> Optional[str]:
    """Class name out of an annotation, unwrapping ``Optional[...]``
    and one-element ``Union``-like subscripts; ``None`` when opaque."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return dotted_text(node)
    if isinstance(node, ast.Subscript):
        head = dotted_text(node.value)
        if head is not None and head.rsplit(".", 1)[-1] == "Optional":
            return _annotation_class_name(node.slice)
    return None


class _Resolver:
    """Typed name resolution shared by every service rule."""

    _DEPTH = 6

    def __init__(self, project: ServiceProject) -> None:
        self.project = project

    # -- classes -------------------------------------------------------
    def resolve_class(
        self, module: str, name: Optional[str]
    ) -> Optional[ClassInfo]:
        """A (possibly dotted or imported) class name seen in
        ``module`` → its :class:`ClassInfo`, or ``None``."""
        if name is None:
            return None
        summary = self.project.index.modules.get(module)
        if summary is None:
            return None
        parts = name.split(".")
        if len(parts) == 1:
            info = self.project.classes.get((module, name))
            if info is not None:
                return info
            target = summary.imports.get(name)
            if target is not None:
                mod, _, cls = target.rpartition(".")
                return self.project.classes.get((mod, cls))
            return None
        target = summary.imports.get(parts[0])
        if target is not None and len(parts) == 2:
            return self.project.classes.get((target, parts[1]))
        return None

    # -- expression types ----------------------------------------------
    def expr_class(
        self, fn: FunctionSummary, expr: ast.AST, depth: int = 0
    ) -> Optional[ClassInfo]:
        """The project class an expression evaluates to, if provable."""
        if depth > self._DEPTH:
            return None
        if isinstance(expr, ast.Call):
            name = dotted_text(expr.func)
            info = self.resolve_class(fn.module, name)
            if info is not None:
                return info
            for target in self.resolve_call_targets(
                fn, name, follow_types=False
            ):
                node = target.node
                returns = getattr(node, "returns", None)
                info = self.resolve_class(
                    target.module, _annotation_class_name(returns)
                )
                if info is not None:
                    return info
            return None
        if isinstance(expr, ast.Name):
            return self.name_class(fn, expr.id, depth + 1)
        if isinstance(expr, ast.Attribute):
            parts = dotted_parts(expr)
            if parts is not None:
                return self.chain_class(fn, parts, depth + 1)
        return None

    def name_class(
        self, fn: FunctionSummary, name: str, depth: int = 0
    ) -> Optional[ClassInfo]:
        if depth > self._DEPTH:
            return None
        binding = fn.lookup_binding(name)
        if binding is not None:
            info = self.expr_class(fn, binding, depth + 1)
            if info is not None:
                return info
        if name in fn.params:
            args = getattr(fn.node, "args", None)
            if args is not None:
                for a in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                ):
                    if a.arg == name:
                        return self.resolve_class(
                            fn.module, _annotation_class_name(a.annotation)
                        )
        return None

    def chain_class(
        self, fn: FunctionSummary, parts: Sequence[str], depth: int = 0
    ) -> Optional[ClassInfo]:
        """Type of a dotted receiver chain (``self.engine.queue``)."""
        if depth > self._DEPTH or not parts:
            return None
        if parts[0] in ("self", "cls"):
            info = self.project.class_of(fn)
        else:
            info = self.name_class(fn, parts[0], depth + 1)
        for attr in parts[1:]:
            if info is None:
                return None
            typed = info.attr_types.get(attr)
            info = self.project.classes.get(typed) if typed else None
        return info

    # -- call targets --------------------------------------------------
    def resolve_call_targets(
        self,
        fn: FunctionSummary,
        name: Optional[str],
        follow_types: bool = True,
    ) -> List[FunctionSummary]:
        """Every function summary a dotted call may reach: the dataflow
        resolution (bare names, import aliases, nested defs) plus the
        typed method resolution (``self.x.m()`` through attribute and
        annotation types)."""
        if name is None:
            return []
        direct = self.project.index._resolve_from(fn, name)
        if direct is not None:
            return [self.project.canonical(direct)]
        parts = name.split(".")
        if len(parts) < 2 or not follow_types:
            return []
        owner = self.chain_class(fn, parts[:-1])
        if owner is None:
            return []
        method = owner.methods.get(parts[-1])
        return [method] if method is not None else []

    def resolve_callable_expr(
        self, fn: FunctionSummary, expr: ast.AST
    ) -> List[FunctionSummary]:
        """A callable *reference* (run_in_executor / Thread target)."""
        if isinstance(expr, (ast.Name, ast.Attribute)):
            return self.resolve_call_targets(fn, dotted_text(expr))
        if isinstance(expr, ast.Call):
            # functools.partial(fn, ...) and friends
            tail = dotted_parts(expr.func)
            if tail and tail[-1] == "partial" and expr.args:
                return self.resolve_callable_expr(fn, expr.args[0])
        return []


# ----------------------------------------------------------------------
# project construction
# ----------------------------------------------------------------------


def _is_lock_factory(summary: ModuleSummary, value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = dotted_text(value.func)
    if name is None:
        return False
    return expanded_call_name(summary, name) in _THREAD_LOCK_FACTORIES


def _resummarize_class(
    summary: ModuleSummary, cls: ast.ClassDef
) -> Dict[str, FunctionSummary]:
    """Fresh summaries for one class body, qualified ``Class.method``.

    The shared index walks class bodies in module scope, so methods of
    different classes with the same name overwrite each other there;
    running the scope visitor per class keeps each method's summary
    (and its nested functions) intact.
    """
    temp = ModuleSummary(
        module=summary.module, path=summary.path, tree=summary.tree
    )
    temp.imports = dict(summary.imports)
    temp.module_bindings = dict(summary.module_bindings)
    temp.top_level_functions = set(summary.top_level_functions)
    visitor = _ScopeVisitor(temp)
    for child in cls.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visitor.visit(child)
    _resolve_captures(temp)
    out: Dict[str, FunctionSummary] = {}
    for qualname, fn in temp.functions.items():
        fn.qualname = f"{cls.name}.{qualname}"
        out[qualname] = fn
    return out


def _collect_classes(
    index: ProjectIndex, project: ServiceProject
) -> None:
    """Build the authoritative function map, :class:`ClassInfo`
    records, and the method-owner map."""
    for module in sorted(index.modules):
        summary = index.modules[module]
        for fn in summary.functions.values():
            key = (fn.module, fn.qualname)
            project.functions[key] = fn
            project.by_node[id(fn.node)] = fn
        for stmt in summary.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            info = ClassInfo(module=summary.module, name=stmt.name)
            resummarized = _resummarize_class(summary, stmt)
            for qualname, fn in resummarized.items():
                # drop the collision-prone bare entry for this node …
                stale = project.by_node.get(id(fn.node))
                if stale is not None:
                    project.functions.pop(
                        (stale.module, stale.qualname), None
                    )
                # … and install the Class.method-qualified summary
                project.functions[(fn.module, fn.qualname)] = fn
                project.by_node[id(fn.node)] = fn
                project.owner_class[(fn.module, fn.qualname)] = stmt.name
                if "." not in qualname:  # direct method, not nested
                    info.methods[fn.name] = fn
            project.classes[(summary.module, stmt.name)] = info

    # second pass: attribute types and lock attributes (needs every
    # class registered first so annotations resolve across modules)
    resolver = _Resolver(project)
    for (module, _name), info in project.classes.items():
        summary = index.modules[module]
        for method in info.methods.values():
            for node in scope_walk(method.node):
                target: Optional[ast.AST] = None
                value: Optional[ast.AST] = None
                annotation: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    annotation = node.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if value is not None and _is_lock_factory(summary, value):
                    info.lock_attrs.add(attr)
                    continue
                typed: Optional[ClassInfo] = None
                if annotation is not None:
                    typed = resolver.resolve_class(
                        module, _annotation_class_name(annotation)
                    )
                if typed is None and value is not None:
                    typed = resolver.expr_class(method, value)
                if typed is not None and attr not in info.attr_types:
                    info.attr_types[attr] = (typed.module, typed.name)


def _iter_functions(project: ServiceProject) -> Iterator[FunctionSummary]:
    for key in sorted(project.functions):
        yield project.functions[key]


def _close_over(
    project: ServiceProject,
    resolver: _Resolver,
    roots: Iterable[Tuple[FunctionSummary, FunctionSummary]],
    out: Dict[Tuple[str, str], FunctionSummary],
) -> None:
    """Reachability over *synchronous* callees: coroutines met along
    the way are their own roots, so the walk stops at them."""
    stack = list(roots)
    while stack:
        fn, root = stack.pop(0)
        key = (fn.module, fn.qualname)
        if key in out:
            continue
        out[key] = root
        for call in fn.calls:
            for target in resolver.resolve_call_targets(fn, call.name):
                if isinstance(target.node, ast.AsyncFunctionDef):
                    continue
                if (target.module, target.qualname) not in out:
                    stack.append((target, root))


def build_service_project(
    index: ProjectIndex, contexts: Dict[str, FileContext]
) -> ServiceProject:
    """Classify every function as loop / executor / neither context."""
    project = ServiceProject(index=index, contexts=contexts)
    _collect_classes(index, project)
    resolver = _Resolver(project)

    for fn in _iter_functions(project):
        if isinstance(fn.node, ast.AsyncFunctionDef):
            project.coroutines.append(fn)

    _close_over(
        project,
        resolver,
        ((fn, fn) for fn in project.coroutines),
        project.loop_functions,
    )

    executor_roots: List[Tuple[FunctionSummary, FunctionSummary]] = []
    for fn in _iter_functions(project):
        if not isinstance(
            fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        # AST walk rather than fn.calls: chained receivers like
        # `asyncio.get_event_loop().run_in_executor(...)` have no
        # dotted name, so the dataflow visitor never records them
        for node in scope_walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                tail = node.func.attr
            elif isinstance(node.func, ast.Name):
                tail = node.func.id
            else:
                continue
            expr: Optional[ast.AST] = None
            if tail == "run_in_executor" and len(node.args) >= 2:
                expr = node.args[1]
            elif tail == "Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        expr = kw.value
            if expr is None:
                continue
            for target in resolver.resolve_callable_expr(fn, expr):
                executor_roots.append((target, target))
    _close_over(
        project, resolver, executor_roots, project.executor_functions
    )
    return project


# ----------------------------------------------------------------------
# rule machinery
# ----------------------------------------------------------------------


class ServiceRule(LintRule):
    """Base for the project-level service correctness rules.

    The per-file :meth:`check` is a no-op; the
    :class:`~repro.analysis.servicecheck.ServiceAnalyzer` drives
    :meth:`project_check` with a shared :class:`ServiceProject`.
    """

    opt_in = True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        return ()

    def project_check(
        self, project: ServiceProject
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def fn_diag(
        self, fn: FunctionSummary, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=fn.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


def _is_lockish(project: ServiceProject, fn: FunctionSummary, expr: ast.AST) -> bool:
    """Whether a ``with`` context expression names a lock: a known
    lock attribute of the function's class, a local bound to a
    ``threading.Lock()``, or any name containing ``lock``."""
    parts = dotted_parts(expr)
    if parts is None and isinstance(expr, ast.Call):
        parts = dotted_parts(expr.func)
    if parts is None:
        return False
    info = project.class_of(fn)
    if (
        info is not None
        and len(parts) == 2
        and parts[0] in ("self", "cls")
        and parts[1] in info.lock_attrs
    ):
        return True
    if len(parts) == 1:
        binding = fn.lookup_binding(parts[0])
        summary = project.index.modules.get(fn.module)
        if (
            binding is not None
            and summary is not None
            and _is_lock_factory(summary, binding)
        ):
            return True
    return any("lock" in p.lower() for p in parts)


def _protected_by_lock(
    project: ServiceProject,
    fn: FunctionSummary,
    parents: Dict[int, ast.AST],
    node: ast.AST,
) -> bool:
    """Whether ``node`` sits inside a ``with <lock>:`` block."""
    cur: Optional[ast.AST] = node
    while cur is not None:
        parent = parents.get(id(cur))
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            for item in parent.items:
                if _is_lockish(project, fn, item.context_expr):
                    return True
        cur = parent
    return False


# ----------------------------------------------------------------------
# ASYNC001 — blocking call in coroutine context
# ----------------------------------------------------------------------


def _blocking_reason(
    project: ServiceProject, fn: FunctionSummary, call: CallSite
) -> Optional[str]:
    """Why this call blocks, or ``None`` when it does not."""
    summary = project.index.modules.get(fn.module)
    if summary is None:
        return None
    expanded = expanded_call_name(summary, call.name)
    reason = BLOCKING_CALLS.get(expanded)
    if reason is not None:
        return f"{expanded}(...) ({reason})"
    parts = call.name.split(".")
    if len(parts) < 2:
        return None
    tail = parts[-1]
    reason = BLOCKING_METHOD_TAILS.get(tail)
    if reason is not None:
        return f".{tail}(...) ({reason})"
    if tail in _BLOCKING_QUEUE_METHODS and len(parts) == 2:
        binding = fn.lookup_binding(parts[0])
        if (
            binding is not None
            and isinstance(binding, ast.Call)
            and expanded_call_name(
                summary, dotted_text(binding.func) or ""
            )
            in _BLOCKING_QUEUE_FACTORIES
        ):
            return f"{call.name}(...) (blocking queue operation)"
    if tail == "acquire" and _is_lockish(
        project, fn, call.node.func.value  # type: ignore[attr-defined]
    ):
        return f"{call.name}() (thread-lock acquisition)"
    return None


@register_rule
class BlockingCallRule(ServiceRule):
    """ASYNC001 — blocking call reached from coroutine context.

    A blocking call anywhere in the synchronous closure of a coroutine
    stalls every other in-flight request on the loop.  The fix is an
    ``await loop.run_in_executor(None, fn, ...)`` hop — functions only
    reachable through one are executor context and exempt.
    """

    code = "ASYNC001"
    name = "async-blocking-call"
    description = "blocking call reached from coroutine context"

    def project_check(
        self, project: ServiceProject
    ) -> Iterator[Diagnostic]:
        for key in sorted(project.loop_functions):
            fn = project.summary_of(key)
            if fn is None:
                continue
            root = project.loop_functions[key]
            via = (
                ""
                if root is fn
                else f" via coroutine '{root.name}' ({root.module})"
            )
            for call in fn.calls:
                reason = _blocking_reason(project, fn, call)
                if reason is not None:
                    yield self.fn_diag(
                        fn,
                        call.node,
                        f"blocking call {reason} on the event loop"
                        f"{via}; route it through run_in_executor",
                    )
            # `with <threading lock>:` blocks the loop exactly like I/O
            # (an executor thread may hold the lock arbitrarily long)
            if not isinstance(
                fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for node in scope_walk(fn.node):
                if not isinstance(node, ast.With):
                    continue
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        continue  # tracer spans etc., not bare locks
                    if _is_lockish(project, fn, expr):
                        name = dotted_text(expr) or "<lock>"
                        yield self.fn_diag(
                            fn,
                            node,
                            f"thread-lock acquisition 'with {name}:' "
                            f"on the event loop{via}; executor threads "
                            "may hold it — route the critical section "
                            "through run_in_executor",
                        )


# ----------------------------------------------------------------------
# ASYNC002 — coroutine called but never awaited
# ----------------------------------------------------------------------


@register_rule
class UnawaitedCoroutineRule(ServiceRule):
    """ASYNC002 — a coroutine call whose result is discarded.

    ``coro()`` as a bare statement builds a coroutine object and drops
    it: the body never runs.  It must be awaited, or scheduled via
    ``create_task`` / ``ensure_future`` / ``gather`` / ``run``.
    """

    code = "ASYNC002"
    name = "async-unawaited-coroutine"
    description = "coroutine called but never awaited or scheduled"

    def project_check(
        self, project: ServiceProject
    ) -> Iterator[Diagnostic]:
        resolver = _Resolver(project)
        for fn in _iter_functions(project):
            if not isinstance(
                fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for node in scope_walk(fn.node):
                if not isinstance(node, ast.Expr) or not isinstance(
                    node.value, ast.Call
                ):
                    continue
                call = node.value
                name = dotted_text(call.func)
                if name is None:
                    continue
                targets = resolver.resolve_call_targets(fn, name)
                if len(targets) != 1 or not isinstance(
                    targets[0].node, ast.AsyncFunctionDef
                ):
                    continue
                yield self.fn_diag(
                    fn,
                    call,
                    f"coroutine '{targets[0].name}' is called but the "
                    "result is discarded — await it or schedule it "
                    "with asyncio.create_task(...)",
                )


# ----------------------------------------------------------------------
# ASYNC003 — state shared across loop and executor contexts
# ----------------------------------------------------------------------


@register_rule
class CrossContextStateRule(ServiceRule):
    """ASYNC003 — unlocked state mutated from both contexts.

    Coroutines all run on the loop thread, so loop-only mutation needs
    no lock; executor threads run concurrently with the loop *and*
    each other.  An attribute (or module global) mutated on both sides
    must hold a lock on every unprotected site.
    """

    code = "ASYNC003"
    name = "async-cross-context-state"
    description = (
        "state mutated from both coroutine and executor context "
        "without a lock"
    )

    _Site = Tuple[FunctionSummary, ast.AST, bool]  # fn, node, locked

    def _mutation_sites(
        self,
        project: ServiceProject,
        keys: Iterable[Tuple[str, str]],
    ) -> Dict[Tuple[str, str, str], List["CrossContextStateRule._Site"]]:
        """(module, class-or-'', attr) → mutation sites in ``keys``."""
        sites: Dict[
            Tuple[str, str, str], List[CrossContextStateRule._Site]
        ] = {}
        for key in sorted(keys):
            fn = project.summary_of(key)
            if fn is None or not isinstance(
                fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            parents = _parent_map(fn.node)
            info = project.class_of(fn)
            for mut in fn.mutations:
                state_key: Optional[Tuple[str, str, str]] = None
                if (
                    mut.chain[0] in ("self", "cls")
                    and len(mut.chain) >= 2
                    and info is not None
                ):
                    state_key = (fn.module, info.name, mut.chain[1])
                elif (
                    len(mut.chain) == 1
                    and mut.kind in ("augassign", "assign")
                    and (
                        mut.chain[0] in fn.global_decls
                        or mut.chain[0] in fn.global_reads
                    )
                ):
                    state_key = (fn.module, "", mut.chain[0])
                if state_key is None:
                    continue
                locked = _protected_by_lock(
                    project, fn, parents, mut.node
                )
                sites.setdefault(state_key, []).append(
                    (fn, mut.node, locked)
                )
        return sites

    def project_check(
        self, project: ServiceProject
    ) -> Iterator[Diagnostic]:
        loop_sites = self._mutation_sites(
            project, project.loop_functions
        )
        exec_sites = self._mutation_sites(
            project, project.executor_functions
        )
        for state_key in sorted(set(loop_sites) & set(exec_sites)):
            module, cls, attr = state_key
            shown = f"self.{attr}" if cls else attr
            other = exec_sites[state_key][0][0]
            emitted: Set[Tuple[str, int]] = set()
            for fn, node, locked in (
                loop_sites[state_key] + exec_sites[state_key]
            ):
                if locked:
                    continue
                anchor = (fn.path, getattr(node, "lineno", 1))
                if anchor in emitted:
                    continue
                emitted.add(anchor)
                yield self.fn_diag(
                    fn,
                    node,
                    f"'{shown}' ({module}.{cls or attr}) is mutated "
                    f"from both coroutine and executor context (e.g. "
                    f"'{other.name}') — this site holds no lock",
                )


# ----------------------------------------------------------------------
# TIME001 — wall clock in deadline arithmetic
# ----------------------------------------------------------------------


def _is_deadline_name(name: Optional[str]) -> bool:
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return any(k in tail for k in _DEADLINE_KEYWORDS)


def _mentions_monotonic(
    summary: ModuleSummary, fn: Optional[FunctionSummary], expr: ast.AST
) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = dotted_text(node.func)
            if (
                name is not None
                and expanded_call_name(summary, name) == "time.monotonic"
            ):
                return True
        if isinstance(node, ast.Name) and fn is not None:
            binding = fn.lookup_binding(node.id)
            if (
                binding is not None
                and binding is not expr
                and isinstance(binding, ast.Call)
            ):
                bname = dotted_text(binding.func)
                if (
                    bname is not None
                    and expanded_call_name(summary, bname)
                    == "time.monotonic"
                ):
                    return True
    return False


def _mentions_deadline(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, (ast.Name, ast.Attribute)):
            if _is_deadline_name(dotted_text(node)):
                return True
    return False


@register_rule
class WallClockDeadlineRule(ServiceRule):
    """TIME001 — ``time.time()`` feeding deadline/backoff arithmetic.

    Wall clocks jump (NTP, DST, manual adjustment); a deadline or
    backoff computed from ``time.time()`` can fire years early or
    never.  Deadline arithmetic must use ``time.monotonic()`` —
    wall-clock reads are fine for timestamps that are only recorded.
    """

    code = "TIME001"
    name = "wall-clock-deadline"
    description = (
        "wall-clock time.time() used in deadline/backoff arithmetic"
    )

    def project_check(
        self, project: ServiceProject
    ) -> Iterator[Diagnostic]:
        for module in sorted(project.index.modules):
            summary = project.index.modules[module]
            # project.functions holds the collision-corrected method
            # summaries (Class.method qualnames), unlike the raw index
            fn_by_node = {
                id(f.node): f
                for (mod, _), f in project.functions.items()
                if mod == module
            }
            yield from self._check_scope(
                project, summary, None, summary.tree, fn_by_node
            )

    def _check_scope(
        self,
        project: ServiceProject,
        summary: ModuleSummary,
        fn: Optional[FunctionSummary],
        root: ast.AST,
        fn_by_node: Dict[int, FunctionSummary],
    ) -> Iterator[Diagnostic]:
        parents = _parent_map(root)
        for node in scope_walk(root):
            child_fn = fn_by_node.get(id(node))
            if child_fn is not None and node is not root:
                yield from self._check_scope(
                    project, summary, child_fn, node, fn_by_node
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = dotted_text(node.func)
            if (
                name is None
                or expanded_call_name(summary, name) != "time.time"
            ):
                continue
            offense = self._offending_use(summary, fn, parents, node)
            if offense is not None:
                yield Diagnostic(
                    path=summary.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code=self.code,
                    message=(
                        f"wall-clock time.time() {offense} — use "
                        "time.monotonic() for deadline/backoff "
                        "arithmetic"
                    ),
                )

    @staticmethod
    def _offending_use(
        summary: ModuleSummary,
        fn: Optional[FunctionSummary],
        parents: Dict[int, ast.AST],
        call: ast.Call,
    ) -> Optional[str]:
        cur: ast.AST = call
        while True:
            parent = parents.get(id(cur))
            if parent is None:
                return None
            if isinstance(parent, (ast.BinOp, ast.Compare, ast.IfExp)):
                siblings: List[ast.AST] = [
                    child
                    for child in ast.iter_child_nodes(parent)
                    if child is not cur
                    and not isinstance(
                        child, (ast.operator, ast.cmpop, ast.boolop)
                    )
                ]
                for sib in siblings:
                    if _mentions_monotonic(summary, fn, sib):
                        return "mixed with a time.monotonic() value"
                    if _mentions_deadline(sib):
                        return "compared/combined with a deadline value"
            if isinstance(parent, ast.keyword) and _is_deadline_name(
                parent.arg
            ):
                return f"passed as {parent.arg!r}"
            if isinstance(parent, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    parent.targets
                    if isinstance(parent, ast.Assign)
                    else [parent.target]
                )
                for target in targets:
                    if _is_deadline_name(dotted_text(target)):
                        return (
                            f"assigned to "
                            f"{dotted_text(target)!r}"
                        )
                return None
            if isinstance(parent, ast.stmt):
                return None
            cur = parent
