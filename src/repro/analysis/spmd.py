"""SPMD-safety rule family: prove supersteps race-free and deterministic.

The execution backends (:mod:`repro.runtime.backends`) only stay
bit-identical to the serial reference because superstep functions obey
contracts nothing enforces at runtime: mutate only ``ctx.state``, draw
randomness from per-rank generators, stay picklable for the process
pool, and keep every value that feeds a send or reduction
deterministic.  This module checks those contracts statically.

Unlike the per-file rules of :mod:`repro.analysis.rules`, the SPMD
family is a *project-level* pass: :class:`SpmdAnalyzer` parses the
whole target set, finds every superstep handed to ``spmd_run`` or
``session.step`` (direct references, lambdas, ``functools.partial``
and :class:`~repro.runtime.faults.ChaosStep` wrappers, and nested
functions), closes over the call graph, and runs the rules over the
reachable rank code:

========  ===========================================================
SPMD001   superstep mutates a captured or global mutable (thread race)
SPMD002   module-level RNG (``np.random.*`` / ``random.*``) in rank code
SPMD003   closure captures a provably non-picklable object
DET001    nondeterminism source in rank/coordinator code
FLOAT001  float accumulation over an unordered container
========  ===========================================================

Every finding is validated dynamically by the race sentinel
(:mod:`repro.runtime.backends.sentinel`) in the test suite; see
``docs/STATIC_ANALYSIS.md`` for the offending/clean example catalogue.
The analysis is conservative: names it cannot resolve are never
guessed, so it under-approximates (no finding is emitted on code it
cannot prove reaches a rank).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.dataflow import (
    FunctionSummary,
    ModuleSummary,
    Mutation,
    ProjectIndex,
    dotted_parts,
)
from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintEngine,
    LintRule,
    all_rules,
    build_file_context,
    module_name_for,
    register_rule,
)

#: receiver names always treated as SPMD sessions (besides variables
#: provably assigned from an ``open_session(...)`` call)
SESSION_NAMES = frozenset({"sess", "session", "spmd_session"})

#: nondeterministic time/entropy calls (dotted form)
_DET_CALLS = frozenset(
    {
        "os.urandom",
        "os.getpid",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)
_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: factory calls whose results never survive ``pickle.dumps``
_NONPICKLABLE_FACTORIES = {
    "open": "a file handle",
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "an event",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "multiprocessing.Lock": "a lock",
    "multiprocessing.RLock": "a lock",
    "socket.socket": "a socket",
}


@dataclass
class SuperstepSite:
    """One superstep function plus where it was handed to the runtime."""

    fn: FunctionSummary
    site: ast.AST
    site_module: str
    site_path: str


@dataclass
class SpmdProject:
    """Everything the SPMD rules inspect about one analysed tree."""

    index: ProjectIndex
    #: path → parsed file context (for suppressions and anchoring)
    contexts: Dict[str, FileContext]
    supersteps: List[SuperstepSite] = field(default_factory=list)
    #: supersteps plus everything they transitively call (deduplicated)
    rank_functions: List[FunctionSummary] = field(default_factory=list)
    #: functions that register supersteps (``session.step``/``spmd_run``
    #: call sites) — the merge side of the determinism contract
    coordinators: List[FunctionSummary] = field(default_factory=list)

    def module_of(self, fn: FunctionSummary) -> ModuleSummary:
        return self.index.modules[fn.module]

    def is_superstep(self, fn: FunctionSummary) -> bool:
        return any(
            s.fn.module == fn.module and s.fn.qualname == fn.qualname
            for s in self.supersteps
        )


# ----------------------------------------------------------------------
# superstep discovery
# ----------------------------------------------------------------------


def _iter_calls_with_scope(
    summary: ModuleSummary,
) -> Iterator[Tuple[ast.Call, Optional[FunctionSummary]]]:
    """Every call expression in the module, paired with its enclosing
    function summary (``None`` at module level)."""
    fn_by_node = {id(f.node): f for f in summary.functions.values()}

    def rec(
        node: ast.AST, scope: Optional[FunctionSummary]
    ) -> Iterator[Tuple[ast.Call, Optional[FunctionSummary]]]:
        for child in ast.iter_child_nodes(node):
            child_scope = fn_by_node.get(id(child), scope)
            if isinstance(child, ast.Call):
                yield child, scope
            for item in rec(child, child_scope):
                yield item

    return rec(summary.tree, None)


#: wrapper factories whose first argument is the real superstep; the
#: resolver looks through them (functools.partial, and the fault
#: harness's ChaosStep / retry-disarm wrapper)
STEP_WRAPPER_NAMES = frozenset({"partial", "ChaosStep", "_disarm_step"})


def _callee_tail(node: ast.Call) -> Optional[str]:
    parts = dotted_parts(node.func)
    return parts[-1] if parts else None


def _resolve_step_expr(
    index: ProjectIndex,
    summary: ModuleSummary,
    scope: Optional[FunctionSummary],
    expr: ast.AST,
) -> Optional[FunctionSummary]:
    """Resolve an expression passed as a superstep to its summary."""
    if isinstance(expr, ast.Lambda):
        for fn in summary.functions.values():
            if fn.node is expr:
                return fn
        return None
    if isinstance(expr, ast.Call):
        tail = _callee_tail(expr)
        if tail in STEP_WRAPPER_NAMES and expr.args:
            return _resolve_step_expr(index, summary, scope, expr.args[0])
        return None
    if isinstance(expr, ast.Name):
        s = scope
        while s is not None:
            nested = summary.functions.get(
                f"{s.qualname}.<locals>.{expr.id}"
            )
            if nested is not None:
                return nested
            binding = s.bindings.get(expr.id)
            if binding is not None and binding is not expr:
                resolved = _resolve_step_expr(index, summary, s, binding)
                if resolved is not None:
                    return resolved
            s = s.parent
        return index.resolve_function(summary.module, expr.id)
    if isinstance(expr, ast.Attribute):
        parts = dotted_parts(expr)
        if parts is not None:
            return index.resolve_function(summary.module, ".".join(parts))
    return None


def _step_exprs_of_call(
    call: ast.Call,
    summary: ModuleSummary,
    scope: Optional[FunctionSummary],
) -> List[ast.AST]:
    """Superstep expressions registered by ``call`` (empty when the
    call is not a registration site)."""
    tail = _callee_tail(call)
    if tail == "spmd_run":
        steps: Optional[ast.AST] = None
        if len(call.args) >= 2:
            steps = call.args[1]
        for kw in call.keywords:
            if kw.arg == "supersteps":
                steps = kw.value
        if isinstance(steps, ast.Name):
            bound = (
                scope.lookup_binding(steps.id)
                if scope is not None
                else None
            )
            if bound is None:
                bound = summary.module_bindings.get(steps.id)
            steps = bound
        if isinstance(steps, (ast.List, ast.Tuple)):
            return list(steps.elts)
        return []
    if tail == "step" and isinstance(call.func, ast.Attribute):
        recv = call.func.value
        is_session = False
        if isinstance(recv, ast.Name):
            is_session = (
                recv.id in SESSION_NAMES
                or recv.id in summary.session_names
            )
        elif isinstance(recv, ast.Call):
            recv_tail = _callee_tail(recv)
            is_session = recv_tail == "open_session"
        if is_session and call.args:
            return [call.args[0]]
    return []


def build_project(
    index: ProjectIndex, contexts: Dict[str, FileContext]
) -> SpmdProject:
    """Locate supersteps, close over the call graph, find coordinators."""
    project = SpmdProject(index=index, contexts=contexts)
    roots: List[FunctionSummary] = []
    seen_roots: Set[Tuple[str, str]] = set()
    coord_seen: Set[Tuple[str, str]] = set()
    for summary in index.modules.values():
        for call, scope in _iter_calls_with_scope(summary):
            exprs = _step_exprs_of_call(call, summary, scope)
            if not exprs:
                continue
            if scope is not None:
                key = (scope.module, scope.qualname)
                if key not in coord_seen:
                    coord_seen.add(key)
                    project.coordinators.append(scope)
            for expr in exprs:
                fn = _resolve_step_expr(index, summary, scope, expr)
                if fn is None:
                    continue
                project.supersteps.append(
                    SuperstepSite(
                        fn=fn,
                        site=expr,
                        site_module=summary.module,
                        site_path=summary.path,
                    )
                )
                key = (fn.module, fn.qualname)
                if key not in seen_roots:
                    seen_roots.add(key)
                    roots.append(fn)
    project.rank_functions = index.reachable(roots)
    return project


# ----------------------------------------------------------------------
# rule machinery
# ----------------------------------------------------------------------


class SpmdRule(LintRule):
    """Base for project-level SPMD rules.

    The per-file :meth:`check` is a no-op (these rules need the whole
    project); :class:`SpmdAnalyzer` drives :meth:`project_check`.
    """

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        return ()

    def project_check(self, project: SpmdProject) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def fn_diag(
        self, fn: FunctionSummary, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=fn.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


def spmd_rules() -> List[SpmdRule]:
    """The registered project-level rules, sorted by code."""
    return [r for r in all_rules() if isinstance(r, SpmdRule)]


def _ctx_param(fn: FunctionSummary) -> Optional[str]:
    """Name of the superstep context parameter (the first one)."""
    node = fn.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = node.args
        ordered = list(args.posonlyargs) + list(args.args)
        if ordered:
            return ordered[0].arg
    return None


def _alias_chain(
    fn: FunctionSummary, root: str
) -> Optional[Tuple[str, ...]]:
    """One-level alias chase: the dotted chain of the expression bound
    to ``root`` in this scope (``nd = ctx.state["x"]`` → ``("ctx",
    "state")``)."""
    binding = fn.bindings.get(root)
    if binding is None:
        return None
    return dotted_parts(binding)


@register_rule
class SharedMutationRule(SpmdRule):
    """SPMD001 — rank code mutates state shared across ranks.

    On :class:`~repro.runtime.backends.thread.ThreadBackend` every rank
    of a superstep runs concurrently in one address space; writing to a
    captured variable, a module-level mutable, ``ctx.shared``, or the
    broadcast step argument is a data race that the serial backend
    silently masks.  Mutation must stay confined to ``ctx.state``.
    """

    code = "SPMD001"
    name = "spmd-shared-mutation"
    description = "superstep mutates captured/global state (thread race)"

    def project_check(self, project: SpmdProject) -> Iterator[Diagnostic]:
        for fn in project.rank_functions:
            ctx_name = _ctx_param(fn)
            is_step = project.is_superstep(fn)
            for mut in fn.mutations:
                reason = self._classify(fn, mut, ctx_name, is_step)
                if reason is not None:
                    yield self.fn_diag(
                        fn,
                        mut.node,
                        f"rank code mutates {mut.describe()} — {reason}; "
                        f"confine per-rank mutation to ctx.state",
                    )

    @staticmethod
    def _classify(
        fn: FunctionSummary,
        mut: Mutation,
        ctx_name: Optional[str],
        is_step: bool,
    ) -> Optional[str]:
        chain = mut.chain
        root = chain[0]
        # writes through the context object
        if ctx_name is not None and root == ctx_name:
            if len(chain) >= 2 and chain[1] == "shared":
                return "ctx.shared is the read-only broadcast mapping"
            return None  # ctx.state / ctx-internal verbs are the contract
        in_place = mut.kind in ("store", "method", "delete") or (
            mut.kind == "augassign" and len(chain) > 1
        )
        if root in fn.params:
            if is_step and in_place:
                return (
                    "the step argument is one object shared by every rank"
                )
            return None
        if mut.kind == "assign" or (
            mut.kind == "augassign" and len(chain) == 1
        ):
            if root in fn.global_decls or root in fn.nonlocal_decls:
                return "rebinding a global/nonlocal races under threads"
            return None
        if not in_place:
            return None
        if root in fn.captured:
            return "it is captured from an enclosing scope"
        if root in fn.global_reads:
            return "it is a module-level object shared by every rank"
        # one-level alias chase: nd = ctx.shared[...]; nd[...] = v
        alias = _alias_chain(fn, root)
        if alias is not None:
            if (
                ctx_name is not None
                and alias[0] == ctx_name
                and len(alias) >= 2
                and alias[1] == "shared"
            ):
                return "it aliases the read-only ctx.shared mapping"
            if alias[0] in fn.global_reads or alias[0] in fn.captured:
                return "it aliases shared state from an enclosing scope"
        return None


@register_rule
class RankRngRule(SpmdRule):
    """SPMD002 — module-level RNG inside rank code.

    ``np.random.*`` and ``random.*`` draw from interpreter-global
    streams; under concurrent backends the draw order depends on
    scheduling, so per-rank results diverge run to run.  Rank code must
    consume generators distributed through ``ctx.shared``/``ctx.state``
    (derived from :func:`repro.utils.rng.spawn_rngs`).
    """

    code = "SPMD002"
    name = "spmd-rank-rng"
    description = "module-level RNG (np.random/random) in rank code"

    def project_check(self, project: SpmdProject) -> Iterator[Diagnostic]:
        for fn in project.rank_functions:
            summary = project.module_of(fn)
            for call in fn.calls:
                hit = self._rng_call(call.name, summary)
                if hit:
                    yield self.fn_diag(
                        fn,
                        call.node,
                        f"{call.name}(...) draws from the {hit} stream — "
                        f"use the per-rank Generator handed through "
                        f"ctx.shared/ctx.state (spawn_rngs)",
                    )

    @staticmethod
    def _rng_call(name: str, summary: ModuleSummary) -> Optional[str]:
        if name.startswith("np.random.") or name.startswith("numpy.random."):
            return "process-global numpy"
        head, _, rest = name.partition(".")
        if rest and summary.imports.get(head) == "random":
            return "process-global stdlib random"
        if not rest:
            target = summary.imports.get(name, "")
            if target.startswith("random."):
                return "process-global stdlib random"
            if target.startswith("numpy.random."):
                return "process-global numpy"
        return None


@register_rule
class NonPicklableCaptureRule(SpmdRule):
    """SPMD003 — superstep closure captures a non-picklable object.

    The process backend pickles ``(fn, arg)`` per step; when that
    fails it silently falls back to in-process serial execution with
    only a ``RuntimeWarning`` — the run *works* but stops exercising
    real parallelism.  Capturing a lock, file handle, generator, or an
    instance of a locally defined class guarantees that fallback.
    """

    code = "SPMD003"
    name = "spmd-nonpicklable-capture"
    description = "superstep captures a provably non-picklable object"

    def project_check(self, project: SpmdProject) -> Iterator[Diagnostic]:
        reported: Set[Tuple[str, str, str]] = set()
        for site in project.supersteps:
            fn = site.fn
            if fn.parent is None:
                continue  # module-level functions capture nothing
            summary = project.module_of(fn)
            for name in sorted(fn.captured):
                binding = fn.captured[name]
                kind = self._nonpicklable_kind(binding, fn, summary)
                if kind is None:
                    continue
                key = (fn.module, fn.qualname, name)
                if key in reported:
                    continue
                reported.add(key)
                yield self.fn_diag(
                    fn,
                    fn.node,
                    f"superstep captures {name!r} ({kind}) — pickling "
                    f"fails, so the process backend silently falls back "
                    f"to in-process execution",
                )

    @staticmethod
    def _nonpicklable_kind(
        binding: Optional[ast.AST],
        fn: FunctionSummary,
        summary: ModuleSummary,
    ) -> Optional[str]:
        if binding is None:
            return None
        if isinstance(binding, ast.GeneratorExp):
            return "a generator"
        if isinstance(binding, ast.ClassDef):
            return "a locally defined class"
        if isinstance(binding, ast.Call):
            parts = dotted_parts(binding.func)
            if parts is None:
                return None
            name = ".".join(parts)
            if name in _NONPICKLABLE_FACTORIES:
                return _NONPICKLABLE_FACTORIES[name]
            if len(parts) == 1:
                target = summary.imports.get(parts[0], "")
                if target in _NONPICKLABLE_FACTORIES:
                    return _NONPICKLABLE_FACTORIES[target]
                # instance of a class defined in an enclosing function
                enclosing = fn.parent
                while enclosing is not None:
                    local_binding = enclosing.bindings.get(parts[0])
                    if isinstance(local_binding, ast.ClassDef):
                        return "an instance of a locally defined class"
                    enclosing = enclosing.parent
        return None


def _is_unordered_expr(
    expr: ast.AST,
    fn: Optional[FunctionSummary],
    summary: ModuleSummary,
    depth: int = 0,
) -> bool:
    """Whether ``expr`` provably evaluates to an unordered container
    (set/frozenset, directly or through one local binding)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        tail = _callee_tail(expr)
        return tail in ("set", "frozenset")
    if isinstance(expr, ast.Name) and depth < 2:
        binding: Optional[ast.AST] = None
        if fn is not None:
            binding = fn.lookup_binding(expr.id)
        if binding is None:
            binding = summary.module_bindings.get(expr.id)
        if binding is not None and binding is not expr:
            return _is_unordered_expr(binding, fn, summary, depth + 1)
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_unordered_expr(
            expr.left, fn, summary, depth
        ) or _is_unordered_expr(expr.right, fn, summary, depth)
    return False


@register_rule
class RankDeterminismRule(SpmdRule):
    """DET001 — nondeterminism sources in rank or coordinator code.

    Wall-clock reads, OS entropy, iteration over a ``set`` (hash order
    varies across processes under ``PYTHONHASHSEED``), and ``id()``
    -keyed ordering all produce values that differ between runs and
    between ranks; when they feed sends or reductions the ledger and
    results diverge across backends.
    """

    code = "DET001"
    name = "rank-determinism"
    description = "nondeterminism source in rank/coordinator code"

    def project_check(self, project: SpmdProject) -> Iterator[Diagnostic]:
        seen: Set[Tuple[str, str]] = set()
        for fn in project.rank_functions + project.coordinators:
            key = (fn.module, fn.qualname)
            if key in seen:
                continue
            seen.add(key)
            summary = project.module_of(fn)
            for d in self._check_fn(fn, summary):
                yield d

    def _check_fn(
        self, fn: FunctionSummary, summary: ModuleSummary
    ) -> Iterator[Diagnostic]:
        for call in fn.calls:
            reason = self._det_call(call.name, summary)
            if reason:
                yield self.fn_diag(
                    fn,
                    call.node,
                    f"{call.name}(...) is {reason} — rank/coordinator "
                    f"values must be reproducible across runs and ranks",
                )
            tail = call.name.rsplit(".", 1)[-1]
            if tail in ("sorted", "min", "max"):
                for kw in call.node.keywords:
                    if (
                        kw.arg == "key"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id == "id"
                    ):
                        yield self.fn_diag(
                            fn,
                            call.node,
                            "ordering by id() depends on allocation "
                            "addresses — sort by a stable key instead",
                        )
        for node in ast.walk(fn.node):
            target: Optional[ast.AST] = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                target = node.iter
            elif isinstance(node, ast.comprehension):
                target = node.iter
            if target is not None and _is_unordered_expr(
                target, fn, summary
            ):
                yield self.fn_diag(
                    fn,
                    target,
                    "iterating a set in rank/coordinator code — hash "
                    "order varies per process; iterate sorted(...) "
                    "instead",
                )

    @staticmethod
    def _det_call(name: str, summary: ModuleSummary) -> Optional[str]:
        if name in _DET_CALLS:
            return "OS entropy/identity"
        head, _, rest = name.partition(".")
        if rest:
            if summary.imports.get(head) == "time" and rest in _TIME_FUNCS:
                return "a wall-clock read"
            if summary.imports.get(head) == "secrets":
                return "OS entropy"
        else:
            target = summary.imports.get(name, "")
            if target.startswith("time.") and target[5:] in _TIME_FUNCS:
                return "a wall-clock read"
            if target.startswith("secrets."):
                return "OS entropy"
            if name == "id":
                return "an allocation address"
        return None


@register_rule
class OrderedFloatFoldRule(SpmdRule):
    """FLOAT001 — float accumulation over an unordered container.

    Float addition is not associative; summing a ``set`` (or, in rank
    code, ``dict.values()`` whose insertion order depends on message
    arrival) makes the result depend on hash/scheduling order.  Fold
    per-rank results in rank order — the session's ``step`` return list
    is already rank-ordered, and the merge helpers fold rank 0 first.
    """

    code = "FLOAT001"
    name = "ordered-float-fold"
    description = "float accumulation over an unordered container"

    _SUM_NAMES = frozenset({"sum", "math.fsum", "fsum", "np.sum", "numpy.sum"})

    def project_check(self, project: SpmdProject) -> Iterator[Diagnostic]:
        rank_keys = {
            (fn.module, fn.qualname) for fn in project.rank_functions
        }
        seen: Set[Tuple[str, str]] = set()
        for fn in project.rank_functions + project.coordinators:
            key = (fn.module, fn.qualname)
            if key in seen:
                continue
            seen.add(key)
            summary = project.module_of(fn)
            in_rank = key in rank_keys
            for call in fn.calls:
                if call.name not in self._SUM_NAMES:
                    continue
                if not call.node.args:
                    continue
                arg = call.node.args[0]
                reason = self._unordered_reason(arg, fn, summary, in_rank)
                if reason:
                    yield self.fn_diag(
                        fn,
                        call.node,
                        f"{call.name}(...) folds floats over {reason} — "
                        f"accumulate in rank order (fold rank 0 first) "
                        f"for bit-reproducible reductions",
                    )

    @staticmethod
    def _unordered_reason(
        arg: ast.AST,
        fn: FunctionSummary,
        summary: ModuleSummary,
        in_rank: bool,
    ) -> Optional[str]:
        def values_call(expr: ast.AST) -> bool:
            return (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "values"
            )

        if _is_unordered_expr(arg, fn, summary):
            return "a set (hash order)"
        if in_rank and values_call(arg):
            return "dict.values() (arrival-order insertion)"
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            it = arg.generators[0].iter
            if _is_unordered_expr(it, fn, summary):
                return "a set (hash order)"
            if in_rank and values_call(it):
                return "dict.values() (arrival-order insertion)"
        return None


# ----------------------------------------------------------------------
# analyzer entry point
# ----------------------------------------------------------------------


class SpmdAnalyzer:
    """Run the project-level SPMD pass over files and directories.

    ``select``/``ignore`` narrow the rule set by code exactly like
    :class:`~repro.analysis.engine.LintEngine` (unknown codes are the
    caller's concern — the CLI validates them against the full
    registry first).
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        chosen: List[SpmdRule] = spmd_rules()
        if select is not None:
            wanted = set(select)
            chosen = [r for r in chosen if r.code in wanted]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [r for r in chosen if r.code not in dropped]
        self.rules: List[SpmdRule] = chosen

    # ------------------------------------------------------------------
    def analyze_contexts(
        self, contexts: Sequence[FileContext]
    ) -> List[Diagnostic]:
        """Run the pass over already-parsed file contexts."""
        if not self.rules:
            return []
        by_path = {ctx.path: ctx for ctx in contexts}
        index = ProjectIndex.build(
            (ctx.module, ctx.path, ctx.tree) for ctx in contexts
        )
        project = build_project(index, by_path)
        found: List[Diagnostic] = []
        for rule in self.rules:
            for d in rule.project_check(project):
                ctx = by_path.get(d.path)
                if ctx is not None and ctx.is_suppressed(d.line, d.code):
                    continue
                found.append(d)
        return sorted(set(found))

    def analyze_paths(
        self,
        paths: Iterable[Union[str, Path]],
        exclude: Sequence[str] = (),
    ) -> List[Diagnostic]:
        """Parse the target set and run the pass (syntax errors are
        skipped here — the per-file engine already reports E999)."""
        contexts: List[FileContext] = []
        for f in LintEngine._iter_target_files(paths, exclude):
            source = Path(f).read_text(encoding="utf-8")
            try:
                contexts.append(
                    build_file_context(
                        source,
                        module=module_name_for(f),
                        path=str(f),
                    )
                )
            except SyntaxError:
                continue
        return self.analyze_contexts(contexts)

    def analyze_source(
        self,
        source: str,
        module: str = "<string>",
        path: str = "<string>",
    ) -> List[Diagnostic]:
        """Single-source convenience wrapper (unit tests)."""
        return self.analyze_contexts(
            [build_file_context(source, module=module, path=path)]
        )
