"""Static analysis for the partitioning core (``repro-lint``).

The reproduction's correctness rests on a handful of *array contracts*
that Python never checks for us: CSR arrays must be contiguous
``int64``, randomness must flow through :mod:`repro.utils.rng`, public
entry points must validate their inputs, and hot paths must stay
vectorised.  This package machine-checks those contracts with a small
AST-walking lint engine so they cannot silently rot as the system
grows (see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue).

On top of the per-file rules sits a project-level *dataflow pass*
(:mod:`repro.analysis.dataflow` + :mod:`repro.analysis.spmd`) that
locates every superstep handed to the SPMD runtime and proves it
race-free, picklable, and deterministic (SPMD001–003, DET001,
FLOAT001); its findings are validated dynamically by the race
sentinel backend (:mod:`repro.runtime.backends.sentinel`).

The third layer is performance-oriented (``repro-lint --perf``): the
opt-in PERF rule family (:mod:`repro.analysis.perf`) finds the
scalar-Python hot loops that block vectorisation — ranked by measured
span self-times when a ``--trace-json`` run-report is supplied — and
the kernel-purity certifier (:mod:`repro.analysis.kernelcheck`)
proves every ``@repro.kernels.kernel``-marked function jit-compilable,
emitting the ``repro.kernel-audit/1`` registry.  Pre-existing findings
burn down through a committed baseline
(:mod:`repro.analysis.baseline`) instead of blanket suppressions.

The fourth layer (``repro-lint --service``) guards the async service
seams: coroutine safety (:mod:`repro.analysis.asynccheck`:
ASYNC001–003, TIME001), the job state-machine verifier
(:mod:`repro.analysis.statemachine`: SM001/SM002), and the
trust-boundary taint pass (:mod:`repro.analysis.boundary`: TRUST001),
driven by :mod:`repro.analysis.servicecheck`.

Run it as ``repro-lint --spmd src/repro`` or ``repro-contact lint``.
"""

from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintEngine,
    LintRule,
    all_rules,
    build_file_context,
    get_rule,
    register_rule,
)
from repro.analysis.reporters import (
    format_human,
    format_json,
    format_sarif,
    format_statistics,
)
from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.spmd import SpmdAnalyzer  # noqa: F401  (registers rules)
from repro.analysis.perf import PerfAnalyzer  # noqa: F401  (registers rules)
from repro.analysis.kernelcheck import (  # noqa: F401  (registers KERN001)
    KernelAudit,
    audit_paths,
    validate_kernel_audit,
)
from repro.analysis.servicecheck import (  # noqa: F401  (registers rules)
    ServiceAnalyzer,
)

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintEngine",
    "LintRule",
    "SpmdAnalyzer",
    "PerfAnalyzer",
    "ServiceAnalyzer",
    "KernelAudit",
    "audit_paths",
    "validate_kernel_audit",
    "all_rules",
    "build_file_context",
    "get_rule",
    "register_rule",
    "format_human",
    "format_json",
    "format_sarif",
    "format_statistics",
]
