"""Static analysis for the partitioning core (``repro-lint``).

The reproduction's correctness rests on a handful of *array contracts*
that Python never checks for us: CSR arrays must be contiguous
``int64``, randomness must flow through :mod:`repro.utils.rng`, public
entry points must validate their inputs, and hot paths must stay
vectorised.  This package machine-checks those contracts with a small
AST-walking lint engine so they cannot silently rot as the system
grows (see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue).

On top of the per-file rules sits a project-level *dataflow pass*
(:mod:`repro.analysis.dataflow` + :mod:`repro.analysis.spmd`) that
locates every superstep handed to the SPMD runtime and proves it
race-free, picklable, and deterministic (SPMD001–003, DET001,
FLOAT001); its findings are validated dynamically by the race
sentinel backend (:mod:`repro.runtime.backends.sentinel`).

Run it as ``repro-lint --spmd src/repro`` or ``repro-contact lint``.
"""

from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintEngine,
    LintRule,
    all_rules,
    build_file_context,
    get_rule,
    register_rule,
)
from repro.analysis.reporters import (
    format_human,
    format_json,
    format_sarif,
    format_statistics,
)
from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.spmd import SpmdAnalyzer  # noqa: F401  (registers rules)

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintEngine",
    "LintRule",
    "SpmdAnalyzer",
    "all_rules",
    "build_file_context",
    "get_rule",
    "register_rule",
    "format_human",
    "format_json",
    "format_sarif",
    "format_statistics",
]
