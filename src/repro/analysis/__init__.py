"""Static analysis for the partitioning core (``repro-lint``).

The reproduction's correctness rests on a handful of *array contracts*
that Python never checks for us: CSR arrays must be contiguous
``int64``, randomness must flow through :mod:`repro.utils.rng`, public
entry points must validate their inputs, and hot paths must stay
vectorised.  This package machine-checks those contracts with a small
AST-walking lint engine so they cannot silently rot as the system
grows (see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue).

Run it as ``repro-lint src/repro`` or ``repro-contact lint``.
"""

from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintEngine,
    LintRule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.reporters import format_human, format_json
from repro.analysis import rules as _rules  # noqa: F401  (registers rules)

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintEngine",
    "LintRule",
    "all_rules",
    "get_rule",
    "register_rule",
    "format_human",
    "format_json",
]
