"""Kernel-purity certifier: prove declared kernels are jit-compilable.

The compiled-path plan (ROADMAP open item 1) only works if the hot
functions behind the kernel seam (:mod:`repro.kernels`) stay inside
the subset of Python a jit compiler accepts.  This pass proves it
statically: every function marked ``@kernel`` is located syntactically,
closed over the project call graph
(:class:`~repro.analysis.dataflow.ProjectIndex` — helpers a kernel
calls must be pure too), and checked against the purity contract:

=================  ===================================================
closure-capture    no closure over enclosing mutable state
global-state       no ``global``/``nonlocal``, no module-level mutables
object-container   no Python list/dict/set in the numeric path
implicit-dtype     explicit dtype on every array creation
io-call            no I/O, logging, warnings, or printing
tracer-call        no tracer/observability calls in the kernel body
context-manager    no ``with`` blocks (no certifiable lowering)
generator          no ``yield``/``await``
nested-def         no nested functions or lambdas (closures again)
=================  ===================================================

The result is the machine-readable **kernel registry**
(``repro.kernel-audit/1``): one entry per declared kernel, certified or
not, each blocker carrying ``file:line``.  ``repro-lint --perf`` emits
a KERN001 diagnostic per blocker of an uncertified kernel, so a
declared kernel that regresses fails CI — the certify-before-compile
workflow of ``docs/STATIC_ANALYSIS.md``.

The analysis is conservative in the same direction as the SPMD pass:
calls it cannot resolve inside the index are assumed pure (numpy is
the obvious unresolvable callee), while everything it *can* see is
checked.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.dataflow import (
    FunctionSummary,
    ModuleSummary,
    ProjectIndex,
    dotted_parts,
)
from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintEngine,
    LintRule,
    build_file_context,
    module_name_for,
    register_rule,
)

AUDIT_SCHEMA_VERSION = "repro.kernel-audit/1"

#: dotted name of the marker decorator the certifier recognises
KERNEL_DECORATOR = "repro.kernels.kernel"

#: numpy array constructors → index of the positional ``dtype`` slot
#: (a superset of the ARR001 table: kernels must pin asarray too)
_KERNEL_ALLOCATORS: Dict[str, int] = {
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "arange": 3,
    "array": 1,
    "asarray": 1,
    "linspace": 5,
    "fromiter": 1,
}

#: call heads that are I/O or logging no matter the tail
_IO_HEADS = ("logging", "warnings", "sys", "os", "print")

#: bare calls that are I/O
_IO_CALLS = frozenset({"open", "print", "input"})

#: receiver names treated as observability objects inside kernels
_TRACER_RECEIVERS = frozenset({"tracer", "ctx", "ledger", "session"})


@register_rule
class KernelPurityRule(LintRule):
    """KERN001 — declared kernel violates the purity contract.

    Registered for reporter metadata (SARIF rule table, ``--list-rules``)
    only; the certifier below emits the diagnostics.
    """

    code = "KERN001"
    name = "kernel-purity"
    description = "declared @kernel function is not certifiable"
    opt_in = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        return iter(())


@dataclass(frozen=True)
class Blocker:
    """One reason a kernel cannot be certified, with its location."""

    path: str
    line: int
    col: int
    kind: str
    message: str

    def as_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "message": self.message,
        }


@dataclass
class KernelEntry:
    """One declared kernel in the audit registry."""

    name: str
    qualname: str
    module: str
    path: str
    line: int
    certified: bool = True
    blockers: List[Blocker] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "certified": self.certified,
            "blockers": [b.as_dict() for b in self.blockers],
        }


@dataclass
class KernelAudit:
    """The full audit: every declared kernel, certified or blocked."""

    kernels: List[KernelEntry] = field(default_factory=list)

    @property
    def n_certified(self) -> int:
        return sum(1 for k in self.kernels if k.certified)

    def certified_names(self) -> List[str]:
        return sorted(
            f"{k.module}.{k.name}" for k in self.kernels if k.certified
        )

    def to_dict(self) -> Dict[str, object]:
        """The versioned registry document (schema-valid by
        construction; emitted via :func:`validate_kernel_audit`)."""
        return {
            "schema": AUDIT_SCHEMA_VERSION,
            "n_kernels": len(self.kernels),
            "n_certified": self.n_certified,
            "kernels": [
                k.as_dict()
                for k in sorted(
                    self.kernels, key=lambda k: (k.module, k.name)
                )
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            validate_kernel_audit(self.to_dict()), indent=indent
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def diagnostics(self) -> List[Diagnostic]:
        """KERN001 diagnostics: one per blocker of an uncertified
        kernel (these gate CI; certified kernels emit nothing)."""
        found: List[Diagnostic] = []
        for k in self.kernels:
            for b in k.blockers:
                found.append(
                    Diagnostic(
                        path=b.path,
                        line=b.line,
                        col=b.col,
                        code="KERN001",
                        message=(
                            f"kernel {k.module}.{k.name} is not "
                            f"certifiable: [{b.kind}] {b.message}"
                        ),
                    )
                )
        return sorted(found)


class AuditSchemaError(ValueError):
    """A kernel-audit document violates the registry schema."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


def _require_str(value: object, path: str, allow_empty: bool = False) -> None:
    if not isinstance(value, str) or (not allow_empty and not value):
        raise AuditSchemaError(path, "must be a non-empty string")


def _require_int(value: object, path: str, minimum: int = 0) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise AuditSchemaError(path, "must be an integer")
    if value < minimum:
        raise AuditSchemaError(path, f"must be >= {minimum}")


def validate_kernel_audit(document: object) -> Dict[str, object]:
    """Check ``document`` against ``repro.kernel-audit/1``.

    Returns the document on success; raises :class:`AuditSchemaError`
    carrying the JSON path of the first violation (hand-rolled, like
    the run-report validator — no ``jsonschema`` dependency).
    """
    if not isinstance(document, dict):
        raise AuditSchemaError("$", "audit must be a JSON object")
    extra = set(document) - {"schema", "n_kernels", "n_certified", "kernels"}
    if extra:
        raise AuditSchemaError("$", f"unknown top-level keys {sorted(extra)}")
    if document.get("schema") != AUDIT_SCHEMA_VERSION:
        raise AuditSchemaError(
            "$.schema",
            f"expected {AUDIT_SCHEMA_VERSION!r}, got {document.get('schema')!r}",
        )
    kernels = document.get("kernels")
    if not isinstance(kernels, list):
        raise AuditSchemaError("$.kernels", "must be an array")
    _require_int(document.get("n_kernels"), "$.n_kernels")
    _require_int(document.get("n_certified"), "$.n_certified")
    if document["n_kernels"] != len(kernels):
        raise AuditSchemaError("$.n_kernels", "does not match len(kernels)")
    n_certified = 0
    for i, entry in enumerate(kernels):
        p = f"$.kernels[{i}]"
        if not isinstance(entry, dict):
            raise AuditSchemaError(p, "must be an object")
        extra = set(entry) - {
            "name",
            "qualname",
            "module",
            "path",
            "line",
            "certified",
            "blockers",
        }
        if extra:
            raise AuditSchemaError(p, f"unknown keys {sorted(extra)}")
        for key in ("name", "qualname", "module", "path"):
            _require_str(entry.get(key), f"{p}.{key}")
        _require_int(entry.get("line"), f"{p}.line", minimum=1)
        certified = entry.get("certified")
        if not isinstance(certified, bool):
            raise AuditSchemaError(f"{p}.certified", "must be a boolean")
        blockers = entry.get("blockers")
        if not isinstance(blockers, list):
            raise AuditSchemaError(f"{p}.blockers", "must be an array")
        if certified and blockers:
            raise AuditSchemaError(
                f"{p}.blockers", "certified kernels must have no blockers"
            )
        if not certified and not blockers:
            raise AuditSchemaError(
                f"{p}.blockers", "uncertified kernels must name a blocker"
            )
        for j, b in enumerate(blockers):
            bp = f"{p}.blockers[{j}]"
            if not isinstance(b, dict):
                raise AuditSchemaError(bp, "must be an object")
            if set(b) != {"path", "line", "col", "kind", "message"}:
                raise AuditSchemaError(
                    bp, "must have exactly path/line/col/kind/message"
                )
            _require_str(b.get("path"), f"{bp}.path")
            _require_int(b.get("line"), f"{bp}.line", minimum=1)
            _require_int(b.get("col"), f"{bp}.col", minimum=1)
            _require_str(b.get("kind"), f"{bp}.kind")
            _require_str(b.get("message"), f"{bp}.message")
        if certified:
            n_certified += 1
    if document["n_certified"] != n_certified:
        raise AuditSchemaError(
            "$.n_certified", "does not match the certified entries"
        )
    return document


# ----------------------------------------------------------------------
# kernel discovery
# ----------------------------------------------------------------------


def _decorator_resolves_to_kernel(
    dec: ast.AST, summary: ModuleSummary
) -> bool:
    """Whether decorator ``dec`` is :func:`repro.kernels.kernel`
    (through the module's import aliases; calls like ``@kernel()`` are
    not the marker's spelling and are ignored)."""
    parts = dotted_parts(dec)
    if parts is None:
        return False
    if len(parts) == 1:
        return summary.imports.get(parts[0]) == KERNEL_DECORATOR
    head = summary.imports.get(parts[0])
    if head is None:
        return False
    return ".".join([head, *parts[1:]]) == KERNEL_DECORATOR


def find_declared_kernels(
    index: ProjectIndex,
) -> List[Tuple[FunctionSummary, ModuleSummary]]:
    """Every module-level function marked ``@kernel`` in the index,
    in (module, name) order."""
    found: List[Tuple[FunctionSummary, ModuleSummary]] = []
    for summary in sorted(
        index.modules.values(), key=lambda s: s.module
    ):
        for name in sorted(summary.top_level_functions):
            fn = summary.functions.get(name)
            if fn is None or not isinstance(fn.node, ast.FunctionDef):
                continue
            if any(
                _decorator_resolves_to_kernel(dec, summary)
                for dec in fn.node.decorator_list
            ):
                found.append((fn, summary))
    return found


# ----------------------------------------------------------------------
# the purity checks
# ----------------------------------------------------------------------


def _block(
    fn: FunctionSummary, node: ast.AST, kind: str, message: str
) -> Blocker:
    return Blocker(
        path=fn.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        kind=kind,
        message=message,
    )


def _where(fn: FunctionSummary, root: FunctionSummary) -> str:
    """Suffix naming the helper when a blocker is in a callee."""
    if fn is root:
        return ""
    return f" (reached via helper {fn.name}())"


def _check_scope(
    fn: FunctionSummary, summary: ModuleSummary, root: FunctionSummary
) -> Iterator[Blocker]:
    via = _where(fn, root)
    for name in sorted(fn.captured):
        yield _block(
            fn,
            fn.node,
            "closure-capture",
            f"captures {name!r} from an enclosing scope{via}",
        )
    for name in sorted(fn.global_decls | fn.nonlocal_decls):
        yield _block(
            fn,
            fn.node,
            "global-state",
            f"declares global/nonlocal {name!r}{via}",
        )
    for name in sorted(fn.global_reads):
        binding = summary.module_bindings.get(name)
        if isinstance(binding, ast.Constant):
            continue  # module-level scalar constants compile fine
        if name in summary.top_level_functions:
            continue  # helper calls are resolved by the reachability walk
        yield _block(
            fn,
            fn.node,
            "global-state",
            f"reads module-level binding {name!r} (not a scalar "
            f"constant){via}",
        )


def _check_body(
    fn: FunctionSummary, summary: ModuleSummary, root: FunctionSummary
) -> Iterator[Blocker]:
    via = _where(fn, root)
    body = fn.node
    for node in ast.walk(body):
        if node is body:
            continue
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            yield _block(
                fn,
                node,
                "object-container",
                f"builds a Python {type(node).__name__.lower()} in the "
                f"numeric path{via}",
            )
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            yield _block(
                fn,
                node,
                "object-container",
                f"comprehension allocates a Python container{via}",
            )
        elif isinstance(node, (ast.GeneratorExp,)):
            yield _block(
                fn,
                node,
                "generator",
                f"generator expression in the numeric path{via}",
            )
        elif isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            yield _block(
                fn, node, "generator", f"kernel must not yield/await{via}"
            )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            yield _block(
                fn,
                node,
                "context-manager",
                f"with-block has no certifiable lowering{via}",
            )
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            yield _block(
                fn,
                node,
                "nested-def",
                f"nested function/lambda creates a closure{via}",
            )
        elif isinstance(node, ast.Call):
            for b in _check_call(fn, summary, node, via):
                yield b


def _check_call(
    fn: FunctionSummary,
    summary: ModuleSummary,
    node: ast.Call,
    via: str,
) -> Iterator[Blocker]:
    parts = dotted_parts(node.func)
    if parts is None:
        return
    name = ".".join(parts)
    head, _, tail = name.rpartition(".")
    # container constructors
    if name in ("list", "dict", "set"):
        yield _block(
            fn,
            node,
            "object-container",
            f"{name}() allocates a Python container{via}",
        )
        return
    # I/O and logging
    if name in _IO_CALLS:
        yield _block(fn, node, "io-call", f"{name}(...) is I/O{via}")
        return
    if parts[0] in _IO_HEADS and len(parts) > 1:
        yield _block(
            fn,
            node,
            "io-call",
            f"{name}(...) is I/O/logging{via}",
        )
        return
    # tracer / observability calls
    if parts[0] in _TRACER_RECEIVERS and len(parts) > 1:
        yield _block(
            fn,
            node,
            "tracer-call",
            f"{name}(...) is an observability call — take the "
            f"measurement outside the kernel{via}",
        )
        return
    # numpy constructors must pin their dtype
    if head in ("np", "numpy") and tail in _KERNEL_ALLOCATORS:
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        if len(node.args) > _KERNEL_ALLOCATORS[tail]:
            return  # dtype passed positionally
        yield _block(
            fn,
            node,
            "implicit-dtype",
            f"np.{tail}(...) without an explicit dtype — a compiled "
            f"kernel must know its types{via}",
        )


def certify_kernel(
    index: ProjectIndex, fn: FunctionSummary, summary: ModuleSummary
) -> KernelEntry:
    """Certify one declared kernel (closing over its callees)."""
    entry = KernelEntry(
        name=fn.name,
        qualname=fn.qualname,
        module=fn.module,
        path=fn.path,
        line=getattr(fn.node, "lineno", 1),
    )
    blockers: List[Blocker] = []
    for reached in index.reachable([fn]):
        reached_summary = index.modules.get(reached.module)
        if reached_summary is None:  # pragma: no cover - index invariant
            continue
        blockers.extend(_check_scope(reached, reached_summary, fn))
        blockers.extend(_check_body(reached, reached_summary, fn))
    entry.blockers = sorted(
        set(blockers), key=lambda b: (b.path, b.line, b.col, b.kind)
    )
    entry.certified = not entry.blockers
    return entry


def audit_contexts(contexts: Sequence[FileContext]) -> KernelAudit:
    """Build the kernel audit for already-parsed file contexts."""
    index = ProjectIndex.build(
        (ctx.module, ctx.path, ctx.tree) for ctx in contexts
    )
    audit = KernelAudit()
    for fn, summary in find_declared_kernels(index):
        audit.kernels.append(certify_kernel(index, fn, summary))
    return audit


def audit_paths(
    paths: Iterable[Union[str, Path]],
    exclude: Sequence[str] = (),
) -> KernelAudit:
    """Parse the target set and certify every declared kernel (files
    with syntax errors are skipped — the engine reports E999)."""
    contexts: List[FileContext] = []
    for f in LintEngine._iter_target_files(paths, exclude):
        source = Path(f).read_text(encoding="utf-8")
        try:
            contexts.append(
                build_file_context(
                    source, module=module_name_for(f), path=str(f)
                )
            )
        except SyntaxError:
            continue
    return audit_contexts(contexts)


def audit_source(
    source: str, module: str = "<string>", path: str = "<string>"
) -> KernelAudit:
    """Single-source convenience wrapper (unit tests)."""
    return audit_contexts(
        [build_file_context(source, module=module, path=path)]
    )
