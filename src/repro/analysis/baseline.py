"""Committed lint baselines: burn findings down instead of suppressing.

A baseline (``lint-baseline.json`` at the repo root) records the
findings that existed when a new rule family landed.  ``repro-lint
--baseline lint-baseline.json`` subtracts them and fails only on *new*
findings, so a tree can adopt a strict rule without a blanket
``disable-file`` while the backlog is fixed incrementally — deleting
entries is the only way the file ever changes in review.

Matching is by ``(path, code, message)`` **multiset**, deliberately
ignoring line/column: moving code around must not resurrect a
baselined finding, while a genuinely new instance of the same rule in
the same file still counts once the baselined occurrences are used up.

Some codes can never be baselined — :func:`write_baseline` drops
such entries and :func:`load_baseline` refuses documents containing
them.  KERN001 (a declared kernel that stops being certifiable) is a
seam regression, not a backlog item; TRUST001 (unvalidated request
data reaching a sink) and SM001/SM002 (an illegal or malformed job
state machine) are trust-boundary and lifecycle *correctness*
violations — grandfathering one would ship the hole it proves.

Schema (``repro.lint-baseline/1``)::

    {
      "schema": "repro.lint-baseline/1",
      "entries": [
        {"path": str, "code": str, "message": str},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.engine import Diagnostic

BASELINE_SCHEMA_VERSION = "repro.lint-baseline/1"

#: codes a baseline is never allowed to silence
NEVER_BASELINED = frozenset({"KERN001", "TRUST001", "SM001", "SM002"})

#: profile annotations appended by ``--trace-json`` ranking — stripped
#: before matching so a baseline works with and without a profile
_HOT_SUFFIX_RE = re.compile(r" \[hot: [^\]]+\]$")

_Key = Tuple[str, str, str]


class BaselineError(ValueError):
    """A baseline document violates the schema."""


def _key(d: Diagnostic) -> _Key:
    return (d.path, d.code, _HOT_SUFFIX_RE.sub("", d.message))


def write_baseline(
    path: Union[str, Path], diagnostics: Sequence[Diagnostic]
) -> int:
    """Write ``diagnostics`` as the new baseline; returns the number of
    entries written (KERN001 findings are never recorded)."""
    entries = [
        {"path": d.path, "code": d.code, "message": _key(d)[2]}
        for d in sorted(diagnostics)
        if d.code not in NEVER_BASELINED
    ]
    document = {"schema": BASELINE_SCHEMA_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return len(entries)


def load_baseline(path: Union[str, Path]) -> "Counter[_Key]":
    """Load a baseline into a ``(path, code, message)`` multiset.

    Raises :class:`BaselineError` on malformed documents and on
    entries carrying a never-baselined code.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise BaselineError(f"{path}: baseline must be a JSON object")
    if document.get("schema") != BASELINE_SCHEMA_VERSION:
        raise BaselineError(
            f"{path}: expected schema {BASELINE_SCHEMA_VERSION!r}, "
            f"got {document.get('schema')!r}"
        )
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: 'entries' must be an array")
    counts: "Counter[_Key]" = Counter()
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or set(entry) != {
            "path",
            "code",
            "message",
        }:
            raise BaselineError(
                f"{path}: entries[{i}] must have exactly "
                f"path/code/message"
            )
        values: Dict[str, object] = entry
        if not all(
            isinstance(values[k], str) and values[k]
            for k in ("path", "code", "message")
        ):
            raise BaselineError(
                f"{path}: entries[{i}] fields must be non-empty strings"
            )
        code = str(entry["code"])
        if code in NEVER_BASELINED:
            raise BaselineError(
                f"{path}: entries[{i}] baselines {code} — this class "
                f"of finding must be fixed, it cannot be baselined"
            )
        counts[(str(entry["path"]), code, str(entry["message"]))] += 1
    return counts


def apply_baseline(
    diagnostics: Sequence[Diagnostic],
    baseline: "Counter[_Key]",
) -> Tuple[List[Diagnostic], int]:
    """Subtract baselined findings from ``diagnostics``.

    Returns ``(new_findings, n_suppressed)``.  Each baseline entry
    absorbs at most one finding with the same (path, code, message);
    order within a file is preserved for the survivors.
    """
    budget = Counter(baseline)
    kept: List[Diagnostic] = []
    suppressed = 0
    for d in diagnostics:
        key = _key(d)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(d)
    return kept, suppressed
