"""State-machine verifier: transition tables proved against call sites.

The service job lifecycle is a literal transition table
(``repro.service.queue._TRANSITIONS``) enforced at runtime by
``Job.transition``.  Runtime enforcement means an illegal edge is an
*exception in production*; this pass proves the same properties at
lint time, so an edit to the table or to a ``.transition(...)`` call
site fails CI instead of a live request:

=====  ==============================================================
SM001  a literal ``.transition("state")`` call site is not a legal
       edge of the associated table (unknown state, unreachable
       target, or an adjacent transition pair that is not an edge)
SM002  the table itself is malformed: an edge points at an undeclared
       state, a state is unreachable from the initial state, a
       declared-terminal state has outgoing edges, or a state with no
       outgoing edges is not declared terminal
=====  ==============================================================

A *table* is any module-level dict literal bound to a name ending in
``_TRANSITIONS`` (or named ``TRANSITIONS``) mapping string states to
tuples/lists of string states; the **first key is the initial
state** (insertion order — the convention ``queue._TRANSITIONS``
follows).  A companion binding with the same prefix and a
``_TERMINAL`` suffix (tuple/list/set of strings) declares the
terminal states.  Call sites are associated with the tables of their
own module first, then with tables of modules they import from, then
with a unique project-wide table; a site is flagged only when it is
illegal against *every* candidate table.  Like every rule in this
family the verifier skips what it cannot prove: non-literal
``.transition(expr)`` arguments are ignored.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow import (
    FunctionSummary,
    ModuleSummary,
    dotted_text,
)
from repro.analysis.engine import Diagnostic, register_rule
from repro.analysis.asynccheck import (
    ServiceProject,
    ServiceRule,
    scope_walk,
)

__all__ = [
    "TransitionTable",
    "collect_tables",
    "TransitionCallRule",
    "TransitionTableRule",
]


@dataclass
class TransitionTable:
    """One extracted ``*_TRANSITIONS`` dict literal."""

    module: str
    path: str
    name: str
    node: ast.Dict
    #: state → allowed successor states, in declaration order
    edges: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: lineno/col of each state's key constant, for anchoring
    anchors: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: anchors of each (src, dst) edge element constant
    edge_anchors: Dict[Tuple[str, str], Tuple[int, int]] = field(
        default_factory=dict
    )
    #: declared terminal states (None when no companion binding exists)
    terminal: Optional[Tuple[str, ...]] = None

    @property
    def initial(self) -> Optional[str]:
        """The initial state: the table's first declared key."""
        return next(iter(self.edges), None)

    def states(self) -> Set[str]:
        return set(self.edges)

    def reachable(self) -> Set[str]:
        start = self.initial
        if start is None:
            return set()
        seen = {start}
        stack = [start]
        while stack:
            for dst in self.edges.get(stack.pop(), ()):
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen

    def in_degree(self, state: str) -> int:
        return sum(
            1
            for dsts in self.edges.values()
            for dst in dsts
            if dst == state
        )


def _literal_states(node: ast.AST) -> Optional[List[Tuple[str, ast.AST]]]:
    """``("a", "b")`` → the strings with their nodes; None if not a
    homogeneous string tuple/list/set literal."""
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    out: List[Tuple[str, ast.AST]] = []
    for elt in node.elts:
        if not (
            isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ):
            return None
        out.append((elt.value, elt))
    return out


def _table_from_binding(
    summary: ModuleSummary, name: str, value: ast.AST
) -> Optional[TransitionTable]:
    if not isinstance(value, ast.Dict):
        return None
    table = TransitionTable(
        module=summary.module, path=summary.path, name=name, node=value
    )
    for key, val in zip(value.keys, value.values):
        if not (
            isinstance(key, ast.Constant) and isinstance(key.value, str)
        ):
            return None
        states = _literal_states(val)
        if states is None:
            return None
        src = key.value
        table.edges[src] = tuple(s for s, _ in states)
        table.anchors[src] = (key.lineno, key.col_offset + 1)
        for dst, elt in states:
            table.edge_anchors.setdefault(
                (src, dst),
                (
                    getattr(elt, "lineno", val.lineno),
                    getattr(elt, "col_offset", val.col_offset) + 1,
                ),
            )
    return table if table.edges else None


def collect_tables(project: ServiceProject) -> List[TransitionTable]:
    """Every ``*_TRANSITIONS`` table in the indexed modules, with its
    companion ``*_TERMINAL`` declaration attached when present."""
    tables: List[TransitionTable] = []
    for module in sorted(project.index.modules):
        summary = project.index.modules[module]
        for name, value in summary.module_bindings.items():
            if not (
                name == "TRANSITIONS" or name.endswith("_TRANSITIONS")
            ):
                continue
            table = _table_from_binding(summary, name, value)
            if table is None:
                continue
            prefix = name[: -len("TRANSITIONS")]
            companion = summary.module_bindings.get(f"{prefix}TERMINAL")
            if companion is not None:
                states = _literal_states(companion)
                if states is not None:
                    table.terminal = tuple(s for s, _ in states)
            tables.append(table)
    return tables


def _candidate_tables(
    project: ServiceProject,
    tables: List[TransitionTable],
    module: str,
) -> List[TransitionTable]:
    """Tables a ``.transition(...)`` site in ``module`` may refer to."""
    own = [t for t in tables if t.module == module]
    if own:
        return own
    summary = project.index.modules.get(module)
    if summary is not None:
        imported_mods = set()
        for target in summary.imports.values():
            imported_mods.add(target)
            imported_mods.add(target.rpartition(".")[0])
        via_imports = [t for t in tables if t.module in imported_mods]
        if via_imports:
            return via_imports
    return tables if len(tables) == 1 else []


@register_rule
class TransitionTableRule(ServiceRule):
    """SM002 — the transition table itself violates an invariant."""

    code = "SM002"
    name = "state-machine-table"
    description = (
        "transition table is malformed (dangling edge, unreachable "
        "state, or inconsistent terminal declaration)"
    )

    def project_check(
        self, project: ServiceProject
    ) -> Iterator[Diagnostic]:
        for table in collect_tables(project):
            yield from self._check_table(table)

    def _diag(
        self,
        table: TransitionTable,
        anchor: Tuple[int, int],
        message: str,
    ) -> Diagnostic:
        return Diagnostic(
            path=table.path,
            line=anchor[0],
            col=anchor[1],
            code=self.code,
            message=f"{table.name}: {message}",
        )

    def _check_table(
        self, table: TransitionTable
    ) -> Iterator[Diagnostic]:
        states = table.states()
        for (src, dst), anchor in sorted(table.edge_anchors.items()):
            if dst not in states:
                yield self._diag(
                    table,
                    anchor,
                    f"edge '{src}' -> '{dst}' points at an "
                    "undeclared state",
                )
        reachable = table.reachable()
        for src in table.edges:
            if src not in reachable:
                yield self._diag(
                    table,
                    table.anchors[src],
                    f"state '{src}' is unreachable from the initial "
                    f"state '{table.initial}'",
                )
        terminal = table.terminal
        if terminal is None:
            return
        for src, dsts in table.edges.items():
            if src in terminal and dsts:
                yield self._diag(
                    table,
                    table.anchors[src],
                    f"terminal state '{src}' has outgoing edge(s) "
                    f"{list(dsts)}",
                )
            if not dsts and src not in terminal:
                yield self._diag(
                    table,
                    table.anchors[src],
                    f"state '{src}' has no outgoing edges but is not "
                    "declared terminal",
                )
        for src in terminal:
            if src not in states:
                anchor = (table.node.lineno, table.node.col_offset + 1)
                yield self._diag(
                    table,
                    anchor,
                    f"declared terminal state '{src}' is not a state "
                    "of the table",
                )


@register_rule
class TransitionCallRule(ServiceRule):
    """SM001 — a literal ``.transition(...)`` site is not a legal edge.

    Single literal calls are checked against the table's state set and
    in-degree (a transition *into* a state no edge reaches can never
    succeed); **adjacent** literal transition statements on the same
    receiver must additionally form a legal edge — the first call
    leaves the receiver in its argument state, so the pair is exactly
    one path through the table.
    """

    code = "SM001"
    name = "state-machine-call"
    description = (
        "literal .transition(...) call site is not a legal edge of "
        "the transition table"
    )

    def project_check(
        self, project: ServiceProject
    ) -> Iterator[Diagnostic]:
        tables = collect_tables(project)
        if not tables:
            return
        for module in sorted(project.index.modules):
            summary = project.index.modules[module]
            candidates = _candidate_tables(project, tables, module)
            if not candidates:
                continue
            for fn in summary.functions.values():
                if not isinstance(
                    fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                yield from self._check_function(fn, candidates)

    @staticmethod
    def _literal_transition(
        stmt: ast.stmt,
    ) -> Optional[Tuple[str, str, ast.Call]]:
        """``recv.transition("s")`` statement → (receiver, state, call)."""
        if not isinstance(stmt, ast.Expr) or not isinstance(
            stmt.value, ast.Call
        ):
            return None
        call = stmt.value
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "transition"
            and len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            return None
        receiver = dotted_text(call.func.value)
        if receiver is None:
            return None
        return receiver, call.args[0].value, call

    def _check_function(
        self, fn: FunctionSummary, tables: List[TransitionTable]
    ) -> Iterator[Diagnostic]:
        # single-site legality: every literal argument must be a state
        # that at least one edge can reach
        for call in fn.calls:
            if not call.name.endswith(".transition"):
                continue
            if not (
                len(call.node.args) == 1
                and isinstance(call.node.args[0], ast.Constant)
                and isinstance(call.node.args[0].value, str)
            ):
                continue
            state = call.node.args[0].value
            if all(state not in t.states() for t in tables):
                yield self.fn_diag(
                    fn,
                    call.node,
                    f".transition({state!r}): '{state}' is not a "
                    f"state of {self._table_names(tables)}",
                )
            elif all(t.in_degree(state) == 0 for t in tables):
                yield self.fn_diag(
                    fn,
                    call.node,
                    f".transition({state!r}): no edge of "
                    f"{self._table_names(tables)} enters '{state}' — "
                    "this call always raises",
                )
        # adjacent-pair legality on the same receiver
        for block in self._statement_blocks(fn.node):
            prev: Optional[Tuple[str, str, ast.Call]] = None
            for stmt in block:
                cur = self._literal_transition(stmt)
                if (
                    cur is not None
                    and prev is not None
                    and cur[0] == prev[0]
                    and all(
                        cur[1] not in t.edges.get(prev[1], ())
                        for t in tables
                        if prev[1] in t.states()
                        and cur[1] in t.states()
                    )
                    and any(
                        prev[1] in t.states() and cur[1] in t.states()
                        for t in tables
                    )
                ):
                    yield self.fn_diag(
                        fn,
                        cur[2],
                        f"consecutive transitions '{prev[1]}' -> "
                        f"'{cur[1]}' on '{cur[0]}' is not an edge of "
                        f"{self._table_names(tables)}",
                    )
                prev = cur
        return

    @staticmethod
    def _table_names(tables: List[TransitionTable]) -> str:
        return " or ".join(
            f"{t.module}.{t.name}" for t in tables
        )

    @staticmethod
    def _statement_blocks(root: ast.AST) -> Iterator[List[ast.stmt]]:
        """Every statement list (function body, branch bodies, ...)
        within one function scope."""
        for node in scope_walk(root):
            for attr in ("body", "orelse", "finalbody"):
                block = getattr(node, attr, None)
                if (
                    isinstance(block, list)
                    and block
                    and isinstance(block[0], ast.stmt)
                ):
                    yield block
