"""Package-wide dataflow summaries for the SPMD safety analysis.

The per-file rules of :mod:`repro.analysis.rules` see one syntax tree
at a time; the SPMD rule family (:mod:`repro.analysis.spmd`) must
instead reason about *functions* — what a superstep captures from its
enclosing scope, which module-level mutables it touches, and which
other functions it reaches transitively.  This module builds those
summaries:

* :class:`FunctionSummary` — per-function scope facts: parameters,
  local bindings, ``global``/``nonlocal`` declarations, closure
  captures (with the enclosing binding's value expression when it can
  be found), module-level reads, every call site, and every mutation
  of a name (assignment, augmented assignment, subscript/attribute
  store, deletion, or a call of a known mutating method).
* :class:`ModuleSummary` — one parsed file: its functions (keyed by
  qualified name), import aliases, module-level bindings, and the
  session-variable names used to recognise ``session.step`` call
  sites.
* :class:`ProjectIndex` — the whole analysed file set, with name
  resolution (local functions, ``from m import f``, ``m.f`` through
  import aliases) and transitive reachability over the call graph.

The analysis is deliberately conservative where Python is dynamic:
names that cannot be resolved are skipped, never guessed, so the SPMD
rules under-approximate rather than cry wolf.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

#: method names that mutate their receiver in place
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "fill",
        "partial_fit",
        "put",
    }
)

_BUILTIN_NAMES = frozenset(dir(builtins))


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Render a ``Name``/``Attribute`` chain as its components
    (``ctx.shared["k"]`` → ``("ctx", "shared")``; subscripts are
    transparent), or ``None`` when the chain is not rooted at a name."""
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        else:
            return None


def dotted_text(node: ast.AST) -> Optional[str]:
    """``dotted_parts`` joined with dots (``None`` when unrooted)."""
    parts = dotted_parts(node)
    return ".".join(parts) if parts is not None else None


@dataclass
class Mutation:
    """One in-place modification of a name visible in a function."""

    #: components of the mutated target (root name first)
    chain: Tuple[str, ...]
    #: ``assign`` / ``augassign`` / ``store`` (subscript or attribute
    #: write) / ``delete`` / ``method`` (mutating-method call)
    kind: str
    node: ast.AST
    #: for ``kind == "method"``: the method's name
    method: str = ""

    @property
    def root(self) -> str:
        return self.chain[0]

    def describe(self) -> str:
        """Human form of the mutated path (``acc.append(...)``)."""
        path = ".".join(self.chain)
        if self.kind == "method":
            return f"{path}.{self.method}(...)"
        if self.kind == "store":
            return f"{path}[...]"
        return path


@dataclass
class CallSite:
    """A call expression inside a function."""

    name: str  # dotted callee text (``np.zeros``, ``_hist_step``)
    node: ast.Call


@dataclass
class FunctionSummary:
    """Scope and behaviour facts about one function or lambda."""

    module: str
    path: str
    qualname: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    parent: Optional["FunctionSummary"] = None
    params: Set[str] = field(default_factory=set)
    #: names bound inside this scope (assignments, loop/with targets,
    #: imports, nested def/class statements, comprehension targets)
    bound: Set[str] = field(default_factory=set)
    #: name → value expression of its (last seen) binding in this scope
    bindings: Dict[str, ast.AST] = field(default_factory=dict)
    global_decls: Set[str] = field(default_factory=set)
    nonlocal_decls: Set[str] = field(default_factory=set)
    loads: Set[str] = field(default_factory=set)
    calls: List[CallSite] = field(default_factory=list)
    mutations: List[Mutation] = field(default_factory=list)
    #: freevar → value expression of the enclosing binding (``None``
    #: when the binding exists but its value is not a simple expression)
    captured: Dict[str, Optional[ast.AST]] = field(default_factory=dict)
    #: loads that resolve to module-level bindings
    global_reads: Set[str] = field(default_factory=set)

    def is_local(self, name: str) -> bool:
        """Whether ``name`` is bound in this scope (param or local)."""
        return (
            name in self.params
            or name in self.bound
            or name in self.global_decls  # rebinding a global is not local,
            # but it is *resolved*, so callers never treat it as captured
        )

    def lookup_binding(self, name: str) -> Optional[ast.AST]:
        """Value expression bound to ``name`` here or in an enclosing
        function scope (``None`` when unknown)."""
        scope: Optional[FunctionSummary] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            if name in scope.params:
                return None
            scope = scope.parent
        return None


@dataclass
class ModuleSummary:
    """Everything the project index knows about one parsed file."""

    module: str
    path: str
    tree: ast.Module
    #: qualified name (``outer.<locals>.step``) → summary
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: local alias → dotted target (``np`` → ``numpy``,
    #: ``induce_pure_tree`` → ``repro.dtree.induction.induce_pure_tree``)
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level name → value expression of its (last) binding
    module_bindings: Dict[str, ast.AST] = field(default_factory=dict)
    #: names of module-level functions (unqualified)
    top_level_functions: Set[str] = field(default_factory=set)
    #: local variable names that hold SPMD sessions (assigned or
    #: ``with``-bound from an ``open_session(...)`` call)
    session_names: Set[str] = field(default_factory=set)


class _ScopeVisitor(ast.NodeVisitor):
    """Build :class:`FunctionSummary` records for one module."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        self.stack: List[Optional[FunctionSummary]] = [None]  # None = module
        self._anon = 0

    # -- helpers -------------------------------------------------------
    @property
    def current(self) -> Optional[FunctionSummary]:
        return self.stack[-1]

    def _bind(self, name: str, value: Optional[ast.AST]) -> None:
        fn = self.current
        if fn is None:
            if value is not None:
                self.summary.module_bindings[name] = value
            else:
                self.summary.module_bindings.setdefault(
                    name, ast.Constant(value=None)
                )
            return
        fn.bound.add(name)
        if value is not None:
            fn.bindings[name] = value

    def _bind_target(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None)
        # attribute/subscript targets are mutations, handled separately

    def _record_mutation(
        self, target: ast.AST, kind: str, node: ast.AST, method: str = ""
    ) -> None:
        fn = self.current
        if fn is None:
            return
        chain = dotted_parts(target)
        if chain is None:
            return
        fn.mutations.append(
            Mutation(chain=chain, kind=kind, node=node, method=method)
        )

    def _enter_function(
        self, node: ast.AST, name: str, args: ast.arguments
    ) -> FunctionSummary:
        parent = self.current
        prefix = f"{parent.qualname}.<locals>." if parent is not None else ""
        fn = FunctionSummary(
            module=self.summary.module,
            path=self.summary.path,
            qualname=f"{prefix}{name}",
            name=name,
            node=node,
            parent=parent,
        )
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            fn.params.add(a.arg)
        if args.vararg is not None:
            fn.params.add(args.vararg.arg)
        if args.kwarg is not None:
            fn.params.add(args.kwarg.arg)
        self.summary.functions[fn.qualname] = fn
        if parent is None:
            self.summary.top_level_functions.add(name)
        return fn

    # -- scope-introducing nodes ---------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_def(node)

    def _function_def(
        self, node: "Union[ast.FunctionDef, ast.AsyncFunctionDef]"
    ) -> None:
        self._bind(node.name, node)
        for dec in node.decorator_list:
            self.visit(dec)
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        fn = self._enter_function(node, node.name, node.args)
        self.stack.append(fn)
        for stmt in node.body:
            self.visit(stmt)
        self.stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._anon += 1
        fn = self._enter_function(node, f"<lambda-{self._anon}>", node.args)
        self.stack.append(fn)
        self.visit(node.body)
        self.stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._bind(node.name, node)
        # class bodies are walked in the enclosing scope; method `self`
        # state is out of scope for this analysis
        for dec in node.decorator_list:
            self.visit(dec)
        for base in node.bases:
            self.visit(base)
        for stmt in node.body:
            self.visit(stmt)

    # -- bindings ------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._bind_target(target, node.value)
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_mutation(target, "store", node)
                self.visit(target.value)
            elif isinstance(target, ast.Name):
                self._record_mutation(target, "assign", node)
        self._scan_session_assignment(node.targets, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._bind_target(node.target, node.value)
            if isinstance(node.target, (ast.Subscript, ast.Attribute)):
                self._record_mutation(node.target, "store", node)
            self._scan_session_assignment([node.target], node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            self._bind(node.target.id, None)
            self._record_mutation(node.target, "augassign", node)
        else:
            self._record_mutation(node.target, "augassign", node)
            self.visit(node.target.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_mutation(target, "delete", node)
            self.generic_visit(target)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.visit(node.value)
        self._bind(node.target.id, node.value)

    def visit_For(self, node: ast.For) -> None:
        self._loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._loop(node)

    def _loop(self, node: "Union[ast.For, ast.AsyncFor]") -> None:
        self.visit(node.iter)
        self._bind_target(node.target, None)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: "Union[ast.With, ast.AsyncWith]") -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, item.context_expr)
                self._scan_session_assignment(
                    [item.optional_vars], item.context_expr
                )
        for stmt in node.body:
            self.visit(stmt)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self._bind(node.name, None)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.summary.imports.setdefault(local, target)
            self._bind(local, None)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.summary.imports.setdefault(
                local, f"{node.module}.{alias.name}"
            )
            self._bind(local, None)

    def visit_Global(self, node: ast.Global) -> None:
        fn = self.current
        if fn is not None:
            fn.global_decls.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        fn = self.current
        if fn is not None:
            fn.nonlocal_decls.update(node.names)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        # comprehension targets are scoped to the comprehension in
        # Python 3, but folding them into the enclosing function keeps
        # the capture analysis simple without losing soundness
        self.visit(node.iter)
        self._bind_target(node.target, None)
        for cond in node.ifs:
            self.visit(cond)

    # -- loads, calls --------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        fn = self.current
        if fn is not None and isinstance(node.ctx, ast.Load):
            fn.loads.add(node.id)

    def visit_Call(self, node: ast.Call) -> None:
        fn = self.current
        name = dotted_text(node.func)
        if fn is not None and name is not None:
            fn.calls.append(CallSite(name=name, node=node))
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in MUTATING_METHODS:
                    chain = dotted_parts(node.func.value)
                    if chain is not None:
                        fn.mutations.append(
                            Mutation(
                                chain=chain,
                                kind="method",
                                node=node,
                                method=method,
                            )
                        )
        self.generic_visit(node)

    # -- session-variable recognition ----------------------------------
    def _scan_session_assignment(
        self, targets: Sequence[ast.AST], value: ast.AST
    ) -> None:
        if not self._contains_open_session(value):
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.summary.session_names.add(target.id)

    @staticmethod
    def _contains_open_session(expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                name = dotted_text(sub.func)
                if name is not None and name.rsplit(".", 1)[-1] == "open_session":
                    return True
        return False


def _resolve_captures(summary: ModuleSummary) -> None:
    """Classify each function's unresolved loads as captured (bound in
    an enclosing function) or module-level reads."""
    for fn in summary.functions.values():
        names = sorted(fn.loads | fn.nonlocal_decls)
        for name in names:
            declared_nonlocal = name in fn.nonlocal_decls
            if not declared_nonlocal and fn.is_local(name):
                continue
            scope = fn.parent
            found = False
            while scope is not None:
                if name in scope.params or name in scope.bound:
                    fn.captured[name] = scope.bindings.get(name)
                    found = True
                    break
                scope = scope.parent
            if found or declared_nonlocal:
                if declared_nonlocal and name not in fn.captured:
                    fn.captured[name] = None
                continue
            if (
                name in summary.module_bindings
                or name in summary.top_level_functions
            ) and name not in summary.imports:
                fn.global_reads.add(name)
            # everything else: imports, builtins, or unresolved — the
            # SPMD rules never guess about those


def summarize_module(module: str, path: str, tree: ast.Module) -> ModuleSummary:
    """Build the dataflow summary of one parsed file."""
    summary = ModuleSummary(module=module, path=path, tree=tree)
    _ScopeVisitor(summary).visit(tree)
    _resolve_captures(summary)
    return summary


class ProjectIndex:
    """The analysed file set: summaries plus cross-module resolution."""

    def __init__(self, modules: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {
            m.module: m for m in modules
        }

    @classmethod
    def build(
        cls, sources: Iterable[Tuple[str, str, ast.Module]]
    ) -> "ProjectIndex":
        """Index ``(module, path, tree)`` triples."""
        return cls(
            [summarize_module(mod, path, tree) for mod, path, tree in sources]
        )

    # ------------------------------------------------------------------
    def resolve_function(
        self, module: str, name: str
    ) -> Optional[FunctionSummary]:
        """Resolve a dotted callee ``name`` seen in ``module`` to a
        module-level function summary in the index, or ``None``."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        head, _, rest = name.partition(".")
        if not rest:
            if head in summary.top_level_functions:
                return summary.functions.get(head)
            target = summary.imports.get(head)
            if target is not None:
                target_mod, _, target_fn = target.rpartition(".")
                if target_mod and target_fn:
                    other = self.modules.get(target_mod)
                    if other and target_fn in other.top_level_functions:
                        return other.functions.get(target_fn)
            return None
        # dotted: resolve the head through the import table
        target = summary.imports.get(head)
        if target is None:
            return None
        other = self.modules.get(target)
        if other is None or "." in rest:
            return None
        if rest in other.top_level_functions:
            return other.functions.get(rest)
        return None

    def reachable(
        self, roots: Iterable[FunctionSummary]
    ) -> List[FunctionSummary]:
        """Roots plus every function transitively called from them
        (resolved within the index), in deterministic order."""
        seen: Set[Tuple[str, str]] = set()
        order: List[FunctionSummary] = []
        stack = list(roots)
        while stack:
            fn = stack.pop(0)
            key = (fn.module, fn.qualname)
            if key in seen:
                continue
            seen.add(key)
            order.append(fn)
            # nested functions called by bare name resolve locally first
            for call in fn.calls:
                target = self._resolve_from(fn, call.name)
                if target is not None:
                    stack.append(target)
        return order

    def _resolve_from(
        self, caller: FunctionSummary, name: str
    ) -> Optional[FunctionSummary]:
        summary = self.modules.get(caller.module)
        if summary is None:
            return None
        head, _, rest = name.partition(".")
        if not rest:
            # a nested sibling or child function shadows module scope
            scope: Optional[FunctionSummary] = caller
            while scope is not None:
                candidate = summary.functions.get(
                    f"{scope.qualname}.<locals>.{head}"
                )
                if candidate is not None:
                    return candidate
                scope = scope.parent
        return self.resolve_function(caller.module, name)


def iter_functions(summary: ModuleSummary) -> Iterator[FunctionSummary]:
    """All function summaries of a module in definition order."""
    return iter(summary.functions.values())
