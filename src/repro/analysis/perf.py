"""Performance rule family: find scalar-Python hot loops before compiling.

ROADMAP open item 1 is blunt: parallel backends do not pay because the
inner kernels are scalar Python (``run/global-search/search`` alone is
~559 ms of a 566 ms serial smoke run).  Before anyone writes a
numba/Cython path, this pass finds the loops that block vectorisation
and ranks them by *measured* hotness:

========  ==========================================================
PERF001   scalar Python loop over NumPy array data
PERF002   per-iteration allocation in a loop (``np.append`` /
          ``np.concatenate`` / list-grow-then-``np.array``)
PERF003   repeated attribute/global lookup inside a hot loop
PERF004   implicit dtype promotion in a numeric expression
PERF005   element-wise ``math.*`` where a NumPy ufunc exists
========  ==========================================================

The family is **opt-in** (``repro-lint --perf``): a perf finding is a
cost, not a correctness bug, so it gates CI only through the committed
baseline (``lint-baseline.json``) — pre-existing findings are burned
down incrementally while *new* ones fail immediately.

**Profile-guided ranking.**  ``--trace-json`` takes a
``repro.run-report/1`` artifact (the smoke-bench trace CI already
emits) and uses per-span *self* times to rank findings: each diagnostic
in a module reached by a hot span is annotated with the span's measured
self time and sorted hottest-first, so the ``global-search/search``
loops surface at the top instead of drowning in alphabetical order.
The span→module correspondence is the declarative
:data:`SPAN_MODULE_HINTS` table (single source, exercised by tests).
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintEngine,
    LintRule,
    all_rules,
    build_file_context,
    module_name_for,
    register_rule,
)
from repro.analysis.rules import _is_test_module, dotted_name

#: the numeric stack — the only modules the PERF family inspects
#: (analysis/obs/runtime walk ASTs and message queues, not arrays)
PERF_MODULES: Tuple[str, ...] = (
    "repro.core",
    "repro.dtree",
    "repro.geometry",
    "repro.graph",
    "repro.mesh",
    "repro.metrics",
    "repro.partition",
    "repro.sim",
    "repro.utils",
)

#: span name → dotted module prefixes its self-time is attributed to.
#: Spans are emitted by the code under these modules (see the tracer
#: call sites); the ranking uses the hottest span naming each module.
SPAN_MODULE_HINTS: Dict[str, Tuple[str, ...]] = {
    "global-search": (
        "repro.core.contact_search",
        "repro.core.local_search",
        "repro.geometry.boxsearch",
        "repro.geometry.bbox",
    ),
    "search": (
        "repro.core.contact_search",
        "repro.geometry.boxsearch",
        "repro.geometry.bbox",
    ),
    "exchange": ("repro.core.contact_search",),
    "coarsen": ("repro.partition.coarsen", "repro.partition.matching"),
    "initial": ("repro.partition.initial",),
    "refine": ("repro.partition",),
    "refine-G'": ("repro.partition",),
    "collapse": ("repro.partition.fragments",),
    "dtree-induce": ("repro.dtree",),
    "update": ("repro.dtree", "repro.partition.repartition"),
    "map-transfer": ("repro.metrics", "repro.partition.repartition"),
    "simulate": ("repro.sim", "repro.mesh"),
    "partition": ("repro.partition",),
    "rcb": ("repro.geometry.rcb",),
}

#: numpy calls whose results are provably array-valued (used as PERF001
#: iteration evidence; scalar-returning np calls are deliberately absent)
_ARRAY_RETURNING = frozenset(
    {
        "arange",
        "argsort",
        "argwhere",
        "array",
        "asarray",
        "ascontiguousarray",
        "bincount",
        "concatenate",
        "cumsum",
        "diff",
        "empty",
        "flatnonzero",
        "full",
        "hstack",
        "linspace",
        "nonzero",
        "ones",
        "repeat",
        "sort",
        "stack",
        "unique",
        "vstack",
        "where",
        "zeros",
    }
)

#: allocating numpy calls that must not run per loop iteration (PERF002)
_LOOP_ALLOCATORS = frozenset(
    {"append", "concatenate", "hstack", "vstack", "stack", "array", "asarray"}
)

#: math.* functions with a NumPy ufunc of the same name (PERF005)
_MATH_UFUNCS = frozenset(
    {
        "sqrt",
        "sin",
        "cos",
        "tan",
        "exp",
        "log",
        "log2",
        "log10",
        "floor",
        "ceil",
        "fabs",
        "hypot",
        "atan2",
    }
)

#: occurrences of one dotted chain in a single loop body before PERF003
#: fires (two repeats is idiom; three is a measurable lookup tax)
PERF003_THRESHOLD = 3

#: integer dtype spellings recognised for PERF004 promotion evidence
_INT_DTYPES = frozenset(
    {
        "int",
        "int8",
        "int16",
        "int32",
        "int64",
        "intp",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "np.int8",
        "np.int16",
        "np.int32",
        "np.int64",
        "np.intp",
        "numpy.int8",
        "numpy.int16",
        "numpy.int32",
        "numpy.int64",
        "numpy.intp",
    }
)

_NUMERIC_BINOPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)


def _is_numpy_call(node: ast.AST) -> bool:
    """``np.X(...)``/``numpy.X(...)`` with ``X`` array-returning."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    head, _, tail = name.rpartition(".")
    return head in ("np", "numpy") and tail in _ARRAY_RETURNING


class _ArrayEvidence:
    """Per-function tracker of names that provably hold NumPy arrays.

    Evidence comes from two places only — parameters annotated
    ``np.ndarray``/``numpy.ndarray`` and names assigned from an
    array-returning ``np.*`` call — so the PERF001 detector
    under-approximates instead of guessing.
    """

    def __init__(self, fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]):
        self.array_names: Set[str] = set()
        args = fn.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if a.annotation is not None and self._is_ndarray_ann(a.annotation):
                self.array_names.add(a.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and self.is_array_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.array_names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.annotation is not None
                    and self._is_ndarray_ann(node.annotation)
                ):
                    self.array_names.add(node.target.id)

    @staticmethod
    def _is_ndarray_ann(ann: ast.AST) -> bool:
        text = dotted_name(ann)
        if text is None and isinstance(ann, ast.Constant):
            text = ann.value if isinstance(ann.value, str) else None
        return text in ("np.ndarray", "numpy.ndarray", "ndarray")

    def is_array_expr(self, expr: ast.AST) -> bool:
        """Whether ``expr`` provably evaluates to a NumPy array."""
        if _is_numpy_call(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.array_names
        if isinstance(expr, ast.Subscript):
            return self.is_array_expr(expr.value)
        if isinstance(expr, ast.Attribute) and expr.attr == "T":
            return self.is_array_expr(expr.value)
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name in ("enumerate", "zip", "reversed") and expr.args:
                return any(self.is_array_expr(a) for a in expr.args)
            # range(len(arr)) — the index-loop spelling of the same scan
            if name == "range" and len(expr.args) == 1:
                inner = expr.args[0]
                if (
                    isinstance(inner, ast.Call)
                    and dotted_name(inner.func) == "len"
                    and inner.args
                ):
                    return self.is_array_expr(inner.args[0])
        return False


class PerfRule(LintRule):
    """Base for the opt-in PERF family: numeric modules, no tests."""

    opt_in = True
    modules = PERF_MODULES

    def applies_to(self, ctx: FileContext) -> bool:
        if _is_test_module(ctx.module):
            return False
        return super().applies_to(ctx)

    # -- shared traversal ----------------------------------------------
    @staticmethod
    def _functions(
        ctx: FileContext,
    ) -> Iterator[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _loops(
        fn: ast.AST,
    ) -> Iterator[Union[ast.For, ast.AsyncFor, ast.While]]:
        for node in ast.walk(fn):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                yield node


@register_rule
class ScalarLoopRule(PerfRule):
    """PERF001 — scalar Python loop over NumPy array data.

    Iterating an ndarray element-by-element pays the full interpreter
    dispatch cost per element — two to three orders of magnitude over
    the vectorised equivalent — and blocks any compiled path.  Flagged
    loops must be batched (fancy indexing, ``np.repeat``, boolean
    masks) or moved behind a certified kernel.
    """

    code = "PERF001"
    name = "perf-scalar-loop"
    description = "scalar Python loop over NumPy array data"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for fn in self._functions(ctx):
            evidence = _ArrayEvidence(fn)
            for loop in self._loops(fn):
                if isinstance(loop, ast.While):
                    continue
                if evidence.is_array_expr(loop.iter):
                    yield self.diag(
                        ctx,
                        loop,
                        "scalar Python loop over NumPy array data — "
                        "vectorise (fancy indexing/np.repeat/masks) or "
                        "move behind a certified kernel",
                    )


@register_rule
class LoopAllocationRule(PerfRule):
    """PERF002 — per-iteration array allocation in a loop.

    ``np.append``/``np.concatenate`` copy the whole accumulator every
    iteration (O(n²) growth); converting a loop-grown list with
    ``np.array`` re-boxes every element.  Preallocate, or collect
    chunks and concatenate once after the loop.
    """

    code = "PERF002"
    name = "perf-loop-allocation"
    description = "per-iteration array allocation in a loop"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for fn in self._functions(ctx):
            grown: Set[str] = set()
            for loop in self._loops(fn):
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    name = dotted_name(node.func)
                    if name is not None:
                        head, _, tail = name.rpartition(".")
                        if head in ("np", "numpy") and tail in _LOOP_ALLOCATORS:
                            yield self.diag(
                                ctx,
                                node,
                                f"np.{tail}(...) inside a loop reallocates "
                                f"per iteration — preallocate or "
                                f"concatenate once after the loop",
                            )
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "append"
                        and isinstance(node.func.value, ast.Name)
                    ):
                        grown.add(node.func.value.id)
            if not grown:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                head, _, tail = name.rpartition(".")
                if (
                    head in ("np", "numpy")
                    and tail in ("array", "asarray")
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in grown
                ):
                    yield self.diag(
                        ctx,
                        node,
                        f"np.{tail}({node.args[0].id}) converts a "
                        f"loop-grown Python list — preallocate the array "
                        f"and fill by index instead",
                    )


@register_rule
class RepeatedLookupRule(PerfRule):
    """PERF003 — repeated attribute/global lookup inside a hot loop.

    Every ``a.b.c(...)`` in a loop body re-resolves the whole chain per
    iteration; binding it to a local before the loop is the classic
    CPython win and a precondition for clean kernel extraction.
    """

    code = "PERF003"
    name = "perf-repeated-lookup"
    description = "repeated attribute/global lookup inside a hot loop"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for fn in self._functions(ctx):
            inner: Set[int] = set()
            for loop in self._loops(fn):
                for node in ast.walk(loop):
                    if node is not loop and isinstance(
                        node, (ast.For, ast.AsyncFor, ast.While)
                    ):
                        inner.add(id(node))
            for loop in self._loops(fn):
                if id(loop) in inner:
                    continue  # count each chain once, in the outermost loop
                rebound = self._rebound_roots(loop)
                counts: Counter = Counter()
                first: Dict[str, ast.AST] = {}
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    if not isinstance(node.func, ast.Attribute):
                        continue
                    name = dotted_name(node.func)
                    if name is None or name.count(".") < 1:
                        continue
                    root = name.split(".", 1)[0]
                    if root in rebound:
                        continue
                    counts[name] += 1
                    first.setdefault(name, node)
                for name, n in sorted(counts.items()):
                    if n >= PERF003_THRESHOLD:
                        yield self.diag(
                            ctx,
                            first[name],
                            f"{name}(...) resolved {n}× inside one loop — "
                            f"bind it to a local before the loop",
                        )

    @staticmethod
    def _rebound_roots(
        loop: Union[ast.For, ast.AsyncFor, ast.While]
    ) -> Set[str]:
        names: Set[str] = set()
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            for n in ast.walk(loop.target):
                if isinstance(n, ast.Name):
                    names.add(n.id)
        for node in ast.walk(loop):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for n in ast.walk(target):
                        if isinstance(n, ast.Name):
                            names.add(n.id)
        return names


@register_rule
class DtypePromotionRule(PerfRule):
    """PERF004 — implicit dtype promotion in a numeric expression.

    Mixing an explicitly-int array with a float scalar silently
    allocates a promoted float64 copy per evaluation; true division of
    an int array does the same.  Promotions belong at one explicit
    ``astype`` boundary, not inside numeric expressions.
    """

    code = "PERF004"
    name = "perf-dtype-promotion"
    description = "implicit dtype promotion in a numeric expression"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, _NUMERIC_BINOPS):
                continue
            left_int = self._int_array_expr(node.left)
            right_int = self._int_array_expr(node.right)
            if isinstance(node.op, ast.Div) and (left_int or right_int):
                yield self.diag(
                    ctx,
                    node,
                    "true division of an int-dtype array allocates a "
                    "promoted float64 copy — divide after one explicit "
                    "astype, or use // for integer semantics",
                )
                continue
            if (left_int and self._float_const(node.right)) or (
                right_int and self._float_const(node.left)
            ):
                yield self.diag(
                    ctx,
                    node,
                    "int-dtype array combined with a float scalar "
                    "promotes implicitly — hoist the conversion to one "
                    "explicit astype boundary",
                )

    @staticmethod
    def _float_const(expr: ast.AST) -> bool:
        return (
            isinstance(expr, ast.Constant)
            and isinstance(expr.value, float)
        )

    @staticmethod
    def _int_array_expr(expr: ast.AST) -> bool:
        """``np.X(..., dtype=<int dtype>)`` — explicit int evidence."""
        if not isinstance(expr, ast.Call):
            return False
        name = dotted_name(expr.func)
        if name is None:
            return False
        head, _, tail = name.rpartition(".")
        if head not in ("np", "numpy") or tail not in _ARRAY_RETURNING:
            return False
        for kw in expr.keywords:
            if kw.arg != "dtype":
                continue
            dtype_text = dotted_name(kw.value)
            if dtype_text is None and isinstance(kw.value, ast.Constant):
                dtype_text = (
                    kw.value.value
                    if isinstance(kw.value.value, str)
                    else None
                )
            if dtype_text in _INT_DTYPES:
                return True
        return False


@register_rule
class MathUfuncRule(PerfRule):
    """PERF005 — element-wise ``math.*`` where a NumPy ufunc exists.

    ``math.sqrt`` in a loop processes one scalar per interpreter round
    trip; the identically-named ufunc handles the whole array in one
    call and fuses into a compiled path.
    """

    code = "PERF005"
    name = "perf-math-ufunc"
    description = "element-wise math.* in a loop where a ufunc exists"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        from_math = self._math_imports(ctx.tree)
        for fn in self._functions(ctx):
            for loop in self._loops(fn):
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    name = dotted_name(node.func)
                    if name is None:
                        continue
                    head, _, tail = name.rpartition(".")
                    hit = (head == "math" and tail in _MATH_UFUNCS) or (
                        not head and name in from_math
                    )
                    if hit:
                        fname = tail if head else name
                        yield self.diag(
                            ctx,
                            node,
                            f"math.{fname} maps one scalar per call — "
                            f"np.{fname} is the vectorised ufunc",
                        )

    @staticmethod
    def _math_imports(tree: ast.Module) -> Set[str]:
        """Names imported from ``math`` that shadow a ufunc."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "math":
                for alias in node.names:
                    if alias.name in _MATH_UFUNCS and alias.asname is None:
                        names.add(alias.name)
        return names


def perf_rules() -> List[PerfRule]:
    """The registered PERF rules, sorted by code."""
    return [r for r in all_rules() if isinstance(r, PerfRule)]


# ----------------------------------------------------------------------
# profile-guided ranking
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HotSpot:
    """One module's measured hotness: the hottest span naming it."""

    module: str
    span_path: str
    self_ms: float


def load_self_times(trace_path: Union[str, Path]) -> Dict[str, float]:
    """``{span path: self milliseconds}`` from a run-report artifact.

    Accepts any ``repro.run-report/1`` document (``repro-contact trace
    --trace-json`` or the CI smoke bench); raises ``ValueError`` on a
    schema violation so a stale artifact fails loudly.
    """
    from repro.obs.report import RunReport

    report = RunReport.load(trace_path)
    return {
        path: span.self_s * 1e3 for path, span in report.spans.walk()
    }


def module_hotness(self_times: Dict[str, float]) -> Dict[str, HotSpot]:
    """Attribute span self-times to modules via :data:`SPAN_MODULE_HINTS`.

    Each module gets the hottest single span that names it (max, not
    sum — one span's time must not be double-counted across the many
    modules it hints at).
    """
    hot: Dict[str, HotSpot] = {}
    for path, self_ms in self_times.items():
        leaf = path.rsplit("/", 1)[-1]
        for prefix in SPAN_MODULE_HINTS.get(leaf, ()):
            existing = hot.get(prefix)
            if existing is None or self_ms > existing.self_ms:
                hot[prefix] = HotSpot(
                    module=prefix, span_path=path, self_ms=self_ms
                )
    return hot


def _module_of_path(path: str) -> str:
    return module_name_for(path)


def hotness_of(module: str, hot: Dict[str, HotSpot]) -> Optional[HotSpot]:
    """The hottest :class:`HotSpot` whose module prefix covers
    ``module`` (``None`` when the profile never touched it)."""
    best: Optional[HotSpot] = None
    for prefix, spot in hot.items():
        if module == prefix or module.startswith(prefix + "."):
            if best is None or spot.self_ms > best.self_ms:
                best = spot
    return best


def rank_diagnostics(
    diagnostics: Sequence[Diagnostic],
    self_times: Dict[str, float],
) -> List[Diagnostic]:
    """Order ``diagnostics`` hottest-first and annotate the hot ones.

    Findings in modules a profiled span attributes time to come first
    (descending measured self-time), each with a ``[hot: <span>
    self=<ms>ms]`` suffix; cold findings follow in the usual
    (path, line) order.
    """
    hot = module_hotness(self_times)
    keyed: List[Tuple[float, Diagnostic]] = []
    for d in diagnostics:
        spot = hotness_of(_module_of_path(d.path), hot)
        if spot is not None and spot.self_ms > 0:
            annotated = replace(
                d,
                message=(
                    f"{d.message} "
                    f"[hot: {spot.span_path} self={spot.self_ms:.1f}ms]"
                ),
            )
            keyed.append((spot.self_ms, annotated))
        else:
            keyed.append((0.0, d))
    keyed.sort(key=lambda pair: (-pair[0], pair[1]))
    return [d for _ms, d in keyed]


# ----------------------------------------------------------------------
# analyzer entry point
# ----------------------------------------------------------------------


class PerfAnalyzer:
    """Run the PERF family (and nothing else) over files/directories.

    A thin driver over :class:`LintEngine` with the opt-in rule set
    forced on; ``select``/``ignore`` narrow by code exactly like the
    engine (unknown codes are the CLI's concern).
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        chosen: List[PerfRule] = perf_rules()
        if select is not None:
            wanted = set(select)
            chosen = [r for r in chosen if r.code in wanted]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [r for r in chosen if r.code not in dropped]
        self.engine = LintEngine(rules=chosen)

    def analyze_paths(
        self,
        paths: Iterable[Union[str, Path]],
        exclude: Sequence[str] = (),
    ) -> List[Diagnostic]:
        """Lint the target set with the PERF rules only."""
        return self.engine.lint_paths(paths, exclude=exclude)

    def analyze_source(
        self,
        source: str,
        module: str = "<string>",
        path: str = "<string>",
    ) -> List[Diagnostic]:
        """Single-source convenience wrapper (unit tests)."""
        return self.engine.lint_source(source, module=module, path=path)
