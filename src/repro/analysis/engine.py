"""Pluggable AST lint engine.

A :class:`LintRule` inspects one parsed file (a :class:`FileContext`)
and yields :class:`Diagnostic` records.  Rules register themselves in a
module-level registry via :func:`register_rule`; the
:class:`LintEngine` parses each target file once, runs every selected
rule over it, and filters out diagnostics silenced by
``# repro-lint: disable=CODE`` comments.

Suppression grammar (comments only — strings never suppress):

``# repro-lint: disable=ARR001`` on the flagged line silences the
named rule(s) for that line; ``# repro-lint: disable-file=ARR001``
anywhere in a file silences them for the whole file.  ``disable=all``
is accepted in both forms.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"(all|[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
)

#: Diagnostic code reported for files the ``ast`` module cannot parse.
SYNTAX_ERROR_CODE = "E999"


def _excluded(path: Path, patterns: Sequence[str]) -> bool:
    """Whether ``path`` matches any exclude glob (POSIX matching)."""
    text = path.as_posix()
    return any(fnmatch.fnmatch(text, pat) for pat in patterns)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, sortable into (path, line, col, code) order.

    ``col`` is 1-based, like every mainstream linter's output (the
    ``ast`` module reports 0-based offsets; :meth:`LintRule.diag` and
    the syntax-error path perform the shift at construction time).
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-serialisable form (see ``docs/STATIC_ANALYSIS.md``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: CODE message`` — the human reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one target file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    #: line → set of codes disabled on that line ({"all"} disables all)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: codes disabled for the entire file ({"all"} disables all)
    file_suppressions: Set[str] = field(default_factory=set)

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when ``code`` is silenced at ``line`` by a comment."""
        for scope in (self.file_suppressions, self.line_suppressions.get(line, set())):
            if "all" in scope or code in scope:
                return True
        return False


class LintRule:
    """Base class for lint rules.

    Subclasses set ``code`` (e.g. ``"ARR001"``), ``name`` and
    ``description`` and implement :meth:`check`.  ``modules`` optionally
    restricts the rule to dotted-module prefixes (empty = every file).
    """

    code: str = ""
    name: str = ""
    description: str = ""
    #: dotted module-name prefixes this rule applies to ((), = all files)
    modules: Tuple[str, ...] = ()
    #: opt-in rules stay out of the default engine run; they execute
    #: only when explicitly ``--select``-ed or driven by a dedicated
    #: pass (the PERF family runs under ``repro-lint --perf``)
    opt_in: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule should run on ``ctx`` (module scoping)."""
        if not self.modules:
            return True
        return any(
            ctx.module == m or ctx.module.startswith(m + ".")
            for m in self.modules
        )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        """Yield diagnostics for ``ctx``; override in subclasses."""
        raise NotImplementedError

    def diag(
        self, ctx: FileContext, node: ast.AST, message: Optional[str] = None
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` (1-based column)."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message if message is not None else self.description,
        )


_REGISTRY: Dict[str, LintRule] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: instantiate and add ``cls`` to the registry."""
    if not cls.code:
        raise ValueError(f"{cls.__name__} must define a non-empty code")
    if cls.code in _REGISTRY and type(_REGISTRY[cls.code]) is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls()
    return cls


def all_rules() -> List[LintRule]:
    """Registered rules sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> LintRule:
    """Look up one rule by its code; raises ``KeyError`` when unknown."""
    return _REGISTRY[code]


def module_name_for(path: Union[str, Path]) -> str:
    """Infer the dotted module name of ``path``.

    The name is rooted at the last ``repro``/``src`` component so both
    source checkouts (``src/repro/graph/csr.py``) and test fixtures
    mimicking the package layout (``fixtures/repro/graph/bad.py``)
    resolve to ``repro.graph.…`` and trigger module-scoped rules.
    """
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro", "src"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            if anchor == "src":
                idx += 1
            return ".".join(parts[idx:])
    return ".".join(parts[-1:])


def _collect_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract line- and file-level suppressions from comment tokens."""
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            kind, codes_str = m.groups()
            codes = {c.strip() for c in codes_str.split(",")}
            if kind == "disable-file":
                per_file |= codes
            else:
                per_line.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:  # pragma: no cover - truncated input
        pass
    return per_line, per_file


def _extend_decorator_suppressions(
    tree: ast.Module, per_line: Dict[int, Set[str]]
) -> None:
    """A suppression comment on a decorator line also covers the
    decorated ``def``/``class`` statement.

    Rules anchor their diagnostics at the *definition* line (that is
    where ``ast`` puts ``lineno``), but authors naturally write the
    comment next to the decorator that prompted it; both placements
    silence the finding.
    """
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for dec in node.decorator_list:
            codes = per_line.get(dec.lineno)
            if codes:
                per_line.setdefault(node.lineno, set()).update(codes)


def build_file_context(
    source: str, module: str = "<string>", path: str = "<string>"
) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` with suppressions
    collected; raises ``SyntaxError`` on unparsable input."""
    tree = ast.parse(source)
    per_line, per_file = _collect_suppressions(source)
    _extend_decorator_suppressions(tree, per_line)
    return FileContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        line_suppressions=per_line,
        file_suppressions=per_file,
    )


class LintEngine:
    """Run a set of rules over files, directories, or raw source.

    ``select``/``ignore`` narrow the rule set by code; by default every
    registered rule runs.
    """

    def __init__(
        self,
        rules: Optional[Sequence[LintRule]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        chosen = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {r.code for r in chosen}
            if unknown:
                raise KeyError(f"unknown rule code(s): {sorted(unknown)}")
            chosen = [r for r in chosen if r.code in wanted]
        elif rules is None:
            # a default run skips opt-in families; an explicit --select
            # (handled above) may still pull them in one by one
            chosen = [r for r in chosen if not r.opt_in]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [r for r in chosen if r.code not in dropped]
        self.rules: List[LintRule] = chosen

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_source(
        self,
        source: str,
        module: str = "<string>",
        path: str = "<string>",
    ) -> List[Diagnostic]:
        """Lint a source string (unit-test friendly)."""
        try:
            ctx = build_file_context(source, module=module, path=path)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 1,
                    code=SYNTAX_ERROR_CODE,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        found: List[Diagnostic] = []
        for rule in self.rules:
            if not rule.applies_to(ctx):
                continue
            for d in rule.check(ctx):
                if not ctx.is_suppressed(d.line, d.code):
                    found.append(d)
        return sorted(found)

    def lint_file(
        self, path: Union[str, Path], module: Optional[str] = None
    ) -> List[Diagnostic]:
        """Lint one file; ``module`` overrides the inferred name."""
        p = Path(path)
        source = p.read_text(encoding="utf-8")
        return self.lint_source(
            source,
            module=module if module is not None else module_name_for(p),
            path=str(p),
        )

    def lint_paths(
        self,
        paths: Iterable[Union[str, Path]],
        exclude: Sequence[str] = (),
    ) -> List[Diagnostic]:
        """Lint files and (recursively) directories; returns sorted
        diagnostics.  Missing paths raise ``FileNotFoundError``.
        ``exclude`` holds ``fnmatch`` glob patterns matched against the
        POSIX form of each candidate path (fixture trees that seed
        deliberate violations are excluded this way in CI)."""
        found: List[Diagnostic] = []
        for f in self._iter_target_files(paths, exclude):
            found.extend(self.lint_file(f))
        return sorted(found)

    # ------------------------------------------------------------------
    @staticmethod
    def _iter_target_files(
        paths: Iterable[Union[str, Path]],
        exclude: Sequence[str] = (),
    ) -> Iterator[Path]:
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                for f in sorted(p.rglob("*.py")):
                    if any(part.startswith(".") for part in f.parts):
                        continue
                    if _excluded(f, exclude):
                        continue
                    yield f
            elif p.is_file():
                if not _excluded(p, exclude):
                    yield p
            else:
                raise FileNotFoundError(f"no such file or directory: {p}")
