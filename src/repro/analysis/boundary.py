"""Trust-boundary taint pass: request bytes must be validated first.

The service trust model (``docs/SERVICE.md``) is *certify the
boundary*: an HTTP body is untrusted until it has passed through a
``repro.service.schemas`` validator, after which the engine treats it
as a well-formed job request.  TRUST001 machine-checks that model: it
marks every ``json.loads(...)`` result in a ``repro.service`` module
as tainted, propagates the taint through assignments, containers, and
calls into other ``repro.service`` functions, clears it at
``schemas.validate_*`` calls, and reports any tainted value that
reaches a filesystem / subprocess / ``np.load`` sink.

The pass is intraprocedural per function with a call-following step:
a call whose argument is tainted re-analyses the callee with the
matching parameters tainted (memoised, so mutual recursion
terminates).  Heap flows are deliberately out of scope — storing a
request on an object and reading it back elsewhere is exactly the
pattern the validate-at-admission design forbids, and the admission
path itself is what this rule proves.  Like the other service rules
it under-approximates: names it cannot resolve are never guessed.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow import (
    FunctionSummary,
    ModuleSummary,
    dotted_text,
)
from repro.analysis.engine import Diagnostic, register_rule
from repro.analysis.asynccheck import (
    ServiceProject,
    ServiceRule,
    _Resolver,
    expanded_call_name,
)

__all__ = ["TrustBoundaryRule", "SINK_CALLS", "SINK_METHOD_TAILS"]

#: modules the taint pass covers (the trust boundary lives here)
_SCOPE_PREFIX = "repro.service"

#: expanded dotted call → sink description
SINK_CALLS: Dict[str, str] = {
    "open": "filesystem",
    "io.open": "filesystem",
    "os.remove": "filesystem",
    "os.replace": "filesystem",
    "os.rename": "filesystem",
    "os.makedirs": "filesystem",
    "os.listdir": "filesystem",
    "os.stat": "filesystem",
    "os.path.realpath": "filesystem (path probe)",
    "shutil.rmtree": "filesystem",
    "shutil.copy": "filesystem",
    "shutil.copyfile": "filesystem",
    "shutil.move": "filesystem",
    "subprocess.run": "subprocess",
    "subprocess.call": "subprocess",
    "subprocess.check_call": "subprocess",
    "subprocess.check_output": "subprocess",
    "subprocess.Popen": "subprocess",
    "numpy.load": "np.load",
    "numpy.loadtxt": "np.load",
    "numpy.genfromtxt": "np.load",
    "numpy.fromfile": "np.load",
    "numpy.save": "np.save",
    "numpy.savez": "np.save",
    "numpy.savez_compressed": "np.save",
    "repro.mesh.io.load_mesh": "mesh loader",
}

#: method tails that are sinks when their receiver or argument is
#: tainted (pathlib-style I/O)
SINK_METHOD_TAILS: Dict[str, str] = {
    "read_text": "filesystem",
    "read_bytes": "filesystem",
    "write_text": "filesystem",
    "write_bytes": "filesystem",
    "unlink": "filesystem",
    "rmdir": "filesystem",
}

#: expanded calls whose *result* is untrusted request data
_SOURCE_CALLS = frozenset({"json.loads", "json.load"})

_FOLLOW_DEPTH = 8


@register_rule
class TrustBoundaryRule(ServiceRule):
    """TRUST001 — unvalidated request data reaches a dangerous sink."""

    code = "TRUST001"
    name = "trust-boundary-taint"
    description = (
        "HTTP request data reaches a filesystem/subprocess/np.load "
        "sink without passing a repro.service.schemas validator"
    )

    def project_check(
        self, project: ServiceProject
    ) -> Iterator[Diagnostic]:
        checker = _TaintChecker(project)
        # project.functions holds the collision-corrected method
        # summaries (Class.method qualnames), unlike the raw index
        for (module, _qualname), fn in sorted(project.functions.items()):
            if not module.startswith(_SCOPE_PREFIX):
                continue
            if isinstance(
                fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                checker.analyze(fn, frozenset())
        yield from sorted(set(checker.findings))


class _TaintChecker:
    """Runs the per-function taint pass, following tainted calls."""

    def __init__(self, project: ServiceProject) -> None:
        self.project = project
        self.resolver = _Resolver(project)
        self.findings: List[Diagnostic] = []
        self._memo: Set[Tuple[str, str, FrozenSet[str]]] = set()

    # -- entry ---------------------------------------------------------
    def analyze(
        self,
        fn: FunctionSummary,
        tainted_params: FrozenSet[str],
        depth: int = 0,
    ) -> None:
        key = (fn.module, fn.qualname, tainted_params)
        if key in self._memo or depth > _FOLLOW_DEPTH:
            return
        self._memo.add(key)
        summary = self.project.index.modules[fn.module]
        run = _FunctionRun(self, summary, fn, set(tainted_params), depth)
        body = getattr(fn.node, "body", None)
        if isinstance(body, list):
            # two passes approximate the loop-carried fixpoint
            run.scan_block(body)
            run.scan_block(body)

    # -- classification ------------------------------------------------
    def is_source(self, summary: ModuleSummary, call: ast.Call) -> bool:
        name = dotted_text(call.func)
        return (
            name is not None
            and expanded_call_name(summary, name) in _SOURCE_CALLS
        )

    def is_sanitizer(
        self, summary: ModuleSummary, fn: FunctionSummary, call: ast.Call
    ) -> bool:
        name = dotted_text(call.func)
        if name is None:
            return False
        expanded = expanded_call_name(summary, name)
        if expanded.startswith(f"{_SCOPE_PREFIX}.schemas.validate"):
            return True
        for target in self.resolver.resolve_call_targets(fn, name):
            if target.module.endswith(".schemas") and target.name.startswith(
                "validate"
            ):
                return True
        return False

    def sink_description(
        self, summary: ModuleSummary, call: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """(rendered call, sink kind) when ``call`` is a sink."""
        name = dotted_text(call.func)
        if name is None:
            return None
        expanded = expanded_call_name(summary, name)
        kind = SINK_CALLS.get(expanded)
        if kind is not None:
            return expanded, kind
        tail = name.rsplit(".", 1)[-1]
        kind = SINK_METHOD_TAILS.get(tail)
        if kind is not None and "." in name:
            return name, kind
        return None


class _FunctionRun:
    """One taint pass over one function body."""

    def __init__(
        self,
        checker: _TaintChecker,
        summary: ModuleSummary,
        fn: FunctionSummary,
        env: Set[str],
        depth: int,
    ) -> None:
        self.checker = checker
        self.summary = summary
        self.fn = fn
        self.env = env
        self.depth = depth

    # -- expression taint ----------------------------------------------
    def tainted(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            if self.checker.is_sanitizer(self.summary, self.fn, expr):
                return False
            if self.checker.is_source(self.summary, expr):
                return True
            return any(self.tainted(a) for a in expr.args) or any(
                self.tainted(k.value) for k in expr.keywords
            )
        if isinstance(expr, ast.Name):
            return expr.id in self.env
        if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        return any(
            self.tainted(child)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )

    # -- call inspection (sinks + interprocedural follow) --------------
    def visit_calls(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._check_call(sub)

    def _check_call(self, call: ast.Call) -> None:
        if self.checker.is_sanitizer(self.summary, self.fn, call):
            return
        args = list(call.args) + [k.value for k in call.keywords]
        sink = self.checker.sink_description(self.summary, call)
        if sink is not None:
            rendered, kind = sink
            exposed = [a for a in args if self.tainted(a)]
            receiver = (
                call.func.value
                if isinstance(call.func, ast.Attribute)
                else None
            )
            if receiver is not None and self.tainted(receiver):
                exposed.append(receiver)
            if exposed:
                self.checker.findings.append(
                    Diagnostic(
                        path=self.fn.path,
                        line=call.lineno,
                        col=call.col_offset + 1,
                        code="TRUST001",
                        message=(
                            f"request-derived value reaches {kind} "
                            f"sink {rendered}(...) without passing a "
                            f"{_SCOPE_PREFIX}.schemas validator"
                        ),
                    )
                )
        self._follow_call(call)

    def _follow_call(self, call: ast.Call) -> None:
        name = dotted_text(call.func)
        if name is None:
            return
        targets = self.checker.resolver.resolve_call_targets(self.fn, name)
        for target in targets:
            if not target.module.startswith(_SCOPE_PREFIX):
                continue
            if target.module.endswith(".schemas"):
                continue  # the validators ARE the boundary
            params = self._positional_params(target, name)
            tainted_params: Set[str] = set()
            for i, arg in enumerate(call.args):
                if (
                    not isinstance(arg, ast.Starred)
                    and i < len(params)
                    and self.tainted(arg)
                ):
                    tainted_params.add(params[i])
            for kw in call.keywords:
                if kw.arg is not None and self.tainted(kw.value):
                    if kw.arg in target.params:
                        tainted_params.add(kw.arg)
            if tainted_params:
                self.checker.analyze(
                    target, frozenset(tainted_params), self.depth + 1
                )

    @staticmethod
    def _positional_params(
        target: FunctionSummary, call_name: str
    ) -> List[str]:
        args = getattr(target.node, "args", None)
        if args is None:
            return []
        names = [
            a.arg for a in list(args.posonlyargs) + list(args.args)
        ]
        # bound-method call: the receiver consumes the self/cls slot
        if names and names[0] in ("self", "cls") and "." in call_name:
            names = names[1:]
        return names

    # -- statement scan ------------------------------------------------
    def scan_block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.scan_stmt(stmt)

    def scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are scanned as their own roots
        if isinstance(stmt, ast.Assign):
            self.visit_calls(stmt.value)
            taint = self.tainted(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, taint)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.visit_calls(stmt.value)
                self._bind_target(stmt.target, self.tainted(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            self.visit_calls(stmt.value)
            if isinstance(stmt.target, ast.Name) and self.tainted(
                stmt.value
            ):
                self.env.add(stmt.target.id)
            return
        if isinstance(stmt, ast.If):
            self.visit_calls(stmt.test)
            before = set(self.env)
            self.scan_block(stmt.body)
            after_body = set(self.env)
            self.env = set(before)
            self.scan_block(stmt.orelse)
            self.env |= after_body
            return
        if isinstance(stmt, ast.While):
            self.visit_calls(stmt.test)
            before = set(self.env)
            # twice: taint introduced late in the body reaches sinks
            # early in the next iteration
            self.scan_block(stmt.body)
            self.scan_block(stmt.body)
            self.env |= before  # the loop may run zero times
            self.scan_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_calls(stmt.iter)
            before = set(self.env)
            self._bind_target(stmt.target, self.tainted(stmt.iter))
            self.scan_block(stmt.body)
            self.scan_block(stmt.body)  # loop-carried taint
            self.env |= before
            self.scan_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.visit_calls(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(
                        item.optional_vars,
                        self.tainted(item.context_expr),
                    )
            self.scan_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.scan_block(stmt.body)
            for handler in stmt.handlers:
                self.scan_block(handler.body)
            self.scan_block(stmt.orelse)
            self.scan_block(stmt.finalbody)
            return
        # returns, raises, expression statements, asserts, ...
        self.visit_calls(stmt)

    def _bind_target(self, target: ast.AST, taint: bool) -> None:
        if isinstance(target, ast.Name):
            if taint:
                self.env.add(target.id)
            else:
                self.env.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint)
        # attribute/subscript stores are heap flows: out of scope
