"""Driver for the service correctness pass (``repro-lint --service``).

Bundles the three service rule modules — coroutine safety
(:mod:`repro.analysis.asynccheck`: ASYNC001–003, TIME001), the
state-machine verifier (:mod:`repro.analysis.statemachine`: SM001,
SM002), and the trust-boundary taint pass
(:mod:`repro.analysis.boundary`: TRUST001) — behind the same analyzer
surface as :class:`~repro.analysis.spmd.SpmdAnalyzer`: parse the
target set once, build the shared :class:`ServiceProject`, run every
selected rule, honour ``# repro-lint: disable=`` suppressions, and
return sorted unique diagnostics.  Like the SPMD pass it analyses the
whole target set as one program, so pass the full tree.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

# importing the rule modules registers their rules
from repro.analysis import boundary, statemachine  # noqa: F401
from repro.analysis.asynccheck import (
    ServiceRule,
    build_service_project,
)
from repro.analysis.dataflow import ProjectIndex
from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintEngine,
    all_rules,
    build_file_context,
    module_name_for,
)

__all__ = ["ServiceAnalyzer", "service_rules"]


def service_rules() -> List[ServiceRule]:
    """Every registered service rule, in registry order."""
    return [r for r in all_rules() if isinstance(r, ServiceRule)]


class ServiceAnalyzer:
    """Run the project-level service pass over files and directories.

    ``select``/``ignore`` narrow the rule set by code exactly like
    :class:`~repro.analysis.engine.LintEngine` (unknown codes are the
    caller's concern — the CLI validates them against the full
    registry first).
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        chosen: List[ServiceRule] = service_rules()
        if select is not None:
            wanted = set(select)
            chosen = [r for r in chosen if r.code in wanted]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [r for r in chosen if r.code not in dropped]
        self.rules: List[ServiceRule] = chosen

    # ------------------------------------------------------------------
    def analyze_contexts(
        self, contexts: Sequence[FileContext]
    ) -> List[Diagnostic]:
        """Run the pass over already-parsed file contexts."""
        if not self.rules:
            return []
        by_path = {ctx.path: ctx for ctx in contexts}
        index = ProjectIndex.build(
            (ctx.module, ctx.path, ctx.tree) for ctx in contexts
        )
        project = build_service_project(index, by_path)
        found: List[Diagnostic] = []
        for rule in self.rules:
            for d in rule.project_check(project):
                ctx = by_path.get(d.path)
                if ctx is not None and ctx.is_suppressed(d.line, d.code):
                    continue
                found.append(d)
        return sorted(set(found))

    def analyze_paths(
        self,
        paths: Iterable[Union[str, Path]],
        exclude: Sequence[str] = (),
    ) -> List[Diagnostic]:
        """Parse the target set and run the pass (syntax errors are
        skipped here — the per-file engine already reports E999)."""
        contexts: List[FileContext] = []
        for f in LintEngine._iter_target_files(paths, exclude):
            source = Path(f).read_text(encoding="utf-8")
            try:
                contexts.append(
                    build_file_context(
                        source,
                        module=module_name_for(f),
                        path=str(f),
                    )
                )
            except SyntaxError:
                continue
        return self.analyze_contexts(contexts)

    def analyze_source(
        self,
        source: str,
        module: str = "<string>",
        path: str = "<string>",
    ) -> List[Diagnostic]:
        """Single-source convenience wrapper (unit tests)."""
        return self.analyze_contexts(
            [build_file_context(source, module=module, path=path)]
        )
