"""Project-specific lint rules guarding the reproduction's invariants.

Each rule machine-checks one contract that the partitioning core relies
on but Python cannot enforce (see ``docs/STATIC_ANALYSIS.md``):

========  ==========================================================
ARR001    numpy allocators in numeric modules need an explicit dtype
ARR002    CSR/partition arrays must be made contiguous, not asarray'd
RNG001    randomness must flow through :mod:`repro.utils.rng`
ASSERT001 library validation must not rely on ``assert`` (python -O)
VAL001    public entry points must validate their array inputs
LOOP001   hot-path modules must not loop over ``xadj``/``adjncy``
========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.analysis.engine import (
    Diagnostic,
    FileContext,
    LintRule,
    register_rule,
)

#: modules whose arrays feed CSR kernels — dtype defaults differ across
#: platforms (Windows ``np.arange`` is int32), so they must be explicit
NUMERIC_MODULES: Tuple[str, ...] = ("repro.graph", "repro.partition")

#: modules where a Python-level loop over the adjacency is a perf bug
HOT_PATH_MODULES: Tuple[str, ...] = ("repro.graph", "repro.partition")

#: the one module allowed to talk to ``np.random`` directly
RNG_MODULE = "repro.utils.rng"

#: numpy allocator → index of its positional ``dtype`` argument
_ALLOCATORS: Dict[str, int] = {
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "arange": 3,
}

#: callables that receive CSR/partition arrays and require contiguity
_CONTIGUITY_SINKS = frozenset(
    {
        "CSRGraph",
        "partition_kway",
        "multilevel_kway",
        "recursive_bisection",
        "multilevel_bisection",
    }
)

#: forbidden ``np.random`` entry points outside :data:`RNG_MODULE`
_RNG_CALLS = frozenset({"default_rng", "seed", "RandomState"})

#: recognised validation helpers (``repro.utils.validation`` plus the
#: ``.validate()`` method convention)
VALIDATION_CALLEES = frozenset(
    {
        "check_array",
        "check_csr_arrays",
        "check_in_range",
        "check_labels",
        "check_positive",
        "require",
        "validate",
    }
)

#: module → public functions that must validate their inputs (VAL001)
ENTRY_POINTS: Dict[str, Tuple[str, ...]] = {
    "repro.partition.kway": ("partition_kway",),
    "repro.partition.mlkway": ("multilevel_kway",),
    "repro.partition.recursive": ("recursive_bisection",),
    "repro.partition.multilevel": ("multilevel_bisection",),
    "repro.dtree.induction": ("induce_pure_tree", "induce_bounded_tree"),
}


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c`` (else None)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _callee_tail(node: ast.Call) -> Optional[str]:
    """Last component of the called name (``np.asarray`` → ``asarray``)."""
    name = dotted_name(node.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _is_test_module(module: str) -> bool:
    """Test and benchmark modules: exempt from library-only rules.

    Benchmarks count — they assert their own results and seed their own
    generators exactly like tests do.
    """
    parts = module.split(".")
    return any(
        p == "conftest"
        or p == "tests"
        or p == "benchmarks"
        or p.startswith("test_")
        or p.startswith("bench_")
        for p in parts
    )


@register_rule
class ExplicitDtypeRule(LintRule):
    """ARR001 — numpy allocators without an explicit ``dtype``.

    ``np.arange``/``np.zeros`` default to the platform C long, which is
    int32 on Windows; CSR kernels require int64.  In numeric modules
    every allocator call must pin its dtype.
    """

    code = "ARR001"
    name = "explicit-dtype"
    description = "numpy allocator without explicit dtype in numeric module"
    modules = NUMERIC_MODULES

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            head, _, tail = name.rpartition(".")
            if head not in ("np", "numpy") or tail not in _ALLOCATORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) > _ALLOCATORS[tail]:
                continue  # dtype passed positionally
            yield self.diag(
                ctx,
                node,
                f"np.{tail}(...) without explicit dtype — CSR/partition "
                f"arrays must pin int64/float64 (platform default differs)",
            )


@register_rule
class ContiguousArraysRule(LintRule):
    """ARR002 — ``np.asarray`` fed straight into a CSR/kway sink.

    ``CSRGraph`` and the k-way entry points require C-contiguous
    arrays; ``np.asarray`` preserves striding, so a transposed or
    sliced input silently survives to the kernels.  Use
    ``np.ascontiguousarray`` at the boundary.
    """

    code = "ARR002"
    name = "contiguous-arrays"
    description = "np.asarray passed to a CSR/partition sink"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _callee_tail(node) not in _CONTIGUITY_SINKS:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for arg in values:
                if (
                    isinstance(arg, ast.Call)
                    and _callee_tail(arg) == "asarray"
                ):
                    yield self.diag(
                        ctx,
                        arg,
                        "np.asarray does not guarantee contiguity — use "
                        "np.ascontiguousarray for CSR/partition arrays",
                    )


@register_rule
class CentralRngRule(LintRule):
    """RNG001 — direct ``np.random`` use outside ``repro.utils.rng``.

    All randomness must be derived through
    :func:`repro.utils.rng.as_rng`/:func:`~repro.utils.rng.spawn_rngs`
    so a single root seed reproduces whole experiments.
    """

    code = "RNG001"
    name = "central-rng"
    description = "np.random used outside repro.utils.rng"

    def applies_to(self, ctx: FileContext) -> bool:
        # tests/benchmarks construct their own seeded generators on
        # purpose; the centralisation contract binds library code only
        return ctx.module != RNG_MODULE and not _is_test_module(ctx.module)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                head, _, tail = name.rpartition(".")
                if head in ("np.random", "numpy.random") and tail in _RNG_CALLS:
                    yield self.diag(
                        ctx,
                        node,
                        f"direct {name}(...) breaks seed reproducibility — "
                        f"route through repro.utils.rng.as_rng/spawn_rngs",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random" and any(
                    alias.name in _RNG_CALLS for alias in node.names
                ):
                    yield self.diag(
                        ctx,
                        node,
                        "importing from numpy.random bypasses "
                        "repro.utils.rng — use as_rng/spawn_rngs",
                    )


@register_rule
class NoBareAssertRule(LintRule):
    """ASSERT001 — ``assert`` used for runtime validation in library code.

    ``python -O`` strips asserts, so any invariant they guard silently
    vanishes in optimised deployments.  Library code must raise
    ``ValueError``/``RuntimeError`` with a message instead.
    """

    code = "ASSERT001"
    name = "no-bare-assert"
    description = "bare assert in library code (stripped under python -O)"

    def applies_to(self, ctx: FileContext) -> bool:
        return not _is_test_module(ctx.module)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.diag(
                    ctx,
                    node,
                    "assert is stripped under python -O — raise "
                    "ValueError/RuntimeError with a message instead",
                )


@register_rule
class ValidatedEntryPointRule(LintRule):
    """VAL001 — public entry points that never validate their inputs.

    The functions in :data:`ENTRY_POINTS` sit at the public boundary
    and accept raw arrays; each must call a ``repro.utils.validation``
    checker (or ``.validate()``) before handing data to the kernels.
    """

    code = "VAL001"
    name = "validated-entry-point"
    description = "public entry point without input validation"
    modules = tuple(ENTRY_POINTS)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        wanted = ENTRY_POINTS.get(ctx.module, ())
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name not in wanted:
                continue
            if not self._calls_validator(node):
                yield self.diag(
                    ctx,
                    node,
                    f"public entry point {node.name}() never calls a "
                    f"repro.utils.validation checker on its inputs",
                )

    @staticmethod
    def _calls_validator(func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                tail = _callee_tail(node)
                if tail in VALIDATION_CALLEES:
                    return True
        return False


@register_rule
class VectorisedHotPathRule(LintRule):
    """LOOP001 — Python loops over ``xadj``/``adjncy`` in hot paths.

    A per-edge Python loop is two to three orders of magnitude slower
    than the vectorised equivalents in :mod:`repro.graph.ops`; in the
    designated hot-path modules adjacency traversals must be expressed
    with numpy primitives (``np.repeat``/``np.diff``/fancy indexing).
    """

    code = "LOOP001"
    name = "vectorised-hot-path"
    description = "Python-level loop over xadj/adjncy in hot-path module"
    modules = HOT_PATH_MODULES

    _CSR_NAMES = frozenset({"xadj", "adjncy"})

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if self._mentions_csr_array(node.iter):
                yield self.diag(
                    ctx,
                    node,
                    "Python-level loop over xadj/adjncy — vectorise with "
                    "np.repeat/np.diff or move out of the hot path",
                )

    def _mentions_csr_array(self, expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self._CSR_NAMES:
                return True
            if isinstance(node, ast.Attribute) and node.attr in self._CSR_NAMES:
                return True
        return False


def iter_rule_docs() -> Iterable[Tuple[str, str, str]]:
    """(code, name, one-line description) for every rule in this module."""
    from repro.analysis.engine import all_rules

    return [(r.code, r.name, r.description) for r in all_rules()]
