"""Render lint diagnostics for humans and machines.

The JSON schema (version 1) is::

    {
      "version": 1,
      "count": <int>,
      "summary": {"<code>": <int>, ...},
      "diagnostics": [
        {"path": str, "line": int, "col": int,
         "code": str, "message": str},
        ...
      ]
    }

:func:`format_sarif` emits SARIF 2.1.0 (the format code-review UIs
ingest); CI uploads it as an artifact so findings annotate the diff.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from repro.analysis.engine import (
    SYNTAX_ERROR_CODE,
    Diagnostic,
    all_rules,
)

JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)
_TOOL_NAME = "repro-lint"
_TOOL_VERSION = "1.0.0"


def format_human(diagnostics: Sequence[Diagnostic]) -> str:
    """``path:line:col: CODE message`` lines plus a per-code summary."""
    if not diagnostics:
        return "repro-lint: no issues found"
    lines: List[str] = [d.render() for d in diagnostics]
    counts = Counter(d.code for d in diagnostics)
    total = len(diagnostics)
    breakdown = ", ".join(
        f"{code}: {n}" for code, n in sorted(counts.items())
    )
    lines.append(
        f"repro-lint: {total} issue{'s' if total != 1 else ''} "
        f"({breakdown})"
    )
    return "\n".join(lines)


def as_json_payload(
    diagnostics: Sequence[Diagnostic],
) -> Dict[str, Any]:
    """The JSON reporter's payload as a plain dict (schema above)."""
    counts = Counter(d.code for d in diagnostics)
    return {
        "version": JSON_SCHEMA_VERSION,
        "count": len(diagnostics),
        "summary": dict(sorted(counts.items())),
        "diagnostics": [d.as_dict() for d in diagnostics],
    }


def format_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Serialise :func:`as_json_payload` (stable key order)."""
    return json.dumps(as_json_payload(diagnostics), indent=2, sort_keys=True)


def format_statistics(diagnostics: Sequence[Diagnostic]) -> str:
    """flake8-style per-code count lines (``    3  ARR001  desc``)."""
    counts = Counter(d.code for d in diagnostics)
    known = {r.code: r.description for r in all_rules()}
    lines = [
        f"{n:>5}  {code:<9} {known.get(code, 'syntax error')}"
        for code, n in sorted(counts.items())
    ]
    lines.append(f"{len(diagnostics):>5}  total")
    return "\n".join(lines)


def _sarif_rules(codes: Sequence[str]) -> List[Dict[str, Any]]:
    """SARIF ``tool.driver.rules`` metadata for the codes present."""
    known = {r.code: r for r in all_rules()}
    rules: List[Dict[str, Any]] = []
    for code in sorted(set(codes)):
        rule = known.get(code)
        if rule is not None:
            rules.append(
                {
                    "id": code,
                    "name": rule.name,
                    "shortDescription": {"text": rule.description},
                    "helpUri": (
                        "https://example.invalid/repro/docs/"
                        "STATIC_ANALYSIS.md"
                    ),
                }
            )
        elif code == SYNTAX_ERROR_CODE:
            rules.append(
                {
                    "id": code,
                    "name": "syntax-error",
                    "shortDescription": {
                        "text": "file could not be parsed"
                    },
                }
            )
        else:  # pragma: no cover - future codes degrade gracefully
            rules.append({"id": code})
    return rules


def as_sarif_payload(
    diagnostics: Sequence[Diagnostic],
) -> Dict[str, Any]:
    """The SARIF 2.1.0 log as a plain dict (one run, one result per
    diagnostic; line/column are 1-based as SARIF requires)."""
    results = [
        {
            "ruleId": d.code,
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": d.line,
                            "startColumn": d.col,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _TOOL_VERSION,
                        "informationUri": (
                            "https://example.invalid/repro"
                        ),
                        "rules": _sarif_rules(
                            [d.code for d in diagnostics]
                        ),
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """Serialise :func:`as_sarif_payload` (stable key order)."""
    return json.dumps(
        as_sarif_payload(diagnostics), indent=2, sort_keys=True
    )
