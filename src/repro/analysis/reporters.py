"""Render lint diagnostics for humans and machines.

The JSON schema (version 1) is::

    {
      "version": 1,
      "count": <int>,
      "summary": {"<code>": <int>, ...},
      "diagnostics": [
        {"path": str, "line": int, "col": int,
         "code": str, "message": str},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from repro.analysis.engine import Diagnostic

JSON_SCHEMA_VERSION = 1


def format_human(diagnostics: Sequence[Diagnostic]) -> str:
    """``path:line:col: CODE message`` lines plus a per-code summary."""
    if not diagnostics:
        return "repro-lint: no issues found"
    lines: List[str] = [d.render() for d in diagnostics]
    counts = Counter(d.code for d in diagnostics)
    total = len(diagnostics)
    breakdown = ", ".join(
        f"{code}: {n}" for code, n in sorted(counts.items())
    )
    lines.append(
        f"repro-lint: {total} issue{'s' if total != 1 else ''} "
        f"({breakdown})"
    )
    return "\n".join(lines)


def as_json_payload(
    diagnostics: Sequence[Diagnostic],
) -> Dict[str, Any]:
    """The JSON reporter's payload as a plain dict (schema above)."""
    counts = Counter(d.code for d in diagnostics)
    return {
        "version": JSON_SCHEMA_VERSION,
        "count": len(diagnostics),
        "summary": dict(sorted(counts.items())),
        "diagnostics": [d.as_dict() for d in diagnostics],
    }


def format_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Serialise :func:`as_json_payload` (stable key order)."""
    return json.dumps(as_json_payload(diagnostics), indent=2, sort_keys=True)
