"""The versioned run-report JSON schema and its validator.

A serialized :class:`~repro.obs.report.RunReport` is a JSON object:

.. code-block:: text

    {
      "schema":  "repro.run-report/1",
      "meta":    { <string keys> : str | int | float | bool | null },
      "spans":   <span>,
      "comm":    { <phase> : {"n_messages": int, "n_items": int} }
    }

    <span> = {
      "name":     str (non-empty),
      "n_calls":  int  >= 0,
      "total_s":  number >= 0,
      "self_s":   number >= 0,           # optional: exclusive time
      "counters": { <string keys> : number },
      "children": [ <span>, ... ]        # sibling names unique
    }

``self_s`` is the span's wall time net of its direct children
(``total_s - sum(child total_s)``), denormalised into the document so
trace consumers (``repro-lint --perf --trace-json``) need not rebuild
the tree arithmetic.  It is optional for backward compatibility with
version-1 documents written before it existed.

The validator is hand-rolled (no ``jsonschema`` dependency): it raises
:class:`ReportSchemaError` carrying the JSON path of the first
violation. Documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Dict, List

SCHEMA_VERSION = "repro.run-report/1"

_META_SCALARS = (str, int, float, bool, type(None))


class ReportSchemaError(ValueError):
    """A run-report document violates the schema.

    ``path`` locates the offending element, e.g.
    ``spans.children[2].total_s``.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


def _require_number(value: object, path: str, minimum: float = 0.0) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReportSchemaError(path, "must be a number")
    if value < minimum:
        raise ReportSchemaError(path, f"must be >= {minimum:g}")


def _validate_span(span: object, path: str) -> None:
    if not isinstance(span, dict):
        raise ReportSchemaError(path, "span must be an object")
    extra = set(span) - {
        "name",
        "n_calls",
        "total_s",
        "self_s",
        "counters",
        "children",
    }
    if extra:
        raise ReportSchemaError(path, f"unknown span keys {sorted(extra)}")
    name = span.get("name")
    if not isinstance(name, str) or not name:
        raise ReportSchemaError(f"{path}.name", "must be a non-empty string")
    n_calls = span.get("n_calls")
    if isinstance(n_calls, bool) or not isinstance(n_calls, int):
        raise ReportSchemaError(f"{path}.n_calls", "must be an integer")
    if n_calls < 0:
        raise ReportSchemaError(f"{path}.n_calls", "must be >= 0")
    _require_number(span.get("total_s"), f"{path}.total_s")
    if "self_s" in span:
        _require_number(span.get("self_s"), f"{path}.self_s")
    counters = span.get("counters")
    if not isinstance(counters, dict):
        raise ReportSchemaError(f"{path}.counters", "must be an object")
    for key, value in counters.items():
        if not isinstance(key, str):
            raise ReportSchemaError(f"{path}.counters", "keys must be strings")
        _require_number(
            value, f"{path}.counters[{key!r}]", minimum=float("-inf")
        )
    children = span.get("children")
    if not isinstance(children, list):
        raise ReportSchemaError(f"{path}.children", "must be an array")
    seen: List[str] = []
    for i, child in enumerate(children):
        child_path = f"{path}.children[{i}]"
        _validate_span(child, child_path)
        child_name = child["name"]
        if child_name in seen:
            raise ReportSchemaError(
                f"{child_path}.name", f"duplicate sibling name {child_name!r}"
            )
        seen.append(child_name)


def _validate_comm(comm: object, path: str) -> None:
    if not isinstance(comm, dict):
        raise ReportSchemaError(path, "must be an object")
    for phase, totals in comm.items():
        if not isinstance(phase, str) or not phase:
            raise ReportSchemaError(path, "phase names must be strings")
        phase_path = f"{path}[{phase!r}]"
        if not isinstance(totals, dict):
            raise ReportSchemaError(phase_path, "must be an object")
        if set(totals) != {"n_messages", "n_items"}:
            raise ReportSchemaError(
                phase_path, "must have exactly n_messages and n_items"
            )
        for key in ("n_messages", "n_items"):
            value = totals[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ReportSchemaError(
                    f"{phase_path}.{key}", "must be an integer"
                )
            if value < 0:
                raise ReportSchemaError(f"{phase_path}.{key}", "must be >= 0")


def validate_report(document: object) -> Dict[str, object]:
    """Check ``document`` against the run-report schema.

    Returns the document (narrowed to a dict) on success; raises
    :class:`ReportSchemaError` at the first violation.
    """
    if not isinstance(document, dict):
        raise ReportSchemaError("$", "report must be a JSON object")
    extra = set(document) - {"schema", "meta", "spans", "comm"}
    if extra:
        raise ReportSchemaError("$", f"unknown top-level keys {sorted(extra)}")
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise ReportSchemaError(
            "$.schema", f"expected {SCHEMA_VERSION!r}, got {schema!r}"
        )
    meta = document.get("meta")
    if not isinstance(meta, dict):
        raise ReportSchemaError("$.meta", "must be an object")
    for key, value in meta.items():
        if not isinstance(key, str):
            raise ReportSchemaError("$.meta", "keys must be strings")
        if not isinstance(value, _META_SCALARS):
            raise ReportSchemaError(
                f"$.meta[{key!r}]", "must be a scalar (str/number/bool/null)"
            )
    if "spans" not in document:
        raise ReportSchemaError("$.spans", "missing")
    _validate_span(document["spans"], "$.spans")
    _validate_comm(document.get("comm"), "$.comm")
    return document
