"""Run reports: spans + communication totals, rendered or serialized.

A :class:`RunReport` snapshots one traced run — the tracer's span tree
merged with the :class:`~repro.runtime.ledger.CommLedger` phase totals
— and either renders it through
:class:`~repro.metrics.report.MetricTable` for the terminal or
serializes to the versioned JSON document checked by
:func:`repro.obs.schema.validate_report`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.metrics.report import MetricTable
from repro.obs.schema import SCHEMA_VERSION, validate_report
from repro.obs.tracer import Span, Tracer
from repro.runtime.ledger import CommLedger

MetaValue = Union[str, int, float, bool, None]
PathLike = Union[str, Path]

#: counters the fault-tolerant runtime emits (chaos harness, supervised
#: process backend, driver step recovery — docs/FAULT_TOLERANCE.md)
RECOVERY_COUNTERS = (
    "faults_injected",
    "step_retries",
    "worker_deaths",
    "deadline_timeouts",
    "worker_respawns",
    "ranks_degraded",
    "step_recoveries",
)

#: counters the distributed tcp backend emits (coordinator traffic and
#: elastic-membership churn — docs/PARALLELISM.md "Distributed
#: backend")
DISTRIBUTED_COUNTERS = (
    "bytes_sent",
    "bytes_recv",
    "reconnects",
    "ranks_migrated",
    "agents_joined",
)

#: counters the compiled kernel tier emits (repro.runtime.compiled;
#: attached to the root span by ``Tracer(kernel_counters=True)`` —
#: docs/PARALLELISM.md "Compiled kernels")
KERNEL_COUNTERS = (
    "kernel_compiles",
    "kernel_compile_seconds",
    "kernel_calls_compiled",
    "kernel_calls_pure",
)


@dataclass
class RunReport:
    """One traced run, ready to render or serialize."""

    spans: Span
    comm: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    meta: Dict[str, MetaValue] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        tracer: Tracer,
        ledger: Optional[CommLedger] = None,
        **meta: MetaValue,
    ) -> "RunReport":
        """Snapshot ``tracer`` (finishing it) and ``ledger`` totals."""
        comm = dict(ledger.summary()) if ledger is not None else {}
        return cls(spans=tracer.finish(), comm=comm, meta=dict(meta))

    # ------------------------------------------------------------------
    def span_total(self, path: str) -> float:
        """Wall seconds of the span at ``/``-separated ``path`` under
        the root (0.0 when the span was never entered)."""
        node = self.spans.find(path)
        return node.total_s if node is not None else 0.0

    def span_self(self, path: str) -> float:
        """Exclusive wall seconds of the span at ``path`` — its total
        net of direct children (0.0 when the span was never entered)."""
        node = self.spans.find(path)
        return node.self_s if node is not None else 0.0

    def self_times(self) -> Dict[str, float]:
        """``{span path: exclusive seconds}`` for every span in the
        tree — the profile consumed by ``repro-lint --perf
        --trace-json``."""
        return {path: span.self_s for path, span in self.spans.walk()}

    def comm_items(self, phase: str) -> int:
        """Items moved in a ledger phase (0 for unknown phases)."""
        return self.comm.get(phase, (0, 0))[1]

    def comm_total_items(self) -> int:
        """Items moved across all ledger phases."""
        return sum(items for _msgs, items in self.comm.values())

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The versioned JSON document (validates against the schema)."""
        return {
            "schema": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "spans": self.spans.to_dict(),
            "comm": {
                phase: {"n_messages": msgs, "n_items": items}
                for phase, (msgs, items) in sorted(self.comm.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize, validating first so emitted files are always
        schema-clean."""
        return json.dumps(
            validate_report(self.to_dict()), indent=indent, sort_keys=False
        )

    def save(self, path: PathLike) -> None:
        """Write :meth:`to_json` to ``path``."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "RunReport":
        """Rebuild a report from a schema-valid document."""
        validate_report(document)
        spans_doc = document["spans"]
        if not isinstance(spans_doc, dict):  # unreachable post-validation
            raise ValueError("spans must be an object")
        comm_doc = document.get("comm")
        comm: Dict[str, Tuple[int, int]] = {}
        if isinstance(comm_doc, dict):
            for phase, totals in comm_doc.items():
                if isinstance(totals, dict):
                    comm[str(phase)] = (
                        int(totals["n_messages"]),
                        int(totals["n_items"]),
                    )
        meta_doc = document.get("meta")
        meta: Dict[str, MetaValue] = {}
        if isinstance(meta_doc, dict):
            for key, value in meta_doc.items():
                if isinstance(value, (str, int, float, bool)) or value is None:
                    meta[str(key)] = value
        return cls(spans=Span.from_dict(spans_doc), comm=comm, meta=meta)

    @classmethod
    def load(cls, path: PathLike) -> "RunReport":
        """Read a report written by :meth:`save`."""
        document = json.loads(Path(path).read_text())
        if not isinstance(document, dict):
            raise ValueError(f"{path}: run report must be a JSON object")
        return cls.from_dict(document)

    # ------------------------------------------------------------------
    def span_table(self) -> MetricTable:
        """Span tree as a table: one row per span path (depth shown by
        indentation), columns calls / total ms / self ms."""
        table = MetricTable(
            title="Trace spans (wall time)",
            columns=["calls", "total_ms", "self_ms"],
        )
        for path, span in self.spans.walk():
            depth = path.count("/")
            parts = path.split("/")
            # paths are unique, indented names may not be; on collision
            # extend with ancestors until the row name is unique
            name = "  " * depth + span.name
            for n_parts in range(2, len(parts) + 1):
                if name not in table.rows:
                    break
                name = "  " * depth + "/".join(parts[-n_parts:])
            table.add_row(
                name,
                [
                    span.n_calls,
                    round(span.total_s * 1e3, 1),
                    round(span.self_s * 1e3, 1),
                ],
            )
        return table

    def comm_table(self) -> MetricTable:
        """Ledger phase totals as a table."""
        table = MetricTable(
            title="Communication phases",
            columns=["messages", "items"],
        )
        for phase, (msgs, items) in sorted(self.comm.items()):
            table.add_row(phase, [msgs, items])
        return table

    def recovery_totals(self) -> Dict[str, float]:
        """Fault-recovery counters summed over the whole span tree
        (only the nonzero ones; empty for a clean run)."""
        totals = {name: 0.0 for name in RECOVERY_COUNTERS}
        for _path, span in self.spans.walk():
            for name, value in span.counters.items():
                if name in totals:
                    totals[name] += value
        return {name: value for name, value in totals.items() if value}

    def recovery_seconds(self) -> float:
        """Wall seconds spent inside ``recovery`` spans anywhere in the
        tree — the run's total fault-handling overhead."""
        return sum(
            span.total_s
            for _path, span in self.spans.walk()
            if span.name == "recovery"
        )

    def distributed_totals(self) -> Dict[str, float]:
        """Distributed-backend counters (traffic volume, reconnects,
        rank migrations) summed over the span tree — only the nonzero
        ones; empty when the run never left the process."""
        totals = {name: 0.0 for name in DISTRIBUTED_COUNTERS}
        for _path, span in self.spans.walk():
            for name, value in span.counters.items():
                if name in totals:
                    totals[name] += value
        return {name: value for name, value in totals.items() if value}

    def kernel_totals(self) -> Dict[str, float]:
        """Compiled-kernel-tier counters summed over the span tree
        (only the nonzero ones; empty when the run never dispatched a
        kernel or the tracer did not opt into kernel accounting)."""
        totals = {name: 0.0 for name in KERNEL_COUNTERS}
        for _path, span in self.spans.walk():
            for name, value in span.counters.items():
                if name in totals:
                    totals[name] += value
        return {name: value for name, value in totals.items() if value}

    def counter_lines(self) -> List[str]:
        """``path: name=value`` lines for every span counter."""
        lines: List[str] = []
        for path, span in self.spans.walk():
            for name, value in span.counters.items():
                lines.append(f"{path}: {name}={value:g}")
        return lines

    def render(self) -> str:
        """Full human-readable report (spans, counters, comm)."""
        blocks = [self.span_table().render()]
        counters = self.counter_lines()
        if counters:
            blocks.append("Counters\n--------\n" + "\n".join(counters))
        recovery = self.recovery_totals()
        if recovery:
            lines = [f"{name}={value:g}" for name, value in recovery.items()]
            lines.append(f"recovery_wall_s={self.recovery_seconds():.3f}")
            blocks.append(
                "Fault recovery\n--------------\n" + "\n".join(lines)
            )
        distributed = self.distributed_totals()
        if distributed:
            lines = [
                f"{name}={value:g}"
                for name, value in distributed.items()
            ]
            blocks.append(
                "Distributed\n-----------\n" + "\n".join(lines)
            )
        kernels = self.kernel_totals()
        if kernels:
            lines = [f"{name}={value:g}" for name, value in kernels.items()]
            blocks.append(
                "Compiled kernels\n----------------\n" + "\n".join(lines)
            )
        if self.comm:
            blocks.append(self.comm_table().render())
        if self.meta:
            meta = ", ".join(f"{k}={v}" for k, v in self.meta.items())
            blocks.append(f"[{meta}]")
        return "\n\n".join(blocks)
