"""Observability: phase-level tracing and run reports.

See ``docs/OBSERVABILITY.md`` for the span taxonomy, the JSON schema,
and how to read a run report.
"""

from repro.obs.report import RunReport
from repro.obs.schema import (
    SCHEMA_VERSION,
    ReportSchemaError,
    validate_report,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracerBase,
    ensure_tracer,
)

__all__ = [
    "RunReport",
    "SCHEMA_VERSION",
    "ReportSchemaError",
    "validate_report",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "TracerBase",
    "ensure_tracer",
]
