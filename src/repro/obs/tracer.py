"""Phase-level tracing primitives.

A :class:`Tracer` records a tree of named :class:`Span` objects —
``with tracer.span("coarsen"):`` times the enclosed block with
:func:`time.perf_counter` and nests under whatever span is currently
open. Re-entering a name under the same parent *accumulates* into the
existing span (``n_calls`` counts entries), so a phase executed once
per bisection or once per rank shows up as one aggregate line instead
of thousands.

Hot paths that should pay nothing when tracing is off take an optional
``tracer`` argument defaulting to :data:`NULL_TRACER`, a shared
:class:`NullTracer` whose ``span``/``count`` are no-ops returning a
singleton context manager — no allocation, no clock reads.

Spans also carry named *counters* (FM moves, tree nodes, items
shipped); :meth:`TracerBase.count` adds into the innermost open span.
"""

from __future__ import annotations

from time import perf_counter
from types import TracebackType
from typing import ContextManager, Dict, Iterator, List, Optional, Tuple, Type, Union

Number = Union[int, float]

#: span names used across the library (single source for docs/tests)
SPAN_COARSEN = "coarsen"
SPAN_INITIAL = "initial"
SPAN_REFINE = "refine"
SPAN_DTREE_INDUCE = "dtree-induce"
SPAN_COLLAPSE = "collapse"
SPAN_REFINE_GPRIME = "refine-G'"
SPAN_MAP_TRANSFER = "map-transfer"


class Span:
    """One node of the trace tree: aggregate wall time + counters.

    ``total_s`` accumulates over every entry of the span; ``children``
    preserves first-entry order (dict insertion order).
    """

    __slots__ = ("name", "n_calls", "total_s", "counters", "children")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("span name must be non-empty")
        self.name = name
        self.n_calls = 0
        self.total_s = 0.0
        self.counters: Dict[str, Number] = {}
        self.children: Dict[str, "Span"] = {}

    # ------------------------------------------------------------------
    def child(self, name: str) -> "Span":
        """Get-or-create the child span called ``name``."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = Span(name)
        return node

    def count(self, name: str, value: Number = 1) -> None:
        """Add ``value`` into counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    @property
    def children_s(self) -> float:
        """Wall time accounted to the direct children."""
        return sum(c.total_s for c in self.children.values())

    @property
    def self_s(self) -> float:
        """Wall time spent in this span outside any child span."""
        return max(0.0, self.total_s - self.children_s)

    # ------------------------------------------------------------------
    def find(self, path: str) -> Optional["Span"]:
        """Descendant at a ``/``-separated path (``None`` if absent)."""
        node: Optional[Span] = self
        for part in path.split("/"):
            if node is None:
                return None
            node = node.children.get(part)
        return node

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "Span"]]:
        """Yield ``(path, span)`` for this span and all descendants in
        depth-first (recording) order."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield path, self
        for c in self.children.values():
            for item in c.walk(path):
                yield item

    def to_dict(self) -> Dict[str, object]:
        """Recursive plain-dict form (see ``repro.obs.schema``).

        ``self_s`` (exclusive time) is denormalised into the document
        so consumers of the JSON artifact — notably ``repro-lint
        --perf --trace-json`` — can rank spans without rebuilding the
        tree arithmetic.
        """
        return {
            "name": self.name,
            "n_calls": self.n_calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Rebuild a span tree emitted by :meth:`to_dict`.

        Raises ``ValueError`` on malformed input; use
        :func:`repro.obs.schema.validate_report` for diagnostics with
        paths.
        """
        name = data.get("name")
        if not isinstance(name, str):
            raise ValueError("span dict needs a string 'name'")
        span = cls(name)
        n_calls = data.get("n_calls", 0)
        total_s = data.get("total_s", 0.0)
        if not isinstance(n_calls, int) or isinstance(n_calls, bool):
            raise ValueError(f"span {name!r}: n_calls must be an int")
        if not isinstance(total_s, (int, float)) or isinstance(total_s, bool):
            raise ValueError(f"span {name!r}: total_s must be a number")
        span.n_calls = n_calls
        span.total_s = float(total_s)
        counters = data.get("counters", {})
        if not isinstance(counters, dict):
            raise ValueError(f"span {name!r}: counters must be a mapping")
        for key, value in counters.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"span {name!r}: counter {key!r} must be a number"
                )
            span.counters[str(key)] = value
        children = data.get("children", [])
        if not isinstance(children, list):
            raise ValueError(f"span {name!r}: children must be a list")
        for child in children:
            if not isinstance(child, dict):
                raise ValueError(f"span {name!r}: child must be a mapping")
            rebuilt = cls.from_dict(child)
            span.children[rebuilt.name] = rebuilt
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, calls={self.n_calls}, "
            f"total={self.total_s * 1e3:.2f}ms, "
            f"children={len(self.children)})"
        )


class _NullSpanCM:
    """Reusable no-op context manager (the off-switch's entire cost)."""

    __slots__ = ()

    def __enter__(self) -> Optional[Span]:
        return None

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_CM = _NullSpanCM()


class _SpanCM:
    """Times one entry into ``span`` on the tracer's stack."""

    __slots__ = ("_tracer", "_name", "_span", "_t0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._span: Optional[Span] = None
        self._t0 = 0.0

    def __enter__(self) -> Optional[Span]:
        stack = self._tracer._stack
        self._span = stack[-1].child(self._name)
        stack.append(self._span)
        self._t0 = perf_counter()
        return self._span

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        elapsed = perf_counter() - self._t0
        span = self._span
        if span is None:  # pragma: no cover - __exit__ without __enter__
            return None
        span.total_s += elapsed
        span.n_calls += 1
        self._tracer._stack.pop()
        return None


class TracerBase:
    """Tracing interface; the base behaviour is the no-op.

    Pipeline code annotates parameters as ``Optional[TracerBase]`` and
    normalises ``None`` to :data:`NULL_TRACER`, so the hot path never
    branches on "is tracing on".
    """

    enabled: bool = False

    def span(self, name: str) -> ContextManager[Optional[Span]]:
        """Open (or re-enter) the child span ``name``; no-op here."""
        return _NULL_CM

    def count(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to counter ``name`` of the open span; no-op."""
        return None


class NullTracer(TracerBase):
    """Explicit do-nothing tracer (identical to :class:`TracerBase`)."""


class Tracer(TracerBase):
    """Recording tracer. See the module docstring for semantics.

    Spans must not be re-entered while already open (a span nested
    inside itself would double-count its own time); the library's span
    taxonomy never does this.
    """

    enabled = True

    def __init__(
        self, root_name: str = "run", kernel_counters: bool = False
    ) -> None:
        self.root = Span(root_name)
        self.root.n_calls = 1
        self._stack: List[Span] = [self.root]
        # kernel-tier accounting is opt-in: it snapshots the process-wide
        # compile/dispatch counters (repro.runtime.compiled) here and
        # attaches the per-run deltas to the root span in finish().  Off
        # by default so backend-equivalence tests comparing span trees
        # are not perturbed; the CLI turns it on for user-facing runs.
        self._kernel_baseline: Optional[Tuple[int, float, int, int]] = None
        if kernel_counters:
            from repro.runtime.compiled import stats_snapshot

            self._kernel_baseline = stats_snapshot()

    def span(self, name: str) -> ContextManager[Optional[Span]]:
        return _SpanCM(self, name)

    def count(self, name: str, value: Number = 1) -> None:
        self._stack[-1].count(name, value)

    @property
    def current(self) -> Span:
        """The innermost open span (the root when idle)."""
        return self._stack[-1]

    def finish(self) -> Span:
        """Close the books: set the root's total to the sum of its
        children (the root itself is never timed) and return it."""
        if len(self._stack) != 1:
            raise RuntimeError(
                f"{len(self._stack) - 1} span(s) still open; "
                "finish() must be called outside any span"
            )
        self.root.total_s = self.root.children_s
        if self._kernel_baseline is not None:
            from repro.runtime.compiled import stats_delta

            for name, value in stats_delta(self._kernel_baseline).items():
                if value:
                    self.root.count(name, value)
            self._kernel_baseline = None
        return self.root


#: shared no-op tracer — the default for every ``tracer=`` parameter
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional[TracerBase]) -> TracerBase:
    """Normalise an optional tracer argument to a usable instance."""
    return NULL_TRACER if tracer is None else tracer
