"""Plain-text tabulation of benchmark results (Table-1-style output)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]


@dataclass
class MetricTable:
    """A named table of rows → metric values."""

    title: str
    columns: List[str]
    rows: Dict[str, List[Number]] = field(default_factory=dict)

    def add_row(self, name: str, values: Sequence[Number]) -> None:
        """Append a named row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {name!r} has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows[name] = list(values)

    def render(self) -> str:
        """Format the table as fixed-width text."""
        return format_table(self.title, self.columns, self.rows)


def _fmt(v: Number) -> str:
    if isinstance(v, float) and not v.is_integer():
        return f"{v:,.1f}"
    return f"{int(v):,}"


def format_table(
    title: str, columns: Sequence[str], rows: Dict[str, Sequence[Number]]
) -> str:
    """Fixed-width table with a title rule, for terminal output."""
    name_w = max([len(r) for r in rows] + [4])
    col_ws = [
        max(len(c), *(len(_fmt(vals[i])) for vals in rows.values()))
        if rows
        else len(c)
        for i, c in enumerate(columns)
    ]
    header = " " * name_w + "  " + "  ".join(
        c.rjust(w) for c, w in zip(columns, col_ws)
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for name, vals in rows.items():
        cells = "  ".join(
            _fmt(v).rjust(w) for v, w in zip(vals, col_ws)
        )
        lines.append(name.ljust(name_w) + "  " + cells)
    return "\n".join(lines)
