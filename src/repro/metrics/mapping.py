"""Mapping costs between the two ML+RCB decompositions (§5.1).

The ML+RCB baseline holds every contact point in two partitions: its
FE-phase (graph) partition and its contact-phase (RCB) partition.
Transferring state between the phases costs one message per point whose
two owners differ. Since RCB labels are arbitrary, the paper first
relabels the RCB parts to maximise agreement using a maximal-weight
matching — here via ``scipy.optimize.linear_sum_assignment`` on the
k×k overlap matrix.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment


def overlap_matrix(
    labels_a: np.ndarray, labels_b: np.ndarray, k: int
) -> np.ndarray:
    """``O[p, q]`` = number of points with A-label p and B-label q."""
    labels_a = np.asarray(labels_a, dtype=np.int64)
    labels_b = np.asarray(labels_b, dtype=np.int64)
    if labels_a.shape != labels_b.shape:
        raise ValueError("label arrays must have equal length")
    out = np.zeros((k, k), dtype=np.int64)
    np.add.at(out, (labels_a, labels_b), 1)
    return out


def optimal_relabel(
    labels_a: np.ndarray, labels_b: np.ndarray, k: int
) -> np.ndarray:
    """Permutation ``perm`` maximising agreement of ``perm[labels_b]``
    with ``labels_a`` (maximal-weight bipartite matching)."""
    overlap = overlap_matrix(labels_a, labels_b, k)
    rows, cols = linear_sum_assignment(overlap, maximize=True)
    perm = np.empty(k, dtype=np.int64)
    perm[cols] = rows
    return perm


def m2m_comm(
    fe_labels: np.ndarray, rcb_labels: np.ndarray, k: int
) -> int:
    """Contact points needing a mesh-to-mesh transfer (M2MComm).

    After optimally relabelling the RCB parts, every point whose FE
    and RCB owners still differ must be communicated before each
    phase. (The paper notes the *round trip* costs 2× this value.)
    """
    perm = optimal_relabel(fe_labels, rcb_labels, k)
    return int(np.count_nonzero(perm[rcb_labels] != fe_labels))


def update_comm(
    prev_labels: np.ndarray,
    new_labels: np.ndarray,
    prev_ids: np.ndarray,
    new_ids: np.ndarray,
) -> int:
    """Contact points that moved between RCB parts across a step
    (UpdComm).

    The contact-point sets of successive snapshots may differ (erosion
    exposes new surface); only points present in both are compared.
    ``*_ids`` are the (sorted, unique) global node ids the label arrays
    refer to.
    """
    prev_ids = np.asarray(prev_ids, dtype=np.int64)
    new_ids = np.asarray(new_ids, dtype=np.int64)
    common, prev_pos, new_pos = np.intersect1d(
        prev_ids, new_ids, assume_unique=True, return_indices=True
    )
    if len(common) == 0:
        return 0
    prev_l = np.asarray(prev_labels)[prev_pos]
    new_l = np.asarray(new_labels)[new_pos]
    return int(np.count_nonzero(prev_l != new_l))
