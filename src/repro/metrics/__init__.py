"""The paper's evaluation metrics (§5.1).

* **FEComm** — total communication volume of the mesh partition.
* **NTNodes** — decision-tree size (MCML+DT setup cost).
* **NRemote** — surface elements shipped for global search.
* **M2MComm** — contact points whose FE and RCB owners differ, after
  optimal (maximal-weight matching) relabelling of the RCB parts.
* **UpdComm** — contact points that change RCB owner between steps.
"""

from repro.metrics.comm import fe_comm
from repro.metrics.mapping import (
    m2m_comm,
    optimal_relabel,
    overlap_matrix,
    update_comm,
)
from repro.metrics.report import MetricTable, format_table

__all__ = [
    "fe_comm",
    "m2m_comm",
    "optimal_relabel",
    "overlap_matrix",
    "update_comm",
    "MetricTable",
    "format_table",
]
