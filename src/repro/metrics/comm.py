"""FE-phase communication metric.

``fe_comm`` is the paper's FEComm: the total communication volume of
the nodal-graph partition, i.e. the halo values exchanged per FE
iteration. It delegates to the graph-level metric; this thin module
exists so the evaluation code reads in the paper's vocabulary.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import total_comm_volume


def fe_comm(graph: CSRGraph, part: np.ndarray) -> int:
    """Total communication volume of ``part`` on the nodal graph."""
    return total_comm_volume(graph, part)
