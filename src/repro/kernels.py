"""The kernel seam: declare which functions are compiled-path candidates.

ROADMAP open item 1 calls for vectorised/compiled hot kernels behind a
"clean kernel seam".  This module is that seam's declaration side: the
:func:`kernel` decorator marks a function as a **declared kernel** — a
routine that is *intended* to be jit-compilable (numba/Cython) and that
the static kernel-purity certifier
(:mod:`repro.analysis.kernelcheck`) must be able to certify.  CI runs
``repro-lint --perf`` and fails when a declared kernel regresses to
uncertifiable, so the seam stays compilable *before* anyone invests in
an actual compiled backend.

The decorator is a pure marker: it returns the original function
unchanged (so decorated kernels stay picklable for the process backend
and carry no call overhead) and records it in a process-wide registry
for tooling.

The purity contract a declared kernel must satisfy (machine-checked,
see ``docs/STATIC_ANALYSIS.md``):

* no closure over enclosing scopes and no ``global``/``nonlocal`` state
* no Python-object containers (list/dict/set) in the numeric path
* explicit dtypes on every array creation
* no I/O, logging, or tracer calls
* no nested functions, generators, or context managers
"""

from __future__ import annotations

from typing import Callable, Dict, List, TypeVar

F = TypeVar("F", bound=Callable[..., object])

#: marker attribute set on declared kernels (used by tests/tooling;
#: the static certifier recognises the decorator syntactically)
KERNEL_ATTR = "__repro_kernel__"

_REGISTRY: Dict[str, Callable[..., object]] = {}

#: modules that declare kernels — imported by :func:`declared_kernels`
#: so the runtime registry is complete without import-order luck.  The
#: static certifier does not use this list; it discovers ``@kernel``
#: syntactically over whatever tree it is pointed at.
KERNEL_MODULES = (
    "repro.geometry.bbox",
    "repro.geometry.boxsearch",
    "repro.core.contact_search",
    "repro.dtree.splitter",
)


def kernel(fn: F) -> F:
    """Mark ``fn`` as a declared kernel (identity decorator).

    Declared kernels are certified by ``repro-lint --perf``; a marked
    function that violates the purity contract fails CI (KERN001).
    """
    setattr(fn, KERNEL_ATTR, True)
    _REGISTRY[f"{fn.__module__}.{fn.__qualname__}"] = fn
    return fn


def is_kernel(fn: Callable[..., object]) -> bool:
    """Whether ``fn`` was decorated with :func:`kernel`."""
    return bool(getattr(fn, KERNEL_ATTR, False))


def declared_kernels() -> Dict[str, Callable[..., object]]:
    """``{dotted name: function}`` of every declared kernel.

    Imports :data:`KERNEL_MODULES` first so the registry does not
    depend on what the caller happened to import already.
    """
    import importlib

    for mod in KERNEL_MODULES:
        importlib.import_module(mod)
    return dict(sorted(_REGISTRY.items()))


def kernel_names() -> List[str]:
    """Sorted dotted names of every declared kernel."""
    return sorted(declared_kernels())
