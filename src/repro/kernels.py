"""The kernel seam: declare which functions are compiled-path candidates.

ROADMAP open item 1 calls for vectorised/compiled hot kernels behind a
"clean kernel seam".  This module is that seam: the :func:`kernel`
decorator marks a function as a **declared kernel** — a routine that is
jit-compilable (numba) and that the static kernel-purity certifier
(:mod:`repro.analysis.kernelcheck`) must be able to certify.  CI runs
``repro-lint --perf`` and fails when a declared kernel regresses to
uncertifiable, so the seam stays compilable independently of whether
the compiled tier is active.

The decorator registers the **pure** implementation (the function as
written, which stays the semantic ground truth) and returns a
dispatching wrapper that routes each call through
:func:`repro.runtime.compiled.dispatch`, where the active execution
tier — ``pure``, ``compiled``, or ``auto`` (see ``$REPRO_KERNELS`` and
the ``--kernels`` CLI flag) — picks either the pure NumPy path or a
lazily numba-jitted loop form proven bit-identical by the differential
conformance suite (``tests/kernels/test_conformance.py``).  The
wrapper is a module-level attribute under the original qualname, so
kernels stay picklable for the process backend.

The purity contract a declared kernel must satisfy (machine-checked,
see ``docs/STATIC_ANALYSIS.md``):

* no closure over enclosing scopes and no ``global``/``nonlocal`` state
* no Python-object containers (list/dict/set) in the numeric path
* explicit dtypes on every array creation
* no I/O, logging, or tracer calls
* no nested functions, generators, or context managers
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar, cast

F = TypeVar("F", bound=Callable[..., object])

#: marker attribute set on declared kernels (used by tests/tooling;
#: the static certifier recognises the decorator syntactically)
KERNEL_ATTR = "__repro_kernel__"

#: attribute on the dispatching wrapper holding the pure implementation
PURE_ATTR = "__repro_kernel_pure__"

_REGISTRY: Dict[str, Callable[..., object]] = {}

_DISPATCHERS: Dict[str, Callable[..., object]] = {}

#: modules that declare kernels — imported by :func:`declared_kernels`
#: so the runtime registry is complete without import-order luck.  The
#: static certifier does not use this list; it discovers ``@kernel``
#: syntactically over whatever tree it is pointed at.
KERNEL_MODULES = (
    "repro.geometry.bbox",
    "repro.geometry.boxsearch",
    "repro.core.contact_search",
    "repro.dtree.splitter",
)

#: cached ``repro.runtime.compiled.dispatch`` (lazy import: kernels.py
#: must stay importable before repro.runtime, and kernel-declaring
#: modules must not pay an import cycle)
_dispatch_fn: Optional[
    Callable[
        [str, Callable[..., Any], Tuple[Any, ...], Dict[str, Any]], Any
    ]
] = None


def _dispatch(
    name: str,
    pure: Callable[..., Any],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
) -> Any:
    global _dispatch_fn
    if _dispatch_fn is None:
        from repro.runtime.compiled import dispatch

        _dispatch_fn = dispatch
    return _dispatch_fn(name, pure, args, kwargs)


def kernel(fn: F) -> F:
    """Mark ``fn`` as a declared kernel and return its tier dispatcher.

    The original (pure) function is registered under its dotted name
    and remains reachable via :func:`pure_kernel`; the returned wrapper
    forwards every call to the active execution tier.  Declared kernels
    are certified by ``repro-lint --perf``; a marked function that
    violates the purity contract fails CI (KERN001).
    """
    name = f"{fn.__module__}.{fn.__qualname__}"
    _REGISTRY[name] = fn

    @functools.wraps(fn)
    def dispatcher(*args: Any, **kwargs: Any) -> Any:
        return _dispatch(name, fn, args, kwargs)

    setattr(dispatcher, KERNEL_ATTR, True)
    setattr(dispatcher, PURE_ATTR, fn)
    _DISPATCHERS[name] = dispatcher
    return cast(F, dispatcher)


def is_kernel(fn: Callable[..., object]) -> bool:
    """Whether ``fn`` was decorated with :func:`kernel`."""
    return bool(getattr(fn, KERNEL_ATTR, False))


def pure_kernel(fn: Callable[..., object]) -> Callable[..., object]:
    """The pure implementation behind a kernel dispatcher (identity for
    anything that is not a dispatcher)."""
    return cast(
        Callable[..., object], getattr(fn, PURE_ATTR, fn)
    )


def declared_kernels() -> Dict[str, Callable[..., object]]:
    """``{dotted name: pure function}`` of every declared kernel.

    Imports :data:`KERNEL_MODULES` first so the registry does not
    depend on what the caller happened to import already.
    """
    import importlib

    for mod in KERNEL_MODULES:
        importlib.import_module(mod)
    return dict(sorted(_REGISTRY.items()))


def kernel_dispatchers() -> Dict[str, Callable[..., object]]:
    """``{dotted name: dispatching wrapper}`` of every declared kernel
    (the callables actually installed at the call sites)."""
    declared_kernels()
    return dict(sorted(_DISPATCHERS.items()))


def kernel_names() -> List[str]:
    """Sorted dotted names of every declared kernel."""
    return sorted(declared_kernels())
