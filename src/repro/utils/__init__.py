"""Shared low-level utilities: seeded RNG, validation, array helpers."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_csr_arrays,
    check_in_range,
    check_labels,
    check_positive,
    require,
)
from repro.utils.arrays import (
    counts_per_label,
    group_by_label,
    relabel_contiguous,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_array",
    "check_csr_arrays",
    "check_in_range",
    "check_labels",
    "check_positive",
    "require",
    "counts_per_label",
    "group_by_label",
    "relabel_contiguous",
]
