"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (matching order, initial
partition seeds, synthetic workload generation) accepts a ``seed``
argument that is normalised here, so whole experiments are reproducible
from a single integer.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh nondeterministic generator, an ``int`` a
    seeded one, and an existing generator is passed through unchanged so
    callers can thread one generator through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Used when a driver fans work out to components that must not share
    a random stream (e.g. per-bisection seeds in recursive bisection).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = as_rng(seed)
    seq = np.random.SeedSequence(root.integers(0, 2**63 - 1))
    return [np.random.default_rng(s) for s in seq.spawn(n)]
