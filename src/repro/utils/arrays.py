"""Vectorised array helpers shared across subsystems."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


def counts_per_label(labels: np.ndarray, n_labels: int) -> np.ndarray:
    """Count occurrences of each label in ``[0, n_labels)``.

    Thin wrapper over :func:`numpy.bincount` that guarantees the result
    length even when trailing labels are absent.
    """
    labels = np.asarray(labels)
    if labels.size and (labels.min() < 0 or labels.max() >= n_labels):
        raise ValueError(
            f"labels must lie in [0, {n_labels}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    return np.bincount(labels, minlength=n_labels)


def group_by_label(labels: np.ndarray, n_labels: int) -> List[np.ndarray]:
    """Return, for each label, the (sorted) indices carrying that label.

    Single ``argsort`` instead of ``n_labels`` boolean scans — the usual
    O(n·k) → O(n log n) trick for building per-partition index lists.
    """
    labels = np.asarray(labels)
    order = np.argsort(labels, kind="stable")
    counts = counts_per_label(labels, n_labels)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return [order[bounds[i] : bounds[i + 1]] for i in range(n_labels)]


def relabel_contiguous(labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Map arbitrary integer labels onto ``0..u-1`` preserving order.

    Returns ``(new_labels, uniques)`` where ``uniques[new] == old``.
    """
    uniques, new = np.unique(np.asarray(labels), return_inverse=True)
    return new.astype(np.int64), uniques
