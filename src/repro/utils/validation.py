"""Argument validation helpers.

The partitioner and tree-induction code sit at the bottom of deep call
stacks; failing fast with a precise message at the public boundary is
much cheaper than debugging a shape error five levels down.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, Tuple

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float, strict: bool = True) -> None:
    """Validate that a scalar parameter is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_in_range(
    name: str, value: float, lo: float, hi: float, inclusive: bool = True
) -> None:
    """Validate ``lo <= value <= hi`` (or strict when ``inclusive=False``)."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {lo} {op} {name} {op} {hi}, got {value}")


def check_array(
    name: str,
    arr: np.ndarray,
    ndim: Optional[int] = None,
    shape: Optional[Tuple[Optional[int], ...]] = None,
    dtype_kind: Optional[str] = None,
) -> np.ndarray:
    """Validate an ndarray's rank, shape, and dtype kind.

    ``shape`` entries of ``None`` are wildcards. ``dtype_kind`` matches
    ``arr.dtype.kind`` against any character in the string (e.g. ``"iu"``
    for any integer type, ``"f"`` for floats).
    """
    arr = np.asarray(arr)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got ndim={arr.ndim}")
    if shape is not None:
        if arr.ndim != len(shape):
            raise ValueError(
                f"{name} must have shape {shape}, got {arr.shape}"
            )
        for want, got in zip(shape, arr.shape):
            if want is not None and want != got:
                raise ValueError(
                    f"{name} must have shape {shape}, got {arr.shape}"
                )
    if dtype_kind is not None and arr.dtype.kind not in dtype_kind:
        raise ValueError(
            f"{name} must have dtype kind in {dtype_kind!r}, got {arr.dtype}"
        )
    return arr


def check_labels(
    name: str, labels: np.ndarray, n_labels: int, size: Optional[int] = None
) -> np.ndarray:
    """Validate an integer label vector with values in ``[0, n_labels)``.

    Used for partition vectors and tree-induction targets; ``size``
    optionally pins the expected length (e.g. one label per point).
    """
    labels = check_array(name, labels, ndim=1, dtype_kind="iu")
    if size is not None and len(labels) != size:
        raise ValueError(
            f"{name} and data lengths differ: expected {size}, "
            f"got {len(labels)}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= n_labels):
        raise ValueError(
            f"{name} must lie in [0, {n_labels}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    return labels


def check_csr_arrays(graph: "HasCSRArrays") -> None:
    """Cheap O(1)/O(n) validation of a CSR graph at a public boundary.

    Checks the array contracts the partitioning kernels assume —
    integer dtype, contiguity, aligned lengths, monotone offsets,
    non-negative multi-constraint weights — without the O(m log m)
    symmetry check of :meth:`repro.graph.csr.CSRGraph.validate`.
    """
    xadj = check_array("xadj", graph.xadj, ndim=1, dtype_kind="iu")
    adjncy = check_array("adjncy", graph.adjncy, ndim=1, dtype_kind="iu")
    adjwgt = check_array("adjwgt", graph.adjwgt, ndim=1, dtype_kind="iu")
    vwgts = check_array("vwgts", graph.vwgts, ndim=2, dtype_kind="iu")
    for name, arr in (
        ("xadj", xadj), ("adjncy", adjncy),
        ("adjwgt", adjwgt), ("vwgts", vwgts),
    ):
        if not arr.flags["C_CONTIGUOUS"]:
            raise ValueError(f"{name} must be C-contiguous")
    if len(xadj) == 0 or xadj[0] != 0:
        raise ValueError("xadj must start at 0")
    if xadj[-1] != len(adjncy):
        raise ValueError("xadj[-1] must equal len(adjncy)")
    if len(adjwgt) != len(adjncy):
        raise ValueError("adjwgt and adjncy lengths differ")
    if vwgts.shape[0] != len(xadj) - 1:
        raise ValueError(
            f"vwgts has {vwgts.shape[0]} rows for {len(xadj) - 1} vertices"
        )
    if np.any(np.diff(xadj) < 0):
        raise ValueError("xadj must be non-decreasing")
    if vwgts.size and vwgts.min() < 0:
        raise ValueError("vwgts must be non-negative")


class HasCSRArrays(Protocol):
    """Structural type for :func:`check_csr_arrays` inputs."""

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgts: np.ndarray
