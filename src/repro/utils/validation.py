"""Argument validation helpers.

The partitioner and tree-induction code sit at the bottom of deep call
stacks; failing fast with a precise message at the public boundary is
much cheaper than debugging a shape error five levels down.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float, strict: bool = True) -> None:
    """Validate that a scalar parameter is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_in_range(
    name: str, value: float, lo: float, hi: float, inclusive: bool = True
) -> None:
    """Validate ``lo <= value <= hi`` (or strict when ``inclusive=False``)."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {lo} {op} {name} {op} {hi}, got {value}")


def check_array(
    name: str,
    arr: np.ndarray,
    ndim: Optional[int] = None,
    shape: Optional[Tuple[Optional[int], ...]] = None,
    dtype_kind: Optional[str] = None,
) -> np.ndarray:
    """Validate an ndarray's rank, shape, and dtype kind.

    ``shape`` entries of ``None`` are wildcards. ``dtype_kind`` matches
    ``arr.dtype.kind`` against any character in the string (e.g. ``"iu"``
    for any integer type, ``"f"`` for floats).
    """
    arr = np.asarray(arr)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got ndim={arr.ndim}")
    if shape is not None:
        if arr.ndim != len(shape):
            raise ValueError(
                f"{name} must have shape {shape}, got {arr.shape}"
            )
        for want, got in zip(shape, arr.shape):
            if want is not None and want != got:
                raise ValueError(
                    f"{name} must have shape {shape}, got {arr.shape}"
                )
    if dtype_kind is not None and arr.dtype.kind not in dtype_kind:
        raise ValueError(
            f"{name} must have dtype kind in {dtype_kind!r}, got {arr.dtype}"
        )
    return arr
