"""Geometric substrate: axis-aligned boxes, recursive coordinate
bisection (RCB), and the bounding-box-filter global search used by the
ML+RCB baseline."""

from repro.geometry.bbox import (
    bbox_of_points,
    bboxes_of_groups,
    bboxes_intersect_matrix,
    element_bboxes,
)
from repro.geometry.rcb import RCBTree, rcb_partition
from repro.geometry.boxsearch import bbox_filter_search

__all__ = [
    "bbox_of_points",
    "bboxes_of_groups",
    "bboxes_intersect_matrix",
    "element_bboxes",
    "RCBTree",
    "rcb_partition",
    "bbox_filter_search",
]
