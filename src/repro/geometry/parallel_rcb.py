"""Distributed recursive coordinate bisection on the simulated runtime.

The production ML+RCB codes (Plimpton et al.) run RCB in parallel: the
points stay distributed, and each cut's position is found collectively
with a weighted-median search — every rank reports how much local
weight falls below a proposed threshold, the coordinator bisects on the
answer, and only O(iterations) scalars cross the network per cut. This
module implements that protocol on :class:`~repro.runtime.comm.SimComm`
so the communication story is executable and accounted:

* phase ``rcb-extent`` — local bounding boxes per region (pick the cut
  dimension),
* phase ``rcb-count`` — local weight-below-threshold counts per
  bisection-search iteration,
* phase ``rcb-final`` — the broadcast cut decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.comm import SimComm
from repro.runtime.ledger import CommLedger
from repro.utils.arrays import group_by_label


@dataclass
class _Region:
    """A region still being cut: which output labels it will produce."""

    region_id: int
    label_offset: int
    k: int


def parallel_rcb(
    points: np.ndarray,
    k: int,
    owner_rank: np.ndarray,
    n_ranks: int,
    weights: Optional[np.ndarray] = None,
    search_iters: int = 40,
    ledger: Optional[CommLedger] = None,
) -> Tuple[np.ndarray, CommLedger]:
    """Distributed RCB into ``k`` parts.

    ``owner_rank[i]`` is the rank storing point ``i``. Returns
    ``(labels, ledger)`` with ``labels`` aligned to the input points.
    The result matches serial RCB's balance guarantees; exact cut
    positions may differ (the collective median search brackets the
    quantile to within one point-weight).
    """
    points = np.asarray(points, dtype=float)
    owner_rank = np.asarray(owner_rank, dtype=np.int64)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(points) < k:
        raise ValueError(f"need at least k={k} points")
    if len(owner_rank) != len(points):
        raise ValueError("owner_rank must align with points")
    if owner_rank.size and (
        owner_rank.min() < 0 or owner_rank.max() >= n_ranks
    ):
        raise ValueError("owner_rank out of range")
    if weights is None:
        weights = np.ones(len(points))
    weights = np.asarray(weights, dtype=float)

    comm = SimComm(n_ranks, ledger)
    ledger = comm.ledger
    d = points.shape[1]

    local_idx = group_by_label(owner_rank, n_ranks)
    # region id of every local point, per rank
    region_of = [np.zeros(len(idx), dtype=np.int64) for idx in local_idx]
    labels = np.empty(len(points), dtype=np.int64)

    frontier = [_Region(region_id=0, label_offset=0, k=k)]
    next_region_id = 1

    while frontier:
        # ------------------------------------------------------ extents
        merged_ext: Dict[int, Tuple[np.ndarray, np.ndarray, float]] = {}
        for rank in range(n_ranks):
            payload = {}
            pts = points[local_idx[rank]]
            wts = weights[local_idx[rank]]
            for reg in frontier:
                mask = region_of[rank] == reg.region_id
                if not mask.any():
                    continue
                sub = pts[mask]
                payload[reg.region_id] = (
                    sub.min(axis=0), sub.max(axis=0), float(wts[mask].sum())
                )
            if rank == 0:
                for rid, (lo, hi, w) in payload.items():
                    merged_ext[rid] = (lo, hi, w)
            elif payload:
                comm.send(
                    rank, 0, payload, phase="rcb-extent",
                    items=len(payload) * (2 * d + 1),
                )
        comm.barrier()
        for _src, payload in comm.inbox(0):
            for rid, (lo, hi, w) in payload.items():
                if rid in merged_ext:
                    mlo, mhi, mw = merged_ext[rid]
                    merged_ext[rid] = (
                        np.minimum(mlo, lo), np.maximum(mhi, hi), mw + w
                    )
                else:
                    merged_ext[rid] = (lo, hi, w)

        # pick the cut dimension and target weight per region
        plans: Dict[int, dict] = {}
        for reg in frontier:
            lo, hi, total_w = merged_ext[reg.region_id]
            dim = int(np.argmax(hi - lo))
            k0 = (reg.k + 1) // 2
            plans[reg.region_id] = {
                "dim": dim,
                "lo": float(lo[dim]),
                "hi": float(hi[dim]),
                "target": total_w * (k0 / reg.k),
                "k0": k0,
            }

        # --------------------------------------- collective median search
        for _it in range(search_iters):
            live = {
                rid: p for rid, p in plans.items()
                if p["hi"] - p["lo"] > 0
            }
            if not live:
                break
            proposals = {
                rid: 0.5 * (p["lo"] + p["hi"]) for rid, p in live.items()
            }
            counts = {rid: 0.0 for rid in live}
            for rank in range(n_ranks):
                pts = points[local_idx[rank]]
                wts = weights[local_idx[rank]]
                payload = {}
                for rid, thr in proposals.items():
                    mask = region_of[rank] == rid
                    if not mask.any():
                        continue
                    dim = plans[rid]["dim"]
                    below = pts[mask][:, dim] <= thr
                    payload[rid] = float(wts[mask][below].sum())
                if rank == 0:
                    for rid, w in payload.items():
                        counts[rid] += w
                elif payload:
                    comm.send(
                        rank, 0, payload, phase="rcb-count",
                        items=len(payload),
                    )
            comm.barrier()
            for _src, payload in comm.inbox(0):
                for rid, w in payload.items():
                    counts[rid] += w
            for rid, thr in proposals.items():
                if counts[rid] < plans[rid]["target"]:
                    plans[rid]["lo"] = thr
                else:
                    plans[rid]["hi"] = thr

        # --------------------------------------------- tie resolution
        # Structured meshes stack many points on one coordinate plane;
        # the bisection interval then collapses onto that plane and the
        # inclusive test would sweep every tied point left. One more
        # collective round counts weight strictly below and inclusively
        # below the converged threshold and keeps the closer side.
        tie_counts = {
            rid: [0.0, 0.0] for rid in plans
        }  # [strictly below, inclusive]
        thr_now = {
            rid: 0.5 * (p["lo"] + p["hi"]) for rid, p in plans.items()
        }
        for rank in range(n_ranks):
            pts = points[local_idx[rank]]
            wts = weights[local_idx[rank]]
            payload = {}
            for rid, thr in thr_now.items():
                mask = region_of[rank] == rid
                if not mask.any():
                    continue
                dim = plans[rid]["dim"]
                vals = pts[mask][:, dim]
                w = wts[mask]
                payload[rid] = (
                    float(w[vals < thr].sum()),
                    float(w[vals <= thr].sum()),
                )
            if rank == 0:
                for rid, (ws, wi) in payload.items():
                    tie_counts[rid][0] += ws
                    tie_counts[rid][1] += wi
            elif payload:
                comm.send(
                    rank, 0, payload, phase="rcb-count",
                    items=2 * len(payload),
                )
        comm.barrier()
        for _src, payload in comm.inbox(0):
            for rid, (ws, wi) in payload.items():
                tie_counts[rid][0] += ws
                tie_counts[rid][1] += wi

        decisions = {}
        for rid, p in plans.items():
            thr = thr_now[rid]
            strictly, inclusive = tie_counts[rid]
            target = p["target"]
            if abs(strictly - target) < abs(inclusive - target):
                # exclude the tie plane: nudge the threshold just below
                thr = float(np.nextafter(thr, -np.inf))
            decisions[rid] = (p["dim"], thr, p["k0"])
        for rank in range(1, n_ranks):
            comm.send(
                0, rank, decisions, phase="rcb-final",
                items=len(decisions),
            )
        comm.barrier()
        for rank in range(1, n_ranks):
            comm.inbox(rank)

        new_frontier: List[_Region] = []
        for reg in frontier:
            dim, thr, k0 = decisions[reg.region_id]
            left_id, right_id = next_region_id, next_region_id + 1
            next_region_id += 2
            for rank in range(n_ranks):
                mask = region_of[rank] == reg.region_id
                if not mask.any():
                    continue
                pts = points[local_idx[rank]]
                below = pts[:, dim] <= thr
                sub = np.nonzero(mask)[0]
                go_left = below[sub]
                region_of[rank][sub[go_left]] = left_id
                region_of[rank][sub[~go_left]] = right_id
            left = _Region(left_id, reg.label_offset, k0)
            right = _Region(right_id, reg.label_offset + k0, reg.k - k0)
            for child in (left, right):
                if child.k == 1:
                    for rank in range(n_ranks):
                        mask = region_of[rank] == child.region_id
                        labels[local_idx[rank][mask]] = child.label_offset
                else:
                    new_frontier.append(child)
        frontier = new_frontier

    return labels, ledger
