"""Distributed recursive coordinate bisection on the SPMD runtime.

The production ML+RCB codes (Plimpton et al.) run RCB in parallel: the
points stay distributed, and each cut's position is found collectively
with a weighted-median search — every rank reports how much local
weight falls below a proposed threshold, the coordinator bisects on the
answer, and only O(iterations) scalars cross the network per cut. This
module implements that protocol on the backend session API
(:mod:`repro.runtime.backends`) so the communication story is
executable — for real, on the process pool — and accounted:

* phase ``rcb-extent`` — local bounding boxes per region (pick the cut
  dimension),
* phase ``rcb-count`` — local weight-below-threshold counts per
  bisection-search iteration,
* phase ``rcb-final`` — the broadcast cut decisions.

Per-rank point shards live in session state (worker-resident on the
process backend); the coordinator merges per-rank contributions in
rank order, so labels are bit-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.tracer import TracerBase
from repro.runtime.backends import SpmdContext, resolve_backend
from repro.runtime.backends.base import BackendLike
from repro.runtime.ledger import CommLedger


@dataclass
class _Region:
    """A region still being cut: which output labels it will produce."""

    region_id: int
    label_offset: int
    k: int


# ----------------------------------------------------------------------
# supersteps (module-level: picklable, so they run on the process pool)
# ----------------------------------------------------------------------


def _init_step(ctx: SpmdContext, _arg: object) -> None:
    """Claim the local shard out of the shared arrays."""
    idx = np.nonzero(ctx.shared["owner_rank"] == ctx.rank)[0]
    ctx.state["idx"] = idx
    ctx.state["pts"] = ctx.shared["points"][idx]
    ctx.state["wts"] = ctx.shared["weights"][idx]
    ctx.state["region"] = np.zeros(len(idx), dtype=np.int64)


def _extent_step(
    ctx: SpmdContext, frontier_ids: Tuple[int, ...]
) -> Dict[int, Tuple[np.ndarray, np.ndarray, float]]:
    """Local bounding box and weight of every frontier region."""
    pts, wts = ctx.state["pts"], ctx.state["wts"]
    region = ctx.state["region"]
    payload: Dict[int, Tuple[np.ndarray, np.ndarray, float]] = {}
    with ctx.span("extent"):
        for rid in frontier_ids:
            mask = region == rid
            if not mask.any():
                continue
            sub = pts[mask]
            payload[rid] = (
                sub.min(axis=0), sub.max(axis=0), float(wts[mask].sum())
            )
    return payload


def _count_step(
    ctx: SpmdContext, proposals: Dict[int, Tuple[int, float]]
) -> Dict[int, float]:
    """Local weight below each region's proposed threshold."""
    pts, wts = ctx.state["pts"], ctx.state["wts"]
    region = ctx.state["region"]
    payload: Dict[int, float] = {}
    with ctx.span("count"):
        for rid, (dim, thr) in proposals.items():
            mask = region == rid
            if not mask.any():
                continue
            below = pts[mask][:, dim] <= thr
            payload[rid] = float(wts[mask][below].sum())
    return payload


def _tie_step(
    ctx: SpmdContext, thresholds: Dict[int, Tuple[int, float]]
) -> Dict[int, Tuple[float, float]]:
    """Local weight strictly below / inclusively below the converged
    threshold (tie-plane resolution round)."""
    pts, wts = ctx.state["pts"], ctx.state["wts"]
    region = ctx.state["region"]
    payload: Dict[int, Tuple[float, float]] = {}
    with ctx.span("count"):
        for rid, (dim, thr) in thresholds.items():
            mask = region == rid
            if not mask.any():
                continue
            vals = pts[mask][:, dim]
            w = wts[mask]
            payload[rid] = (
                float(w[vals < thr].sum()), float(w[vals <= thr].sum())
            )
    return payload


def _apply_step(
    ctx: SpmdContext,
    arg: Tuple[
        Dict[int, Tuple[int, float, int, int]], Dict[int, int]
    ],
) -> Dict[int, np.ndarray]:
    """Apply the broadcast cut decisions to the local shard and return
    the global indices of any finalized (single-part) children."""
    decisions, finalize = arg
    pts = ctx.state["pts"]
    region = ctx.state["region"]
    idx = ctx.state["idx"]
    done: Dict[int, np.ndarray] = {}
    with ctx.span("apply"):
        for rid, (dim, thr, left_id, right_id) in decisions.items():
            mask = region == rid
            if not mask.any():
                continue
            below = pts[:, dim] <= thr
            sub = np.nonzero(mask)[0]
            go_left = below[sub]
            region[sub[go_left]] = left_id
            region[sub[~go_left]] = right_id
        for child_rid, label in finalize.items():
            mask = region == child_rid
            if mask.any():
                done[label] = idx[mask]
    return done


def parallel_rcb(
    points: np.ndarray,
    k: int,
    owner_rank: np.ndarray,
    n_ranks: int,
    weights: Optional[np.ndarray] = None,
    search_iters: int = 40,
    ledger: Optional[CommLedger] = None,
    backend: BackendLike = None,
    tracer: Optional[TracerBase] = None,
) -> Tuple[np.ndarray, CommLedger]:
    """Distributed RCB into ``k`` parts.

    ``owner_rank[i]`` is the rank storing point ``i``. Returns
    ``(labels, ledger)`` with ``labels`` aligned to the input points.
    The result matches serial RCB's balance guarantees; exact cut
    positions may differ (the collective median search brackets the
    quantile to within one point-weight). ``backend`` selects where
    ranks execute; labels are bit-identical across backends.
    """
    points = np.asarray(points, dtype=float)
    owner_rank = np.asarray(owner_rank, dtype=np.int64)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(points) < k:
        raise ValueError(f"need at least k={k} points")
    if len(owner_rank) != len(points):
        raise ValueError("owner_rank must align with points")
    if owner_rank.size and (
        owner_rank.min() < 0 or owner_rank.max() >= n_ranks
    ):
        raise ValueError("owner_rank out of range")
    if weights is None:
        weights = np.ones(len(points))
    weights = np.asarray(weights, dtype=float)

    resolved = resolve_backend(backend)
    shared = {
        "points": points,
        "weights": weights,
        "owner_rank": owner_rank,
    }
    with resolved.open_session(
        n_ranks, ledger=ledger, tracer=tracer, shared=shared
    ) as sess:
        sess.step(_init_step)
        labels = _rcb_rounds(
            sess, points, k, n_ranks, search_iters
        )
        return labels, sess.ledger


def _rcb_rounds(
    sess,
    points: np.ndarray,
    k: int,
    n_ranks: int,
    search_iters: int,
) -> np.ndarray:
    """Coordinator loop: drive the cut rounds over an open session."""
    d = points.shape[1]
    labels = np.empty(len(points), dtype=np.int64)

    frontier = [_Region(region_id=0, label_offset=0, k=k)]
    next_region_id = 1

    while frontier:
        # ------------------------------------------------------ extents
        frontier_ids = tuple(reg.region_id for reg in frontier)
        per_rank = sess.step(_extent_step, frontier_ids)
        merged_ext: Dict[int, Tuple[np.ndarray, np.ndarray, float]] = {}
        for rank in range(n_ranks):
            payload = per_rank[rank]
            if rank > 0 and payload:
                sess.account(
                    "rcb-extent", rank, 0, len(payload) * (2 * d + 1)
                )
            for rid, (lo, hi, w) in payload.items():
                if rid in merged_ext:
                    mlo, mhi, mw = merged_ext[rid]
                    merged_ext[rid] = (
                        np.minimum(mlo, lo), np.maximum(mhi, hi), mw + w
                    )
                else:
                    merged_ext[rid] = (lo, hi, w)

        # pick the cut dimension and target weight per region
        plans: Dict[int, dict] = {}
        for reg in frontier:
            lo, hi, total_w = merged_ext[reg.region_id]
            dim = int(np.argmax(hi - lo))
            k0 = (reg.k + 1) // 2
            plans[reg.region_id] = {
                "dim": dim,
                "lo": float(lo[dim]),
                "hi": float(hi[dim]),
                "target": total_w * (k0 / reg.k),
                "k0": k0,
            }

        # --------------------------------------- collective median search
        for _it in range(search_iters):
            live = {
                rid: p for rid, p in plans.items()
                if p["hi"] - p["lo"] > 0
            }
            if not live:
                break
            proposals = {
                rid: (p["dim"], 0.5 * (p["lo"] + p["hi"]))
                for rid, p in live.items()
            }
            counts = {rid: 0.0 for rid in live}
            per_rank = sess.step(_count_step, proposals)
            for rank in range(n_ranks):
                payload = per_rank[rank]
                if rank > 0 and payload:
                    sess.account("rcb-count", rank, 0, len(payload))
                for rid, w in payload.items():
                    counts[rid] += w
            for rid, (_dim, thr) in proposals.items():
                if counts[rid] < plans[rid]["target"]:
                    plans[rid]["lo"] = thr
                else:
                    plans[rid]["hi"] = thr

        # --------------------------------------------- tie resolution
        # Structured meshes stack many points on one coordinate plane;
        # the bisection interval then collapses onto that plane and the
        # inclusive test would sweep every tied point left. One more
        # collective round counts weight strictly below and inclusively
        # below the converged threshold and keeps the closer side.
        tie_counts = {
            rid: [0.0, 0.0] for rid in plans
        }  # [strictly below, inclusive]
        thr_now = {
            rid: (p["dim"], 0.5 * (p["lo"] + p["hi"]))
            for rid, p in plans.items()
        }
        per_rank = sess.step(_tie_step, thr_now)
        for rank in range(n_ranks):
            payload = per_rank[rank]
            if rank > 0 and payload:
                sess.account("rcb-count", rank, 0, 2 * len(payload))
            for rid, (ws, wi) in payload.items():
                tie_counts[rid][0] += ws
                tie_counts[rid][1] += wi

        decisions: Dict[int, Tuple[int, float, int, int]] = {}
        finalize: Dict[int, int] = {}
        new_frontier: List[_Region] = []
        for reg in frontier:
            rid = reg.region_id
            p = plans[rid]
            _dim, thr = thr_now[rid]
            strictly, inclusive = tie_counts[rid]
            target = p["target"]
            if abs(strictly - target) < abs(inclusive - target):
                # exclude the tie plane: nudge the threshold just below
                thr = float(np.nextafter(thr, -np.inf))
            k0 = p["k0"]
            left_id, right_id = next_region_id, next_region_id + 1
            next_region_id += 2
            decisions[rid] = (p["dim"], thr, left_id, right_id)
            left = _Region(left_id, reg.label_offset, k0)
            right = _Region(right_id, reg.label_offset + k0, reg.k - k0)
            for child in (left, right):
                if child.k == 1:
                    finalize[child.region_id] = child.label_offset
                else:
                    new_frontier.append(child)

        for rank in range(1, n_ranks):
            sess.account("rcb-final", 0, rank, len(decisions))
        per_rank = sess.step(_apply_step, (decisions, finalize))
        for rank in range(n_ranks):
            for label, idx in per_rank[rank].items():
                labels[idx] = label

        frontier = new_frontier

    return labels
