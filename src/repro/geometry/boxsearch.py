"""Bounding-box-filter parallel global search (paper §4, ML+RCB path).

Every processor broadcasts its subdomain's bounding box; each surface
element is then sent to every *other* subdomain whose box its own box
intersects. The number of such (element, remote subdomain) pairs is the
**NRemote** communication cost. Subdomains whose boxes overlap heavily
generate false positives — the inefficiency the paper's decision-tree
descriptors attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.geometry.bbox import bboxes_intersect_matrix, bboxes_of_groups


@dataclass
class SearchPlan:
    """Result of a global-search filter.

    ``sends[e]`` lists the remote partitions element ``e`` must be sent
    to; ``n_remote`` is the total send count (NRemote).
    """

    send_matrix: np.ndarray  # bool[m_elements, k]
    owner: np.ndarray  # int64[m_elements]

    @property
    def n_remote(self) -> int:
        """Total (element, remote partition) send pairs."""
        return int(self.send_matrix.sum())

    def sends_for(self, element: int) -> np.ndarray:
        """Remote partitions element ``element`` is sent to."""
        return np.nonzero(self.send_matrix[element])[0]

    def per_partition_receive_counts(self, k: int) -> np.ndarray:
        """How many remote elements each partition receives."""
        return self.send_matrix.sum(axis=0).astype(np.int64)


def bbox_filter_search(
    element_boxes: np.ndarray,
    element_owner: np.ndarray,
    contact_points: np.ndarray,
    point_partition: np.ndarray,
    k: int,
    pad: float = 0.0,
) -> SearchPlan:
    """Global search with subdomain bounding boxes as the filter.

    ``element_boxes`` are the surface elements' AABBs
    (``float64[m, 2, d]``), owned by ``element_owner`` (the partition
    performing each element's search). Subdomain extents are the
    bounding boxes of each partition's contact points. An element is
    sent to every other partition whose subdomain box it touches.
    """
    element_boxes = np.asarray(element_boxes, dtype=float)
    element_owner = np.asarray(element_owner, dtype=np.int64)
    if len(element_boxes) != len(element_owner):
        raise ValueError("element_boxes and element_owner lengths differ")
    sub_boxes = bboxes_of_groups(contact_points, point_partition, k)
    hits = bboxes_intersect_matrix(element_boxes, sub_boxes, pad=pad)
    # never "send" an element to its own partition
    hits[np.arange(len(element_owner)), element_owner] = False
    return SearchPlan(send_matrix=hits, owner=element_owner)
