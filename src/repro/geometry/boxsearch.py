"""Bounding-box-filter parallel global search (paper §4, ML+RCB path).

Every processor broadcasts its subdomain's bounding box; each surface
element is then sent to every *other* subdomain whose box its own box
intersects. The number of such (element, remote subdomain) pairs is the
**NRemote** communication cost. Subdomains whose boxes overlap heavily
generate false positives — the inefficiency the paper's decision-tree
descriptors attack.

This module also hosts the contact-search inner kernel:
:func:`candidate_pairs` finds every (box, point-inside-box) pair via a
KD-tree candidate sweep followed by the certified
:func:`box_candidate_pairs` containment kernel — batch NumPy over the
flattened candidate set, replacing the per-box Python loop that used
to dominate the ``global-search/search`` span.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import List, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.bbox import bboxes_intersect_matrix, bboxes_of_groups
from repro.kernels import kernel


@dataclass
class SearchPlan:
    """Result of a global-search filter.

    ``sends[e]`` lists the remote partitions element ``e`` must be sent
    to; ``n_remote`` is the total send count (NRemote).
    """

    send_matrix: np.ndarray  # bool[m_elements, k]
    owner: np.ndarray  # int64[m_elements]

    @property
    def n_remote(self) -> int:
        """Total (element, remote partition) send pairs."""
        return int(self.send_matrix.sum())

    def sends_for(self, element: int) -> np.ndarray:
        """Remote partitions element ``element`` is sent to."""
        return np.nonzero(self.send_matrix[element])[0]

    def per_partition_receive_counts(self, k: int) -> np.ndarray:
        """How many remote elements each partition receives."""
        return self.send_matrix.sum(axis=0).astype(np.int64)


def bbox_filter_search(
    element_boxes: np.ndarray,
    element_owner: np.ndarray,
    contact_points: np.ndarray,
    point_partition: np.ndarray,
    k: int,
    pad: float = 0.0,
) -> SearchPlan:
    """Global search with subdomain bounding boxes as the filter.

    ``element_boxes`` are the surface elements' AABBs
    (``float64[m, 2, d]``), owned by ``element_owner`` (the partition
    performing each element's search). Subdomain extents are the
    bounding boxes of each partition's contact points. An element is
    sent to every other partition whose subdomain box it touches.
    """
    element_boxes = np.asarray(element_boxes, dtype=float)
    element_owner = np.asarray(element_owner, dtype=np.int64)
    if len(element_boxes) != len(element_owner):
        raise ValueError("element_boxes and element_owner lengths differ")
    sub_boxes = bboxes_of_groups(contact_points, point_partition, k)
    hits = bboxes_intersect_matrix(element_boxes, sub_boxes, pad=pad)
    # never "send" an element to its own partition
    hits[np.arange(len(element_owner)), element_owner] = False
    return SearchPlan(send_matrix=hits, owner=element_owner)


@kernel
def box_candidate_pairs(
    boxes: np.ndarray,
    points: np.ndarray,
    box_index: np.ndarray,
    point_index: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact containment over flattened (box, candidate point) pairs.

    ``box_index``/``point_index`` are parallel ``int64`` arrays naming
    candidate pairs (from any broad phase — KD-tree ball query, dense
    matrix, ...); the kernel keeps the pairs whose point lies inside
    the (inclusive) box and returns the filtered index arrays. One
    batch comparison over all pairs — no Python-level loop.

    Certified kernel: under ``REPRO_KERNELS=compiled`` the containment
    sweep runs as a numba loop with per-pair early exit, bit-identical
    to this body (``repro.runtime.compiled``).
    """
    pts = points[point_index]
    inside = (
        (pts >= boxes[box_index, 0]) & (pts <= boxes[box_index, 1])
    ).all(axis=1)
    return box_index[inside], point_index[inside]


def candidate_pairs(
    boxes: np.ndarray,
    points: np.ndarray,
    point_ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """All (box index, point id) pairs with the point inside the box.

    KD-tree over the points; each box queries a ball covering it
    (near-linear for well-shaped surface meshes, vs the quadratic
    dense-matrix approach), then the ragged candidate lists are
    flattened once and exact containment runs through the certified
    :func:`box_candidate_pairs` kernel. Returns parallel ``int64``
    arrays ``(box_indices, point_ids)``.
    """
    boxes = np.asarray(boxes, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    point_ids = np.asarray(point_ids, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    if len(points) == 0 or len(boxes) == 0:
        return empty, empty
    tree = cKDTree(points)
    centers = (boxes[:, 0] + boxes[:, 1]) / 2.0
    radii = np.linalg.norm(boxes[:, 1] - boxes[:, 0], axis=1) / 2.0
    hits = tree.query_ball_point(centers, radii + 1e-12)
    counts = np.fromiter(
        (len(h) for h in hits), dtype=np.int64, count=len(hits)
    )
    total = int(counts.sum())
    if total == 0:
        return empty, empty
    box_index = np.repeat(np.arange(len(boxes), dtype=np.int64), counts)
    cand_index = np.fromiter(
        chain.from_iterable(hits), dtype=np.int64, count=total
    )
    kept_boxes, kept_cands = box_candidate_pairs(
        boxes, points, box_index, cand_index
    )
    return kept_boxes, point_ids[kept_cands]
