"""Recursive coordinate bisection of weighted points.

The geometric partitioner ML+RCB applies to the contact points
(Plimpton et al. [27], Brown et al. [2]). Two entry points:

* :func:`rcb_partition` — build an RCB decomposition into ``k`` parts,
  returning both labels and the cut tree.
* :meth:`RCBTree.update` — re-fit the *existing* tree to moved points:
  every node keeps its splitting dimension and target fraction but
  re-solves its threshold on the points that now reach it. This is the
  paper's "follow-up partitionings computed by modifying the previous
  RCB partitioning" (§3); the number of points whose label changes is
  the **UpdComm** metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_array


@dataclass
class _Node:
    """RCB tree node. Leaves carry ``label >= 0``; interior nodes carry
    the split ``(dim, threshold)`` and the weight fraction routed left."""

    label: int = -1
    dim: int = -1
    threshold: float = 0.0
    frac_left: float = 0.5
    left: int = -1
    right: int = -1


@dataclass
class RCBTree:
    """Cut tree produced by :func:`rcb_partition`."""

    nodes: List[_Node]
    k: int
    root: int = 0

    # ------------------------------------------------------------------
    def assign(self, points: np.ndarray) -> np.ndarray:
        """Label ``points`` using the *current* thresholds (no re-fit)."""
        points = np.asarray(points, dtype=float)
        labels = np.empty(len(points), dtype=np.int64)
        self._assign_rec(self.root, np.arange(len(points)), points, labels)
        return labels

    def _assign_rec(
        self, nid: int, idx: np.ndarray, points: np.ndarray, out: np.ndarray
    ) -> None:
        node = self.nodes[nid]
        if node.label >= 0:
            out[idx] = node.label
            return
        go_left = points[idx, node.dim] <= node.threshold
        self._assign_rec(node.left, idx[go_left], points, out)
        self._assign_rec(node.right, idx[~go_left], points, out)

    # ------------------------------------------------------------------
    def update(
        self, points: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Re-fit thresholds to moved ``points`` and return new labels.

        Structure (split dimensions, leaf labels, fractions) is kept;
        only thresholds move, so successive decompositions stay highly
        correlated and data movement stays small.
        """
        points = np.asarray(points, dtype=float)
        if weights is None:
            weights = np.ones(len(points))
        weights = np.asarray(weights, dtype=float)
        labels = np.empty(len(points), dtype=np.int64)
        self._update_rec(
            self.root, np.arange(len(points)), points, weights, labels
        )
        return labels

    def _update_rec(
        self,
        nid: int,
        idx: np.ndarray,
        points: np.ndarray,
        weights: np.ndarray,
        out: np.ndarray,
    ) -> None:
        node = self.nodes[nid]
        if node.label >= 0:
            out[idx] = node.label
            return
        if len(idx) == 0:
            self._update_rec(node.left, idx, points, weights, out)
            return
        coords = points[idx, node.dim]
        node.threshold = _weighted_quantile(
            coords, weights[idx], node.frac_left
        )
        go_left = coords <= node.threshold
        self._update_rec(node.left, idx[go_left], points, weights, out)
        self._update_rec(node.right, idx[~go_left], points, weights, out)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count of the cut tree."""
        return len(self.nodes)


def _weighted_quantile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Threshold t such that points with ``value <= t`` carry ~``q`` of
    the total weight. Chooses a midpoint between adjacent values so the
    cut avoids sitting exactly on a point where possible."""
    order = np.argsort(values, kind="stable")
    v, w = values[order], weights[order]
    cum = np.cumsum(w)
    total = cum[-1]
    if total <= 0:
        return float(v[len(v) // 2])
    pos = int(np.searchsorted(cum, q * total, side="left"))
    pos = min(pos, len(v) - 1)
    if pos + 1 < len(v):
        return float(0.5 * (v[pos] + v[pos + 1]))
    return float(v[pos])


def rcb_partition(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, RCBTree]:
    """Recursive coordinate bisection into ``k`` parts.

    Splits along the longest extent of each region at the weighted
    quantile giving proportional sizes for non-power-of-two ``k``.
    Returns ``(labels, tree)``.
    """
    points = check_array("points", np.asarray(points, dtype=float), ndim=2)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(points) < k:
        raise ValueError(f"need at least k={k} points, got {len(points)}")
    if weights is None:
        weights = np.ones(len(points))
    weights = np.asarray(weights, dtype=float)

    nodes: List[_Node] = []
    labels = np.empty(len(points), dtype=np.int64)

    def build(idx: np.ndarray, kk: int, label_offset: int) -> int:
        nid = len(nodes)
        nodes.append(_Node())
        if kk == 1:
            nodes[nid].label = label_offset
            labels[idx] = label_offset
            return nid
        k0 = (kk + 1) // 2
        frac = k0 / kk
        sub = points[idx]
        extents = sub.max(axis=0) - sub.min(axis=0)
        dim = int(np.argmax(extents))
        thr = _weighted_quantile(sub[:, dim], weights[idx], frac)
        go_left = sub[:, dim] <= thr
        # guard: degenerate coordinates can put everything on one side
        if go_left.all() or (~go_left).all():
            order = np.argsort(sub[:, dim], kind="stable")
            n_left = max(1, min(len(idx) - 1, int(round(frac * len(idx)))))
            go_left = np.zeros(len(idx), dtype=bool)
            go_left[order[:n_left]] = True
            thr = float(sub[order[n_left - 1], dim])
        node = nodes[nid]
        node.dim, node.threshold, node.frac_left = dim, thr, frac
        node.left = build(idx[go_left], k0, label_offset)
        node.right = build(idx[~go_left], kk - k0, label_offset + k0)
        return nid

    build(np.arange(len(points)), k, 0)
    return labels, RCBTree(nodes=nodes, k=k)
