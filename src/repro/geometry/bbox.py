"""Axis-aligned bounding-box utilities (all vectorised).

Boxes are ``(lo, hi)`` pairs of ``float64[d]`` arrays; batched boxes
are ``float64[m, 2, d]`` with ``[:, 0]`` the lows and ``[:, 1]`` the
highs. Degenerate boxes (``lo == hi``) are legal — a single contact
point is its own box.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels import kernel
from repro.utils.arrays import group_by_label
from repro.utils.validation import check_array


def bbox_of_points(points: np.ndarray) -> np.ndarray:
    """Bounding box of a point set, shape ``(2, d)``."""
    points = check_array("points", np.asarray(points, dtype=float), ndim=2)
    if len(points) == 0:
        raise ValueError("cannot bound an empty point set")
    return np.stack((points.min(axis=0), points.max(axis=0)))


def bboxes_of_groups(
    points: np.ndarray, labels: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group bounding boxes, shape ``(n_groups, 2, d)``.

    Empty groups get inverted boxes (``lo = +inf, hi = -inf``) which
    intersect nothing — exactly the behaviour a subdomain with no
    contact points should have in the global-search filter.
    """
    points = np.asarray(points, dtype=float)
    d = points.shape[1]
    out = np.empty((n_groups, 2, d), dtype=np.float64)
    out[:, 0] = np.inf
    out[:, 1] = -np.inf
    for g, idx in enumerate(group_by_label(labels, n_groups)):
        if len(idx):
            out[g, 0] = points[idx].min(axis=0)
            out[g, 1] = points[idx].max(axis=0)
    return out


def element_bboxes(points: np.ndarray, connectivity: np.ndarray) -> np.ndarray:
    """Bounding boxes of mesh elements/faces, shape ``(m, 2, d)``.

    ``connectivity`` is ``(m, nodes_per_element)`` node indices; this is
    the "approximate each surface element by its bounding box" step the
    paper uses for both algorithms' global search.
    """
    points = np.asarray(points, dtype=float)
    conn = np.asarray(connectivity, dtype=np.int64)
    corner = points[conn]  # (m, npe, d)
    return np.stack((corner.min(axis=1), corner.max(axis=1)), axis=1)


@kernel
def bboxes_intersect_matrix(
    boxes_a: np.ndarray, boxes_b: np.ndarray, pad: float = 0.0
) -> np.ndarray:
    """Pairwise intersection tests: ``bool[mA, mB]``.

    ``pad`` inflates the B boxes symmetrically — used to model a
    contact-detection capture distance. O(mA·mB·d) vectorised; callers
    keep one side small (k subdomains).

    Certified kernel: under ``REPRO_KERNELS=compiled`` the call runs a
    numba loop form with early-exit per pair, bit-identical to this
    body (``repro.runtime.compiled``).
    """
    a = np.asarray(boxes_a, dtype=float)
    b = np.asarray(boxes_b, dtype=float)
    lo_ok = a[:, None, 0, :] <= b[None, :, 1, :] + pad
    hi_ok = a[:, None, 1, :] >= b[None, :, 0, :] - pad
    return (lo_ok & hi_ok).all(axis=2)


def box_contains_points(box: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Which of ``points`` lie inside ``box`` (inclusive)? ``bool[n]``."""
    box = np.asarray(box, dtype=float)
    points = np.asarray(points, dtype=float)
    return ((points >= box[0]) & (points <= box[1])).all(axis=1)


def box_volume(box: np.ndarray) -> float:
    """Volume (area in 2D) of a box; inverted boxes report 0."""
    box = np.asarray(box, dtype=float)
    extents = np.maximum(0.0, box[1] - box[0])
    return float(np.prod(extents))
