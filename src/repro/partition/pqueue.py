"""Max-priority queue with updatable keys, for FM refinement.

Classic heap + lazy invalidation: updating a vertex pushes a fresh
entry and bumps a version counter; stale entries are discarded on pop.
For FM's access pattern (many updates to boundary vertices) this is
simpler and, in Python, faster than a indexed binary heap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Hashable, Optional, Tuple


class MaxPQ:
    """Max-priority queue keyed by arbitrary hashable items."""

    def __init__(self) -> None:
        self._heap: list = []
        self._version: dict = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._version)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._version

    def insert(self, item: Hashable, priority: float) -> None:
        """Insert or update ``item`` with ``priority``."""
        count = next(self._counter)
        self._version[item] = count
        # negate for max-heap on heapq's min-heap; counter breaks ties FIFO
        heapq.heappush(self._heap, (-priority, count, item))

    update = insert

    def remove(self, item: Hashable) -> None:
        """Remove ``item`` if present (lazy; the heap entry is orphaned)."""
        self._version.pop(item, None)

    def peek(self) -> Optional[Tuple[Hashable, float]]:
        """Return ``(item, priority)`` of the max without removing it."""
        self._drop_stale()
        if not self._heap:
            return None
        neg, _, item = self._heap[0]
        return item, -neg

    def pop(self) -> Optional[Tuple[Hashable, float]]:
        """Remove and return ``(item, priority)`` of the max, or ``None``."""
        self._drop_stale()
        if not self._heap:
            return None
        neg, count, item = heapq.heappop(self._heap)
        del self._version[item]
        return item, -neg

    def _drop_stale(self) -> None:
        heap = self._heap
        version = self._version
        while heap:
            neg, count, item = heap[0]
            if version.get(item) == count:
                return
            heapq.heappop(heap)
