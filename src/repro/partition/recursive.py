"""k-way partitioning by recursive multilevel bisection.

For non-power-of-two ``k`` the bisection targets are proportional
(``ceil(k/2)/k`` vs ``floor(k/2)/k``), the standard METIS recursion.
Each recursion level gets an independent derived random seed so the
result is deterministic in the root seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.ops import induced_subgraph
from repro.obs.tracer import NULL_TRACER, TracerBase, ensure_tracer
from repro.partition.config import PartitionOptions
from repro.partition.multilevel import multilevel_bisection
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_csr_arrays


def recursive_bisection(
    graph: CSRGraph,
    k: int,
    options: Optional[PartitionOptions] = None,
    tracer: Optional[TracerBase] = None,
) -> np.ndarray:
    """Partition ``graph`` into ``k`` parts; returns ``int64[n]`` labels
    in ``[0, k)``.

    ``tracer`` accumulates coarsen/initial/refine spans across all
    ``k - 1`` bisections (one aggregate span per phase).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    check_csr_arrays(graph)
    options = options or PartitionOptions()
    part = np.zeros(graph.num_vertices, dtype=np.int64)
    _recurse(
        graph,
        k,
        0,
        options,
        part,
        np.arange(graph.num_vertices, dtype=np.int64),
        ensure_tracer(tracer),
    )
    return part


def _recurse(
    graph: CSRGraph,
    k: int,
    label_offset: int,
    options: PartitionOptions,
    out: np.ndarray,
    global_ids: np.ndarray,
    tracer: TracerBase = NULL_TRACER,
) -> None:
    if k == 1 or graph.num_vertices == 0:
        out[global_ids] = label_offset
        return
    k0 = (k + 1) // 2
    k1 = k - k0
    rng0, rng1, rng_bis = spawn_rngs(options.seed, 3)
    # Imbalance compounds multiplicatively down the recursion, so each
    # bisection gets the depth-th root of the overall tolerance.
    depth = int(np.ceil(np.log2(k)))
    level_ub = max(1.003, options.ubfactor ** (1.0 / depth))
    bis_options = replace(options, seed=rng_bis, ubfactor=level_ub)
    side = multilevel_bisection(
        graph, frac0=k0 / k, options=bis_options, tracer=tracer
    )

    left_local = np.nonzero(side == 0)[0]
    right_local = np.nonzero(side == 1)[0]
    left_graph, _ = induced_subgraph(graph, left_local)
    right_graph, _ = induced_subgraph(graph, right_local)
    _recurse(
        left_graph,
        k0,
        label_offset,
        replace(options, seed=rng0),
        out,
        global_ids[left_local],
        tracer,
    )
    _recurse(
        right_graph,
        k1,
        label_offset + k0,
        replace(options, seed=rng1),
        out,
        global_ids[right_local],
        tracer,
    )
