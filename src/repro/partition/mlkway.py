"""Direct multilevel k-way partitioning (the kmetis architecture).

Coarsen the graph once, compute an initial k-way partition of the
coarsest graph by recursive bisection (cheap at that size), then walk
the hierarchy back up running multi-constraint greedy k-way refinement
at every level. Compared with plain recursive bisection this sees all
k partitions at once during refinement, which avoids RB's horizon
effect — particularly valuable under multiple constraints, where RB's
per-bisection balancing forces every cut through the region where the
second constraint concentrates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs.tracer import (
    SPAN_COARSEN,
    SPAN_INITIAL,
    SPAN_REFINE,
    TracerBase,
    ensure_tracer,
)
from repro.partition.coarsen import coarsen
from repro.partition.config import PartitionOptions
from repro.partition.fragments import absorb_fragments
from repro.partition.recursive import recursive_bisection
from repro.partition.refine_kway import greedy_kway_refine, rebalance_kway
from repro.partition.refine_kway_fm import kway_fm_refine
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_csr_arrays


def multilevel_kway(
    graph: CSRGraph,
    k: int,
    options: Optional[PartitionOptions] = None,
    tracer: Optional[TracerBase] = None,
) -> np.ndarray:
    """Partition ``graph`` into ``k`` parts via the direct multilevel
    k-way V-cycle. Returns ``int64[n]`` labels."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    check_csr_arrays(graph)
    options = options or PartitionOptions()
    tracer = ensure_tracer(tracer)
    n = graph.num_vertices
    if k == 1 or n == 0:
        return np.zeros(n, dtype=np.int64)
    if k > n:
        raise ValueError(f"k={k} exceeds number of vertices {n}")

    rng_init, rng_refine = spawn_rngs(options.seed, 2)

    # coarsen until ~C·k vertices remain (enough granularity for the
    # initial k-way split to balance every constraint)
    coarsen_to = max(options.coarsen_to, 18 * k)
    with tracer.span(SPAN_COARSEN):
        hierarchy = coarsen(graph, replace(options, coarsen_to=coarsen_to))
        tracer.count("levels", len(hierarchy.levels))
    coarsest = hierarchy.coarsest

    # initial k-way partition of the coarsest graph (recursive
    # bisection; the graph is small so quality there is cheap)
    with tracer.span(SPAN_INITIAL):
        init_options = replace(options, seed=rng_init)
        if k > coarsest.num_vertices:
            # pathological: coarsening overshot below k (tiny inputs)
            part = np.arange(coarsest.num_vertices, dtype=np.int64) % k
        else:
            part = recursive_bisection(coarsest, k, init_options)
        refine_options = replace(options, seed=rng_refine)
        part, _ = rebalance_kway(coarsest, part, k, refine_options)
        part = greedy_kway_refine(coarsest, part, k, refine_options)

    with tracer.span(SPAN_REFINE):
        # uncoarsen with per-level k-way refinement (greedy sweep to
        # settle projected moves, then FM hill climbing)
        for level in reversed(hierarchy.levels):
            part = part[level.cmap]
            g = level.graph
            part, _ = rebalance_kway(g, part, k, refine_options)
            part = greedy_kway_refine(g, part, k, refine_options)
            part = kway_fm_refine(g, part, k, refine_options, passes=2)

        # fragment cleanup + final polish (feasible at exit: absorb is
        # the only overloading step and rebalance follows it)
        for _round in range(2):
            part, moved = absorb_fragments(graph, part, k, options)
            part, rebal_moved = rebalance_kway(
                graph, part, k, refine_options
            )
            part = greedy_kway_refine(graph, part, k, refine_options)
            tracer.count("rebalance_moves", rebal_moved)
            if moved == 0:
                break
    return part
