"""Vectorised heavy-edge matching for multilevel coarsening.

Uses the handshaking formulation: each unmatched vertex proposes its
heaviest-edge unmatched neighbour; mutual proposals become matches; the
rest retry next round. A few rounds match the large majority of
vertices, all with whole-array NumPy passes instead of a per-vertex
Python loop — the standard way to keep multilevel coarsening fast in
array languages, and the same scheme used by parallel multilevel
partitioners.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng


def _propose(
    graph: CSRGraph,
    match: np.ndarray,
    prio: np.ndarray,
) -> np.ndarray:
    """One proposal round: each unmatched vertex picks its heaviest
    unmatched neighbour (ties broken by the random priority ``prio``).

    Returns ``proposal[n]`` with -1 where no candidate exists.
    """
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    dst = graph.adjncy
    ok = (match[src] < 0) & (match[dst] < 0)
    proposal = np.full(n, -1, dtype=np.int64)
    if not ok.any():
        return proposal
    s, d, w = src[ok], dst[ok], graph.adjwgt[ok]
    # ascending sort by (src, weight, prio[dst]); the last edge of each
    # src-run is that vertex's argmax
    order = np.lexsort((prio[d], w, s))
    s, d = s[order], d[order]
    last = np.nonzero(np.diff(s, append=np.int64(-1)))[0]
    proposal[s[last]] = d[last]
    return proposal


def heavy_edge_matching(
    graph: CSRGraph,
    rounds: int = 4,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, int]:
    """Compute a heavy-edge matching of ``graph``.

    Returns ``(cmap, n_coarse)``: ``cmap[v]`` is the coarse-vertex id
    of ``v``; matched pairs share an id, unmatched vertices become
    singletons. Coarse ids are dense in ``[0, n_coarse)``.
    """
    n = graph.num_vertices
    rng = as_rng(seed)
    match = np.full(n, -1, dtype=np.int64)
    for _ in range(rounds):
        prio = rng.random(n)
        proposal = _propose(graph, match, prio)
        v = np.arange(n, dtype=np.int64)
        mutual = (
            (proposal >= 0)
            & (proposal[np.clip(proposal, 0, n - 1)] == v)
            & (v < proposal)
        )
        us = v[mutual]
        if len(us) == 0:
            break
        vs = proposal[us]
        match[us] = vs
        match[vs] = us
    # assign dense coarse ids: pair takes the id slot of its lower vertex
    is_rep = (match < 0) | (np.arange(n, dtype=np.int64) < match)
    cmap = np.full(n, -1, dtype=np.int64)
    reps = np.nonzero(is_rep)[0]
    cmap[reps] = np.arange(len(reps), dtype=np.int64)
    partner_of_rep = match[reps]
    has_partner = partner_of_rep >= 0
    cmap[partner_of_rep[has_partner]] = cmap[reps[has_partner]]
    return cmap, len(reps)


def random_matching(
    graph: CSRGraph, seed: SeedLike = None
) -> Tuple[np.ndarray, int]:
    """Random maximal-ish matching (baseline / tie-breaking fallback).

    Same handshaking machinery but proposals ignore edge weights, so it
    produces worse coarse graphs than heavy-edge matching — kept for
    ablation tests of the coarsening stage.
    """
    uniform = graph.with_adjwgt(np.ones_like(graph.adjwgt))
    return heavy_edge_matching(uniform, rounds=4, seed=seed)
