"""Fragment absorption: reconnecting disconnected partition pieces.

Multi-constraint refinement (and the rebalancer's capacity-driven
"teleport" moves) can leave a partition split into several connected
components. Every extra fragment adds interface area — and therefore
communication volume — without helping balance, so after refinement we
absorb each partition's non-dominant fragments into the neighbouring
partition they touch most, whenever the move keeps (or improves)
balance. This mirrors the connected-components cleanup multilevel
partitioners such as METIS perform.

Note: on inherently disconnected graphs (separate contact bodies) a
partition may legitimately span several bodies; fragments with no
foreign neighbours are left alone.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import partition_weights
from repro.graph.ops import connected_components, induced_subgraph
from repro.partition.balance import BalanceTracker, target_weights
from repro.partition.config import PartitionOptions


def _fragments_of(
    graph: CSRGraph, part: np.ndarray, p: int
) -> Tuple[np.ndarray, list]:
    """Vertices of partition ``p`` and their connected components
    (list of index arrays into the *global* vertex space), largest
    first."""
    verts = np.nonzero(part == p)[0]
    if len(verts) == 0:
        return verts, []
    sub, ids = induced_subgraph(graph, verts)
    comp = connected_components(sub)
    groups = [
        ids[comp == c] for c in range(comp.max() + 1)
    ]
    groups.sort(key=len, reverse=True)
    return verts, groups


def absorb_fragments(
    graph: CSRGraph,
    part: np.ndarray,
    k: int,
    options: Optional[PartitionOptions] = None,
    fracs: Optional[np.ndarray] = None,
    max_passes: int = 3,
    force: bool = True,
    force_limit: float = 0.5,
) -> Tuple[np.ndarray, int]:
    """Merge non-dominant partition fragments into their best
    neighbouring partition.

    A fragment moves to the foreign partition it shares the most edge
    weight with, preferring destinations within the balance bounds.
    With ``force=True`` (METIS's EliminateComponents policy) a fragment
    whose weight is below ``force_limit`` of the mean partition target
    is moved to its most-connected neighbour *even when that overloads
    it* — eliminating the fragment is worth a temporary imbalance that
    the caller's subsequent rebalancing sweep repairs with cheap
    single-vertex moves. Returns ``(part, n_vertices_moved)``.
    """
    options = options or PartitionOptions()
    part = np.asarray(part, dtype=np.int64)
    if fracs is None:
        fracs = np.full(k, 1.0 / k, dtype=np.float64)
    targets = target_weights(graph.total_vwgt, fracs)
    mean_target = targets.mean(axis=0)
    tracker = BalanceTracker(
        partition_weights(graph, part, k), targets, options.ubfactor
    )

    total_moved = 0
    for _pass in range(max_passes):
        moved_this_pass = 0
        for p in range(k):
            verts, groups = _fragments_of(graph, part, p)
            if len(groups) <= 1:
                continue
            for frag in groups[1:]:
                # edge weight from the fragment into each partition
                conn: dict = {}
                for v in frag:
                    nbrs = graph.neighbors(int(v))
                    wts = graph.edge_weights_of(int(v))
                    for u, w in zip(nbrs, wts):
                        q = int(part[u])
                        if q != p:
                            conn[q] = conn.get(q, 0) + int(w)
                if not conn:
                    continue  # body-isolated fragment; nothing adjacent
                frag_w = graph.vwgts[frag].sum(axis=0)
                ranked = sorted(
                    conn.items(), key=lambda kv: kv[1], reverse=True
                )
                chosen = None
                for dst, _w in ranked:
                    if tracker.fits(dst, frag_w.tolist()):
                        chosen = dst
                        break
                if chosen is None and force:
                    small = True
                    for j in range(graph.ncon):
                        if mean_target[j] > 0 and (
                            frag_w[j] > force_limit * mean_target[j]
                        ):
                            small = False
                            break
                    if small:
                        chosen = ranked[0][0]
                if chosen is None:
                    dst = ranked[0][0]
                    if tracker.delta_move(p, dst, frag_w.tolist()) < -1e-12:
                        chosen = dst
                if chosen is None:
                    continue
                part[frag] = chosen
                tracker.apply_move(p, chosen, frag_w.tolist())
                moved_this_pass += len(frag)
        total_moved += moved_this_pass
        if moved_this_pass == 0:
            break
    return part, total_moved


def count_fragments(graph: CSRGraph, part: np.ndarray, k: int) -> int:
    """Total connected components across all partitions (diagnostic;
    equals k plus the number of excess fragments on a connected
    graph)."""
    total = 0
    for p in range(k):
        _, groups = _fragments_of(graph, part, p)
        total += len(groups)
    return total
