"""Distributed diffusion repartitioning on the simulated runtime.

The paper's §4.3 update path and §6 parallelisation argument lean on
the parallel multilevel diffusion repartitioners of Schloegel et al.
This module implements the diffusion core of that family as an SPMD
protocol: each rank owns one partition's vertices, and load imbalance
is drained along the *partition adjacency graph* —

1. ranks report per-constraint loads to rank 0 (phase
   ``repart-load``);
2. rank 0 solves the diffusion plan: how much weight each overloaded
   partition sends to each underloaded neighbour (iterative first-order
   diffusion on the quotient graph), broadcast as transfer quotas
   (phase ``repart-plan``);
3. each rank fills its quotas with its cheapest boundary vertices
   (lowest cut-loss first) and ships them (phase ``repart-migrate``) —
   the migrated vertex count is exactly the redistribution cost the
   §2 repartitioning objective bounds.

The result matches the serial :func:`diffusion_repartition` contract:
restored balance (best effort) with small movement, plus a ledger that
prices the migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import boundary_vertices, partition_weights
from repro.partition.balance import target_weights
from repro.partition.config import PartitionOptions
from repro.runtime.comm import SimComm
from repro.runtime.ledger import CommLedger


@dataclass
class ParallelRepartitionResult:
    """Outcome of a distributed repartitioning step."""

    part: np.ndarray
    n_moved: int
    ledger: CommLedger
    rounds: int


def _quotient_adjacency(
    graph: CSRGraph, part: np.ndarray, k: int
) -> np.ndarray:
    """Boolean k×k adjacency of the partition quotient graph."""
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees())
    a = part[src]
    b = part[graph.adjncy]
    adj = np.zeros((k, k), dtype=bool)
    adj[a, b] = True
    np.fill_diagonal(adj, False)
    return adj


def _diffusion_plan(
    loads: np.ndarray,
    targets: np.ndarray,
    adj: np.ndarray,
    alpha: float = 0.45,
) -> Dict[Tuple[int, int, int], float]:
    """First-order diffusion quotas on the quotient graph.

    For each constraint independently, flow ``alpha * (excess_i -
    excess_j) / degree`` crosses each quotient edge, summed over a few
    sweeps — the classic Cybenko scheme the multilevel diffusion
    repartitioners build on (convergent for alpha below 1/max-degree).
    Quotas are keyed ``(src, dst, constraint)`` so the sender ships
    weight measured in the constraint that is actually draining.
    """
    k, ncon = loads.shape
    excess = loads.astype(float) - targets
    quotas: Dict[Tuple[int, int, int], float] = {}
    deg = np.maximum(1, adj.sum(axis=1))
    for _sweep in range(8):
        flow_total = 0.0
        for j in range(ncon):
            e = excess[:, j]
            for p in range(k):
                if e[p] <= 0:
                    continue
                for q in np.nonzero(adj[p])[0]:
                    diff = e[p] - e[int(q)]
                    if diff <= 0:
                        continue
                    f = alpha * diff / deg[p]
                    key = (p, int(q), j)
                    quotas[key] = quotas.get(key, 0.0) + f
                    excess[p, j] -= f
                    excess[int(q), j] += f
                    flow_total += f
        if flow_total < 1e-9:
            break
    return {key: f for key, f in quotas.items() if f >= 0.5}


def parallel_diffusion_repartition(
    graph: CSRGraph,
    old_part: np.ndarray,
    k: int,
    options: Optional[PartitionOptions] = None,
    ledger: Optional[CommLedger] = None,
    max_rounds: int = 4,
) -> ParallelRepartitionResult:
    """Distributed repartitioning; see module docstring.

    Rank ``p`` plays partition ``p``. Returns the new partition vector,
    vertices moved, the communication ledger, and protocol rounds used.
    """
    options = options or PartitionOptions()
    part = np.asarray(old_part, dtype=np.int64).copy()
    if len(part) != graph.num_vertices:
        raise ValueError("old_part length must match graph size")
    if part.size and (part.min() < 0 or part.max() >= k):
        raise ValueError("old_part labels out of range")
    comm = SimComm(k, ledger)
    ledger = comm.ledger
    targets = target_weights(
        graph.total_vwgt, np.full(k, 1.0 / k, dtype=np.float64)
    )
    allowed = targets * options.ubfactor
    vwgts = graph.vwgts

    rounds = 0
    total_moved = 0
    for _round in range(max_rounds):
        rounds += 1
        # --- superstep 1: loads to rank 0
        loads = partition_weights(graph, part, k)
        for rank in range(1, k):
            comm.send(
                rank, 0, loads[rank], phase="repart-load",
                items=graph.ncon,
            )
        comm.barrier()
        comm.inbox(0)

        over = False
        for j in range(graph.ncon):
            if targets[:, j].sum() > 0 and (
                loads[:, j] > allowed[:, j]
            ).any():
                over = True
        if not over:
            break

        # --- rank 0 solves the diffusion plan and broadcasts quotas
        adj = _quotient_adjacency(graph, part, k)
        plan = _diffusion_plan(loads, targets, adj)
        if not plan:
            break
        for rank in range(1, k):
            comm.send(
                0, rank, plan, phase="repart-plan", items=len(plan)
            )
        comm.barrier()
        for rank in range(1, k):
            comm.inbox(rank)

        # --- superstep 2: senders pick cheapest boundary vertices that
        # carry weight in the draining constraint
        bnd = boundary_vertices(graph, part)
        moved_this_round = 0
        for (src, dst, j), quota in sorted(plan.items()):
            cand = bnd[part[bnd] == src]
            cand = cand[vwgts[cand, j] > 0]
            if len(cand) == 0:
                continue
            # prefer vertices adjacent to dst, cheapest cut-loss first
            gains = []
            for v in cand:
                v = int(v)
                nbrs = graph.neighbors(v)
                wts = graph.edge_weights_of(v)
                to_dst = int(wts[part[nbrs] == dst].sum())
                to_src = int(wts[part[nbrs] == src].sum())
                if to_dst > 0:
                    gains.append((to_src - to_dst, v))
            gains.sort()
            shipped = 0.0
            shipped_vertices = []
            for _loss, v in gains:
                if shipped >= quota:
                    break
                part[v] = dst
                shipped += float(vwgts[v, j])
                shipped_vertices.append(v)
            if shipped_vertices:
                comm.send(
                    src, dst, shipped_vertices,
                    phase="repart-migrate",
                    items=len(shipped_vertices),
                )
                moved_this_round += len(shipped_vertices)
        comm.barrier()
        for rank in range(k):
            comm.inbox(rank)
        total_moved += moved_this_round
        if moved_this_round == 0:
            break

    return ParallelRepartitionResult(
        part=part, n_moved=total_moved, ledger=ledger, rounds=rounds
    )
