"""Diffusion-based (re)partitioning for adaptive updates (paper §4.3).

When the mesh topology or weights drift during a simulation, the old
partition becomes unbalanced but mostly still good. Rather than
partitioning from scratch (which would maximise data movement), the
repartitioner repairs balance with a minimal-movement diffusion sweep
and then re-polishes the cut — the same trade-off the multilevel
diffusion repartitioners of Schloegel et al. make.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.config import PartitionOptions
from repro.partition.refine_kway import greedy_kway_refine, rebalance_kway


@dataclass
class RepartitionResult:
    """Outcome of a repartitioning step.

    ``n_moved`` counts vertices whose owner changed — the data
    redistribution cost the second objective of graph repartitioning
    (paper §2) tries to minimise.
    """

    part: np.ndarray
    n_moved: int

    @property
    def overlap(self) -> int:
        """Alias documenting intent: vertices kept = n - n_moved (filled
        in by the caller who knows n)."""
        return -self.n_moved


def diffusion_repartition(
    graph: CSRGraph,
    old_part: np.ndarray,
    k: int,
    options: Optional[PartitionOptions] = None,
) -> RepartitionResult:
    """Repartition ``graph`` starting from ``old_part``.

    Restores every balance constraint (best effort) and improves the
    cut while maximising overlap with ``old_part``. Returns the new
    partition and the number of vertices that changed owner.
    """
    options = options or PartitionOptions()
    old_part = np.asarray(old_part, dtype=np.int64)
    if len(old_part) != graph.num_vertices:
        raise ValueError("old_part length must match graph size")
    if old_part.size and (old_part.min() < 0 or old_part.max() >= k):
        raise ValueError("old_part labels out of range")

    part = old_part.copy()
    part, _ = rebalance_kway(graph, part, k, options)
    part = greedy_kway_refine(graph, part, k, options)
    n_moved = int(np.count_nonzero(part != old_part))
    return RepartitionResult(part=part, n_moved=n_moved)
