"""Initial bisection of the coarsest graph.

Greedy graph growing (GGGP): grow one side breadth-first from a random
seed, always absorbing the frontier vertex whose move into the growing
region cuts the fewest edges, until the region's weight reaches the
target fraction. Several seeds are tried; each candidate is judged by
(balance violation, edge cut) lexicographically after a quick FM pass
in the caller. The coarsest graph is a few hundred vertices at most, so
the per-vertex Python loop here is irrelevant to end-to-end cost.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.balance import target_weights
from repro.partition.pqueue import MaxPQ
from repro.utils.rng import SeedLike, as_rng


def _growth_progress(
    w0: np.ndarray, total: np.ndarray, constraint: int = -1
) -> float:
    """Fraction of the way to the target.

    ``constraint == -1`` averages over constraints with nonzero totals;
    otherwise progress is measured on that single constraint. With
    several spatially-uncorrelated constraints no single stopping rule
    is right for every graph, so the driver tries all of them and lets
    FM pick the best refined candidate.
    """
    nz = total > 0
    if not nz.any():
        return 1.0
    if constraint >= 0:
        if total[constraint] <= 0:
            return 1.0
        return float(w0[constraint] / total[constraint])
    return float((w0[nz] / total[nz]).mean())


def greedy_graph_growing(
    graph: CSRGraph,
    frac0: float,
    seed_vertex: int,
    constraint: int = -1,
) -> np.ndarray:
    """Single GGGP run from ``seed_vertex``; returns a 0/1 partition.

    Side 0 is grown until its relative weight (per ``constraint``, or
    the mean when -1) reaches ``frac0``.
    """
    n = graph.num_vertices
    total = graph.total_vwgt.astype(float)
    part = np.ones(n, dtype=np.int64)
    in0 = np.zeros(n, dtype=bool)
    w0 = np.zeros(graph.ncon, dtype=float)

    pq = MaxPQ()

    def gain_of(v: int) -> float:
        nbrs = graph.neighbors(v)
        wts = graph.edge_weights_of(v)
        inside = in0[nbrs]
        return float(wts[inside].sum() - wts[~inside].sum())

    pq.insert(seed_vertex, 0.0)
    while _growth_progress(w0, total, constraint) < frac0:
        popped = pq.pop()
        if popped is None:
            break  # region's component exhausted before reaching target
        v, _ = popped
        if in0[v]:
            continue
        in0[v] = True
        part[v] = 0
        w0 += graph.vwgts[v]
        for u in graph.neighbors(v):
            if not in0[u]:
                pq.insert(int(u), gain_of(int(u)))
    return part


def initial_bisection(
    graph: CSRGraph,
    frac0: float,
    n_trials: int,
    seed: SeedLike = None,
) -> list:
    """Generate ``n_trials`` candidate bisections (caller refines and
    ranks them). Falls back to a random split when the graph has no
    edges."""
    n = graph.num_vertices
    rng = as_rng(seed)
    candidates = []
    if graph.num_edges == 0:
        for _ in range(n_trials):
            part = (rng.random(n) > frac0).astype(np.int64)
            candidates.append(part)
        return candidates
    seeds = rng.choice(n, size=min(n_trials, n), replace=False)
    # alternate the growth stopping rule across trials: mean progress,
    # then each individual constraint (multi-constraint graphs need a
    # candidate that is balanced in *each* constraint for FM to start
    # from)
    rules = [-1] + (
        list(range(graph.ncon)) if graph.ncon > 1 else []
    )
    for i, s in enumerate(seeds):
        rule = rules[i % len(rules)]
        candidates.append(
            greedy_graph_growing(graph, frac0, int(s), constraint=rule)
        )
    return candidates
