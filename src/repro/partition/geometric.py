"""Geometry-seeded multi-constraint partitioning (paper §6).

The paper's future-work list asks for "better geometry-aware
multi-constraint partitioning algorithms" whose subdomains natively
have small bounding-box overlap. This implements the natural first
candidate: seed the partition with an RCB decomposition of *all* mesh
nodes — whose subdomains are perfect axis-parallel boxes — then repair
the (multi-constraint) balance and polish the cut with the standard
k-way machinery. Compared with the pure graph-based pipeline the seed
is geometry-optimal and the refinement only perturbs it locally, so
boundaries stay close to axis-parallel without the P→P'→P'' detour.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.rcb import rcb_partition
from repro.graph.csr import CSRGraph
from repro.partition.config import PartitionOptions
from repro.partition.fragments import absorb_fragments
from repro.partition.refine_kway import greedy_kway_refine, rebalance_kway


def geometric_seed_partition(
    graph: CSRGraph,
    coords: np.ndarray,
    k: int,
    options: Optional[PartitionOptions] = None,
    refine: bool = True,
) -> np.ndarray:
    """Partition ``graph`` into ``k`` parts from an RCB seed.

    ``coords`` are the vertex coordinates (aligned with the graph).
    The RCB seed is computed with the first vertex-weight column as
    point weights (the FE work), then multi-constraint rebalancing and
    greedy refinement enforce every constraint of ``graph.vwgts``.
    With ``refine=False`` the raw (rebalanced) RCB decomposition is
    returned — useful as an ablation endpoint.
    """
    coords = np.asarray(coords, dtype=float)
    if len(coords) != graph.num_vertices:
        raise ValueError("coords must align with graph vertices")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    options = options or PartitionOptions()
    if k == 1:
        return np.zeros(graph.num_vertices, dtype=np.int64)

    weights = graph.vwgts[:, 0].astype(float)
    # RCB needs strictly positive weights to target; orphaned vertices
    # (zero FE work) ride along with weight epsilon
    weights = np.where(weights > 0, weights, 1e-6)
    part, _tree = rcb_partition(coords, k, weights=weights)

    part, _ = rebalance_kway(graph, part, k, options)
    if refine:
        part = greedy_kway_refine(graph, part, k, options)
        part, moved = absorb_fragments(graph, part, k, options)
        if moved:
            part, _ = rebalance_kway(graph, part, k, options)
            part = greedy_kway_refine(graph, part, k, options)
    return part
