"""Tunables for the multilevel partitioner.

Defaults mirror METIS's: 5% imbalance tolerance, coarsen until the
graph is small relative to k, a handful of initial-partition trials,
and a bounded number of refinement passes per level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.rng import SeedLike


@dataclass
class PartitionOptions:
    """Options shared by all partitioner entry points.

    Attributes
    ----------
    ubfactor:
        Allowed load imbalance per constraint (``1 + epsilon``); every
        constraint of every partition must stay below
        ``ubfactor * (total/k)`` where feasible.
    coarsen_to:
        Stop coarsening when the graph has at most this many vertices
        (scaled by the bisection fan-out internally).
    min_coarsen_ratio:
        Abort coarsening early when a level shrinks the vertex count by
        less than this factor (matching has stalled, e.g. on dense or
        star-like graphs).
    n_init_trials:
        Number of greedy-graph-growing seeds tried for the initial
        bisection; the best refined candidate wins.
    fm_passes:
        Maximum Fiduccia–Mattheyses passes per uncoarsening level.
    fm_neg_moves:
        Hill-climbing window: a pass aborts after this many consecutive
        moves without improving the best-seen cut.
    kway_passes:
        Maximum greedy k-way refinement passes.
    matching_rounds:
        Handshaking rounds of the vectorised heavy-edge matching.
    seed:
        Root random seed; all internal randomness derives from it.
    """

    ubfactor: float = 1.05
    coarsen_to: int = 120
    min_coarsen_ratio: float = 0.95
    n_init_trials: int = 6
    fm_passes: int = 6
    fm_neg_moves: int = 60
    kway_passes: int = 8
    matching_rounds: int = 4
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.ubfactor <= 1.0:
            raise ValueError(
                f"ubfactor must be > 1.0 (got {self.ubfactor}); use e.g. 1.05"
            )
        if self.coarsen_to < 2:
            raise ValueError("coarsen_to must be at least 2")
        if not 0.0 < self.min_coarsen_ratio < 1.0:
            raise ValueError("min_coarsen_ratio must be in (0, 1)")
        for name in ("n_init_trials", "fm_passes", "kway_passes", "matching_rounds"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
