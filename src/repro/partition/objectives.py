"""Multi-objective edge weights (paper §2, Schloegel et al. [31]).

The paper's background defines partitionings that minimise an objective
over a *vector* of edge weights. The contact problem is naturally
two-objective: every cut edge costs FE-phase communication (objective
0), and cut contact-contact edges additionally cost search-phase
communication (objective 1). The paper's production choice — scalar
edge weight 5 on contact-contact edges — is one scalarisation of that
vector; this module makes the vector explicit so the trade-off curve
can be swept:

* :class:`EdgeObjectives` stores per-edge objective vectors aligned
  with a graph's CSR arrays;
* :func:`scalarize` folds them into a single weight with coefficients;
* :func:`per_objective_cuts` reports each objective's cut separately;
* :func:`multi_objective_partition` partitions under a chosen
  coefficient vector and reports the full cut vector, enabling Pareto
  sweeps (see ``benchmarks/bench_objectives.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.sim.sequence import ContactSnapshot


@dataclass
class EdgeObjectives:
    """Per-edge objective vectors, aligned with ``graph.adjncy``.

    ``values`` has shape ``(len(adjncy), r)``; both directions of each
    undirected edge must carry the same vector (validated).
    """

    graph: CSRGraph
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(self.values, dtype=np.int64)
        if self.values.ndim != 2:
            raise ValueError("objective values must be 2-D")
        if len(self.values) != len(self.graph.adjncy):
            raise ValueError("objective values must align with adjncy")

    @property
    def n_objectives(self) -> int:
        """Number of edge objectives (r)."""
        return self.values.shape[1]

    def validate_symmetry(self) -> None:
        """Both copies of every undirected edge must agree."""
        g = self.graph
        n = g.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
        order_fwd = np.lexsort((g.adjncy, src))
        order_rev = np.lexsort((src, g.adjncy))
        if not np.array_equal(
            self.values[order_fwd], self.values[order_rev]
        ):
            raise ValueError("objective vectors are not symmetric")


def build_contact_objectives(
    snapshot: ContactSnapshot,
    base_graph: Optional[CSRGraph] = None,
) -> EdgeObjectives:
    """The contact problem's natural two objectives.

    Objective 0: FE-phase communication — 1 on every edge.
    Objective 1: search-phase communication — 1 on contact-contact
    edges, 0 elsewhere.
    """
    from repro.core.weights import build_contact_graph

    graph = base_graph if base_graph is not None else build_contact_graph(
        snapshot, contact_edge_weight=1
    )
    n = graph.num_vertices
    is_contact = np.zeros(n, dtype=bool)
    is_contact[snapshot.contact_nodes] = True
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    both = is_contact[src] & is_contact[graph.adjncy]
    values = np.column_stack(
        (np.ones(len(graph.adjncy), dtype=np.int64), both.astype(np.int64))
    )
    return EdgeObjectives(graph=graph, values=values)


def scalarize(
    objectives: EdgeObjectives, coefficients: Sequence[float]
) -> CSRGraph:
    """Fold objective vectors into scalar edge weights
    ``max(1, round(values @ coefficients))``."""
    coefficients = np.asarray(coefficients, dtype=float)
    if len(coefficients) != objectives.n_objectives:
        raise ValueError(
            f"need {objectives.n_objectives} coefficients, "
            f"got {len(coefficients)}"
        )
    if (coefficients < 0).any():
        raise ValueError("coefficients must be non-negative")
    combined = objectives.values @ coefficients
    weights = np.maximum(1, np.rint(combined)).astype(np.int64)
    return objectives.graph.with_adjwgt(weights)


def per_objective_cuts(
    objectives: EdgeObjectives, part: np.ndarray
) -> np.ndarray:
    """Cut value of each objective separately, shape ``(r,)``."""
    part = np.asarray(part, dtype=np.int64)
    g = objectives.graph
    src = np.repeat(np.arange(g.num_vertices, dtype=np.int64), g.degrees())
    cut = part[src] != part[g.adjncy]
    return objectives.values[cut].sum(axis=0) // 2


def multi_objective_partition(
    objectives: EdgeObjectives,
    k: int,
    coefficients: Sequence[float],
    options: Optional[PartitionOptions] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Partition under a scalarisation; returns ``(part, cut_vector)``.

    Sweeping ``coefficients`` traces the Pareto front between the
    objectives (each partition is optimal only for its own
    scalarisation, per [31]).
    """
    graph = scalarize(objectives, coefficients)
    part = partition_kway(graph, k, options)
    return part, per_objective_cuts(objectives, part)
