"""Priority-queue k-way FM refinement with hill climbing.

:mod:`repro.partition.refine_kway`'s greedy loop only takes
non-negative-gain moves, so it stalls in local minima that classic FM
escapes by accepting a bounded run of negative-gain moves and rolling
back to the best prefix. This module is the k-way analogue of
:mod:`repro.partition.refine_fm`: one global max-priority queue over
boundary vertices keyed by their best feasible move gain, incremental
gain updates around each move, and prefix rollback per pass.

Used as the per-level refiner of the direct multilevel k-way driver
and as an optional stronger final polish for recursive bisection.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import boundary_vertices, edge_cut, partition_weights
from repro.partition.balance import BalanceTracker, target_weights
from repro.partition.config import PartitionOptions
from repro.partition.pqueue import MaxPQ
from repro.utils.rng import as_rng


def _conn_of(graph: CSRGraph, part: np.ndarray, v: int) -> Dict[int, int]:
    conn: Dict[int, int] = {}
    nbrs = graph.neighbors(v)
    wts = graph.edge_weights_of(v)
    for u, w in zip(nbrs, wts):
        p = int(part[u])
        conn[p] = conn.get(p, 0) + int(w)
    return conn


def _best_move(
    graph: CSRGraph,
    part: np.ndarray,
    tracker: BalanceTracker,
    vwgts: list,
    v: int,
) -> Optional[Tuple[int, int]]:
    """Best feasible (gain, dst) for vertex ``v``, or None."""
    src = int(part[v])
    conn = _conn_of(graph, part, v)
    own = conn.get(src, 0)
    vw = vwgts[v]
    best = None
    for dst, wgt in conn.items():
        if dst == src:
            continue
        if not tracker.fits(dst, vw):
            continue
        gain = wgt - own
        if best is None or gain > best[0]:
            best = (gain, dst)
    return best


def kway_fm_refine(
    graph: CSRGraph,
    part: np.ndarray,
    k: int,
    options: Optional[PartitionOptions] = None,
    fracs: Optional[np.ndarray] = None,
    passes: Optional[int] = None,
) -> np.ndarray:
    """FM-style k-way refinement in place; returns ``part``.

    Requires a (near-)feasible input partition: moves never overload a
    destination, so infeasible inputs should go through
    :func:`repro.partition.refine_kway.rebalance_kway` first.
    """
    options = options or PartitionOptions()
    part = np.asarray(part, dtype=np.int64)
    if fracs is None:
        fracs = np.full(k, 1.0 / k, dtype=np.float64)
    targets = target_weights(graph.total_vwgt, fracs)
    vwgts = graph.vwgts.tolist()
    n_passes = passes if passes is not None else options.kway_passes

    for _pass in range(n_passes):
        tracker = BalanceTracker(
            partition_weights(graph, part, k), targets, options.ubfactor
        )
        pq = MaxPQ()
        moved_to: Dict[int, Tuple[int, int]] = {}  # v -> (from, to)
        locked = np.zeros(graph.num_vertices, dtype=bool)
        for v in boundary_vertices(graph, part):
            mv = _best_move(graph, part, tracker, vwgts, int(v))
            if mv is not None:
                pq.insert(int(v), float(mv[0]))

        start_cut = cur_cut = edge_cut(graph, part)
        best_cut = cur_cut
        journal: list = []  # (v, src, dst)
        best_len = 0
        since_best = 0

        while since_best < options.fm_neg_moves:
            entry = pq.pop()
            if entry is None:
                break
            v, _stale_gain = entry
            if locked[v]:
                continue
            mv = _best_move(graph, part, tracker, vwgts, v)
            if mv is None:
                continue
            gain, dst = mv
            src = int(part[v])
            # execute
            part[v] = dst
            tracker.apply_move(src, dst, vwgts[v])
            locked[v] = True
            cur_cut -= gain
            journal.append((v, src, dst))
            if cur_cut < best_cut:
                best_cut = cur_cut
                best_len = len(journal)
                since_best = 0
            else:
                since_best += 1
            # refresh unlocked neighbours
            for u in graph.neighbors(v):
                u = int(u)
                if locked[u]:
                    continue
                mu = _best_move(graph, part, tracker, vwgts, u)
                if mu is not None:
                    pq.insert(u, float(mu[0]))
                else:
                    pq.remove(u)

        # rollback past best prefix
        for v, src, dst in reversed(journal[best_len:]):
            part[v] = src
        if best_cut >= start_cut:
            break
    return part
