"""Multi-constraint balance bookkeeping shared by the refinement code.

A k-way partitioning with ``ncon`` constraints is *feasible* when every
partition's weight in every constraint stays below
``ubfactor * target`` (paper §2: ``LoadImbalance(P, j) <= 1 + eps``).
``violation`` quantifies infeasibility as the summed relative excess,
which gives the refinement loops a scalar to descend when a partition
starts out unbalanced (exactly the situation after the paper's P→P'
leaf-majority reassignment).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def target_weights(
    total_vwgt: np.ndarray, fracs: np.ndarray
) -> np.ndarray:
    """Per-partition per-constraint target weights, shape ``(k, ncon)``.

    ``fracs`` are the desired fractions per partition (summing to 1);
    recursive bisection uses uneven fractions like (3/5, 2/5) when k is
    not a power of two.
    """
    fracs = np.asarray(fracs, dtype=float)
    if not np.isclose(fracs.sum(), 1.0):
        raise ValueError(f"fracs must sum to 1, got {fracs.sum()}")
    return np.outer(fracs, np.asarray(total_vwgt, dtype=float))


def max_allowed(targets: np.ndarray, ubfactor: float) -> np.ndarray:
    """Upper weight bounds: ``ubfactor * target`` (zero targets stay 0
    but are never binding — see :func:`violation`)."""
    return targets * ubfactor


def violation(
    pwgts: np.ndarray, targets: np.ndarray, ubfactor: float
) -> float:
    """Summed relative excess over the allowed bounds (0 ⇔ feasible).

    Excess in constraint ``j`` is normalised by that constraint's mean
    target so constraints with different magnitudes contribute
    comparably. Constraints whose total weight is zero are skipped.
    """
    pwgts = np.asarray(pwgts, dtype=float)
    allowed = max_allowed(targets, ubfactor)
    scale = targets.mean(axis=0)
    total = 0.0
    for j in range(targets.shape[1]):
        if scale[j] <= 0:
            continue
        excess = np.maximum(0.0, pwgts[:, j] - allowed[:, j])
        total += float(excess.sum() / scale[j])
    return total


def is_feasible(
    pwgts: np.ndarray, targets: np.ndarray, ubfactor: float
) -> bool:
    """True when every partition satisfies every constraint bound."""
    return violation(pwgts, targets, ubfactor) <= 1e-12


def move_keeps_feasible(
    pwgts: np.ndarray,
    vwgt: np.ndarray,
    src: int,
    dst: int,
    targets: np.ndarray,
    ubfactor: float,
) -> bool:
    """Would moving a vertex of weight ``vwgt`` from ``src`` to ``dst``
    keep (or leave) the destination within bounds?

    Only the destination can gain weight, so only it is checked.
    Zero-total constraints are ignored.
    """
    allowed = max_allowed(targets, ubfactor)
    new_dst = pwgts[dst] + vwgt
    for j in range(targets.shape[1]):
        if targets[:, j].sum() <= 0:
            continue
        if new_dst[j] > allowed[dst, j]:
            return False
    return True


def violation_delta(
    pwgts: np.ndarray,
    vwgt: np.ndarray,
    src: int,
    dst: int,
    targets: np.ndarray,
    ubfactor: float,
) -> float:
    """Change in :func:`violation` caused by moving ``vwgt`` from
    ``src`` to ``dst`` (negative = improves balance)."""
    before = violation(pwgts[[src, dst]], targets[[src, dst]], ubfactor)
    after_pw = np.vstack((pwgts[src] - vwgt, pwgts[dst] + vwgt))
    after = violation(after_pw, targets[[src, dst]], ubfactor)
    return after - before


class BalanceTracker:
    """Incremental violation bookkeeping for the refinement inner loops.

    The naive :func:`violation_delta` allocates arrays per call, which
    dominates k-way refinement cost. This tracker holds partition
    weights and bounds as plain Python lists (ncon is 1–2 in practice)
    and answers move queries in O(ncon) with no allocation. Semantics
    match :func:`violation` exactly (asserted by tests).
    """

    def __init__(
        self, pwgts: np.ndarray, targets: np.ndarray, ubfactor: float
    ) -> None:
        pwgts = np.asarray(pwgts, dtype=float)
        targets = np.asarray(targets, dtype=float)
        self.k, self.ncon = targets.shape
        allowed = max_allowed(targets, ubfactor)
        scale = targets.mean(axis=0)
        # constraints with zero total weight never contribute
        self._inv_scale = [
            (1.0 / s) if s > 0 else 0.0 for s in scale.tolist()
        ]
        self.pw = [row[:] for row in pwgts.tolist()]
        self.allowed = [row[:] for row in allowed.tolist()]
        self._viol = [self._violation_row(p) for p in range(self.k)]
        self.total = sum(self._viol)

    def _violation_row(self, p: int) -> float:
        pw, al, inv = self.pw[p], self.allowed[p], self._inv_scale
        total = 0.0
        for j in range(self.ncon):
            excess = pw[j] - al[j]
            if excess > 0.0 and inv[j] > 0.0:
                total += excess * inv[j]
        return total

    def violation_of(self, p: int) -> float:
        """Current violation contribution of partition ``p``."""
        return self._viol[p]

    def worst(self):
        """``(partition, constraint)`` with the largest relative excess,
        or ``None`` when feasible."""
        best, best_val = None, 0.0
        for p in range(self.k):
            if self._viol[p] <= 0.0:
                continue
            pw, al, inv = self.pw[p], self.allowed[p], self._inv_scale
            for j in range(self.ncon):
                excess = (pw[j] - al[j]) * inv[j]
                if excess > best_val:
                    best_val, best = excess, (p, j)
        return best

    def delta_move(self, src: int, dst: int, vwgt) -> float:
        """Violation change if a vertex of weight ``vwgt`` moved
        ``src → dst`` (no allocation, state unchanged)."""
        inv = self._inv_scale
        pw_s, al_s = self.pw[src], self.allowed[src]
        pw_d, al_d = self.pw[dst], self.allowed[dst]
        before = self._viol[src] + self._viol[dst]
        after = 0.0
        for j in range(self.ncon):
            if inv[j] <= 0.0:
                continue
            e_s = pw_s[j] - vwgt[j] - al_s[j]
            if e_s > 0.0:
                after += e_s * inv[j]
            e_d = pw_d[j] + vwgt[j] - al_d[j]
            if e_d > 0.0:
                after += e_d * inv[j]
        return after - before

    def fits(self, dst: int, vwgt) -> bool:
        """Would adding ``vwgt`` keep ``dst`` within every bound?"""
        pw_d, al_d, inv = self.pw[dst], self.allowed[dst], self._inv_scale
        for j in range(self.ncon):
            if inv[j] > 0.0 and pw_d[j] + vwgt[j] > al_d[j]:
                return False
        return True

    def apply_move(self, src: int, dst: int, vwgt) -> None:
        """Commit a move and update cached violations."""
        pw_s, pw_d = self.pw[src], self.pw[dst]
        for j in range(self.ncon):
            pw_s[j] -= vwgt[j]
            pw_d[j] += vwgt[j]
        for p in (src, dst):
            old = self._viol[p]
            new = self._violation_row(p)
            self._viol[p] = new
            self.total += new - old

    def pwgts_array(self) -> np.ndarray:
        """Current partition weights as an ``(k, ncon)`` array."""
        return np.asarray(self.pw, dtype=float)
