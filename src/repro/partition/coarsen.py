"""Coarsening driver: repeated matching + contraction.

Produces the hierarchy of graphs that multilevel bisection walks back
up during uncoarsening. Coarsening stops when the graph is small
enough for initial partitioning or when matching stalls (shrink factor
above ``min_coarsen_ratio``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.ops import contract
from repro.partition.config import PartitionOptions
from repro.partition.matching import heavy_edge_matching
from repro.utils.rng import as_rng


@dataclass
class Level:
    """One level of the multilevel hierarchy.

    ``cmap`` maps this level's vertices to the next-coarser level's
    vertices (``None`` on the coarsest level).
    """

    graph: CSRGraph
    cmap: np.ndarray  # fine -> coarse map applied to produce the next level


@dataclass
class Hierarchy:
    """Coarsening hierarchy: ``levels[0]`` is the input graph;
    ``coarsest`` is the final contracted graph."""

    levels: List[Level]
    coarsest: CSRGraph

    def project(self, coarse_part: np.ndarray, level_idx: int) -> np.ndarray:
        """Project a partition of level ``level_idx + 1`` (or of
        ``coarsest`` for the last level) onto level ``level_idx``."""
        return coarse_part[self.levels[level_idx].cmap]


def coarsen(graph: CSRGraph, options: PartitionOptions) -> Hierarchy:
    """Build the coarsening hierarchy for ``graph``."""
    rng = as_rng(options.seed)
    levels: List[Level] = []
    current = graph
    while current.num_vertices > options.coarsen_to:
        cmap, n_coarse = heavy_edge_matching(
            current, rounds=options.matching_rounds, seed=rng
        )
        if n_coarse >= current.num_vertices * options.min_coarsen_ratio:
            break  # matching stalled; further levels would be wasted work
        levels.append(Level(graph=current, cmap=cmap))
        current = contract(current, cmap, n_coarse)
    return Hierarchy(levels=levels, coarsest=current)
