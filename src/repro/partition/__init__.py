"""Multilevel (multi-constraint) graph partitioner.

A from-scratch reimplementation of the METIS algorithm family the paper
relies on:

* heavy-edge matching + contraction coarsening,
* greedy-graph-growing initial bisection,
* Fiduccia–Mattheyses boundary refinement with multi-constraint
  balance handling (bisection and k-way variants),
* k-way partitioning by recursive bisection with proportional targets
  (the default driver) or by a direct multilevel k-way V-cycle,
* greedy multi-constraint k-way refinement (also used standalone to
  rebalance the collapsed leaf graph ``G'`` in the paper's §4.2),
* fragment absorption (METIS's connected-components cleanup),
* an RCB-seeded geometry-aware variant (paper §6), and
* a minimal-movement diffusion repartitioner (§4.3 updates).
"""

from repro.partition.config import PartitionOptions
from repro.partition.fragments import absorb_fragments, count_fragments
from repro.partition.geometric import geometric_seed_partition
from repro.partition.kway import partition_kway
from repro.partition.mlkway import multilevel_kway
from repro.partition.multilevel import multilevel_bisection
from repro.partition.recursive import recursive_bisection
from repro.partition.refine_kway import greedy_kway_refine, rebalance_kway
from repro.partition.refine_kway_fm import kway_fm_refine
from repro.partition.repartition import diffusion_repartition
from repro.partition.parallel_kway import parallel_partition_kway
from repro.partition.parallel_repartition import (
    parallel_diffusion_repartition,
)

__all__ = [
    "PartitionOptions",
    "absorb_fragments",
    "count_fragments",
    "geometric_seed_partition",
    "partition_kway",
    "multilevel_kway",
    "multilevel_bisection",
    "recursive_bisection",
    "greedy_kway_refine",
    "rebalance_kway",
    "kway_fm_refine",
    "diffusion_repartition",
    "parallel_partition_kway",
    "parallel_diffusion_repartition",
]
