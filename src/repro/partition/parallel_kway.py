"""Coarse-grain distributed multilevel partitioning (§6, [22]/[32]).

The last of the paper's "parallel formulations already exist" claims,
accounted on the SPMD runtime's ledger. The structure follows the
coarse-grain parallel multilevel scheme of Karypis & Kumar: vertices
are block-distributed; coarsening proceeds with *rank-local* matching
(cross-rank edges are never matched — the classic simplification that
trades a little coarsening rate for zero matching communication);
contraction needs each rank to learn the coarse ids of its ghost
(remote-neighbour) vertices, a halo exchange; when the graph is small
it is gathered to rank 0, partitioned with the full serial machinery,
and the labels scattered back; uncoarsening refines locally with
per-rank balance quotas granted by the coordinator so concurrent moves
cannot oversubscribe a destination partition.

Ledger phases: ``pk-halo`` (ghost coarse ids / partition labels),
``pk-gather`` (coarsest graph to rank 0), ``pk-scatter`` (labels back),
``pk-quota`` (refinement balance quotas).

Quality is a notch below the serial driver (local-only matching and
quota-throttled refinement are genuine costs of the parallel
formulation — the same trade the real ParMETIS makes); tests bound the
gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import partition_weights
from repro.graph.ops import contract
from repro.partition.balance import BalanceTracker, target_weights
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.runtime.backends import SpmdSession, resolve_backend
from repro.runtime.backends.base import BackendLike
from repro.runtime.ledger import CommLedger
from repro.utils.rng import as_rng


@dataclass
class ParallelKwayResult:
    """Outcome of a distributed partitioning run."""

    part: np.ndarray
    ledger: CommLedger
    levels: int


def _local_matching(
    graph: CSRGraph,
    owner: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, int]:
    """Heavy-edge matching restricted to same-rank edges.

    Same handshaking scheme as the serial matcher, with cross-rank
    edges masked out, so every matching decision is rank-local.
    """
    n = graph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    src_all = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    same_rank = owner[src_all] == owner[graph.adjncy]
    for _round in range(3):
        prio = rng.random(n)
        ok = (
            same_rank
            & (match[src_all] < 0)
            & (match[graph.adjncy] < 0)
        )
        proposal = np.full(n, -1, dtype=np.int64)
        if ok.any():
            s, d, w = (
                src_all[ok], graph.adjncy[ok], graph.adjwgt[ok]
            )
            order = np.lexsort((prio[d], w, s))
            s, d = s[order], d[order]
            last = np.nonzero(np.diff(s, append=np.int64(-1)))[0]
            proposal[s[last]] = d[last]
        v = np.arange(n, dtype=np.int64)
        mutual = (
            (proposal >= 0)
            & (proposal[np.clip(proposal, 0, n - 1)] == v)
            & (v < proposal)
        )
        us = v[mutual]
        if len(us) == 0:
            break
        match[us] = proposal[us]
        match[proposal[us]] = us
    is_rep = (match < 0) | (np.arange(n, dtype=np.int64) < match)
    cmap = np.full(n, -1, dtype=np.int64)
    reps = np.nonzero(is_rep)[0]
    cmap[reps] = np.arange(len(reps), dtype=np.int64)
    partner = match[reps]
    has = partner >= 0
    cmap[partner[has]] = cmap[reps[has]]
    return cmap, len(reps)


def _halo_items(graph: CSRGraph, owner: np.ndarray) -> Dict[Tuple[int, int], int]:
    """Ghost-exchange volume: for each (src_rank, dst_rank) pair, how
    many boundary vertex values src must ship to dst."""
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    cross = owner[src] != owner[graph.adjncy]
    if not cross.any():
        return {}
    pairs = np.column_stack(
        (src[cross], owner[src[cross]], owner[graph.adjncy[cross]])
    )
    # distinct (vertex, dst_rank): a value is shipped once per remote rank
    key = pairs[:, 0] * np.int64(owner.max() + 2) + pairs[:, 2]
    _, idx = np.unique(key, return_index=True)
    out: Dict[Tuple[int, int], int] = {}
    for v, s, d in pairs[idx]:
        out[(int(s), int(d))] = out.get((int(s), int(d)), 0) + 1
    return out


def _account_halo(
    sess: SpmdSession, graph: CSRGraph, owner: np.ndarray, phase: str
) -> None:
    """Account one halo exchange's traffic on the session ledger.

    The partitioning arithmetic below is already vectorised over the
    whole (conceptually distributed) graph, so this module's traffic is
    accounting-only: the ledger carries the communication story while
    the computation stays in the coordinator.
    """
    for (s, d), items in _halo_items(graph, owner).items():
        sess.account(phase, s, d, items)


def parallel_partition_kway(
    graph: CSRGraph,
    k: int,
    n_ranks: int,
    owner: Optional[np.ndarray] = None,
    options: Optional[PartitionOptions] = None,
    coarsen_to: Optional[int] = None,
    refine_rounds: int = 3,
    ledger: Optional[CommLedger] = None,
    backend: BackendLike = None,
) -> ParallelKwayResult:
    """Distributed multilevel k-way partitioning (see module docstring).

    ``owner[v]`` is the rank storing vertex ``v`` (default: contiguous
    blocks — the layout a mesh generator hands a fresh run). Returns
    the partition vector, the communication ledger, and the coarsening
    depth. This module's traffic is accounting-only (see
    :func:`_account_halo`), so ``backend`` affects only which backend's
    session carries the ledger — totals are identical everywhere.
    """
    options = options or PartitionOptions()
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    n = graph.num_vertices
    if k > max(1, n):
        raise ValueError(f"k={k} exceeds number of vertices {n}")
    if owner is None:
        owner = np.minimum(
            np.arange(n, dtype=np.int64) * n_ranks // max(n, 1), n_ranks - 1
        ).astype(np.int64)
    else:
        owner = np.asarray(owner, dtype=np.int64)
        if len(owner) != n:
            raise ValueError("owner must align with vertices")
        if owner.size and (owner.min() < 0 or owner.max() >= n_ranks):
            raise ValueError("owner out of range")
    sess = resolve_backend(backend).open_session(n_ranks, ledger=ledger)
    ledger = sess.ledger
    rng = as_rng(options.seed)
    if coarsen_to is None:
        coarsen_to = max(options.coarsen_to, 15 * k)

    # ---------------------------------------------------- coarsening
    levels: List[Tuple[CSRGraph, np.ndarray, np.ndarray]] = []
    cur_graph, cur_owner = graph, owner
    while cur_graph.num_vertices > coarsen_to:
        cmap, n_coarse = _local_matching(cur_graph, cur_owner, rng)
        if n_coarse >= cur_graph.num_vertices * options.min_coarsen_ratio:
            break
        # contraction needs ghost coarse ids: one halo exchange
        _account_halo(sess, cur_graph, cur_owner, phase="pk-halo")
        levels.append((cur_graph, cmap, cur_owner))
        coarse_owner = np.zeros(n_coarse, dtype=np.int64)
        coarse_owner[cmap] = cur_owner  # pairs are same-rank by design
        cur_graph = contract(cur_graph, cmap, n_coarse)
        cur_owner = coarse_owner

    # ------------------------------------- coarsest: gather + solve
    for r in range(1, n_ranks):
        local_vertices = int((cur_owner == r).sum())
        if local_vertices:
            sess.account(
                "pk-gather", r, 0,
                local_vertices + int(
                    (cur_owner[np.repeat(
                        np.arange(cur_graph.num_vertices, dtype=np.int64),
                        cur_graph.degrees(),
                    )] == r).sum()
                ),
            )
    part = partition_kway(cur_graph, k, options)
    for r in range(1, n_ranks):
        local_vertices = int((cur_owner == r).sum())
        if local_vertices:
            sess.account("pk-scatter", 0, r, local_vertices)

    # ------------------------------------------------ uncoarsening
    targets = target_weights(graph.total_vwgt, np.full(k, 1.0 / k, dtype=np.float64))
    for lvl_graph, cmap, lvl_owner in reversed(levels):
        part = part[cmap]
        # each refinement round: halo exchange of neighbour partitions,
        # coordinator grants per-rank quotas, ranks move local boundary
        # vertices within their quota share
        for _round in range(refine_rounds):
            _account_halo(sess, lvl_graph, lvl_owner, phase="pk-halo")
            tracker = BalanceTracker(
                partition_weights(lvl_graph, part, k),
                targets,
                options.ubfactor,
            )
            # quotas: each rank may add at most slack/n_ranks weight to
            # any partition this round
            for r in range(1, n_ranks):
                sess.account("pk-quota", 0, r, k)
            quota = np.zeros((n_ranks, k), dtype=np.float64)
            allowed = targets * options.ubfactor
            pw = tracker.pwgts_array()
            slack = np.maximum(0.0, allowed[:, 0] - pw[:, 0])
            for r in range(n_ranks):
                quota[r] = slack / n_ranks

            moved = 0
            src_all = np.repeat(
                np.arange(lvl_graph.num_vertices, dtype=np.int64), lvl_graph.degrees()
            )
            cut_edge = part[src_all] != part[lvl_graph.adjncy]
            boundary = np.unique(src_all[cut_edge])
            rng.shuffle(boundary)
            for v in boundary:
                v = int(v)
                r = int(lvl_owner[v])
                src_p = int(part[v])
                nbrs = lvl_graph.neighbors(v)
                wts = lvl_graph.edge_weights_of(v)
                conn: Dict[int, int] = {}
                for u, w in zip(nbrs, wts):
                    q = int(part[u])
                    conn[q] = conn.get(q, 0) + int(w)
                own = conn.get(src_p, 0)
                best = None
                vw = lvl_graph.vwgts[v]
                for dst, wgt in conn.items():
                    if dst == src_p or wgt <= own:
                        continue
                    if quota[r, dst] < vw[0]:
                        continue
                    if not tracker.fits(dst, vw.tolist()):
                        continue
                    gain = wgt - own
                    if best is None or gain > best[0]:
                        best = (gain, dst)
                if best is not None:
                    dst = best[1]
                    part[v] = dst
                    tracker.apply_move(src_p, dst, vw.tolist())
                    quota[r, dst] -= vw[0]
                    moved += 1
            if moved == 0:
                break

    # ------------------------------------------- final balance repair
    # quota-throttled refinement never *repairs* imbalance inherited
    # from the lumpy coarsest partition, so finish with the distributed
    # diffusion protocol (rank-per-partition stage, as ParMETIS switches
    # distributions between phases); its traffic lands in the same
    # ledger
    from repro.partition.parallel_repartition import (
        parallel_diffusion_repartition,
    )

    repaired = parallel_diffusion_repartition(
        graph, part, k, options, ledger=ledger
    )
    part = repaired.part
    sess.close()

    return ParallelKwayResult(
        part=part, ledger=ledger, levels=len(levels)
    )
