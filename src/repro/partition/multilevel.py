"""Multilevel bisection driver: coarsen → initial partition → uncoarsen.

The V-cycle at the heart of the partitioner. Candidate initial
bisections are each refined on the coarsest graph and ranked by
(balance violation, cut); the winner is projected back up the
hierarchy with an FM refinement pass at every level.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import edge_cut
from repro.obs.tracer import (
    SPAN_COARSEN,
    SPAN_INITIAL,
    SPAN_REFINE,
    TracerBase,
    ensure_tracer,
)
from repro.partition.balance import target_weights, violation
from repro.partition.coarsen import coarsen
from repro.partition.config import PartitionOptions
from repro.partition.initial import initial_bisection
from repro.partition.refine_fm import (
    _partition_weights2,
    fm_refine_bisection,
)
from repro.utils.rng import as_rng
from repro.utils.validation import check_csr_arrays, check_in_range


def multilevel_bisection(
    graph: CSRGraph,
    frac0: float = 0.5,
    options: Optional[PartitionOptions] = None,
    tracer: Optional[TracerBase] = None,
) -> np.ndarray:
    """Bisect ``graph`` into sides of fractions ``(frac0, 1 - frac0)``.

    Returns an ``int64[n]`` 0/1 partition vector balancing every
    vertex-weight constraint to within ``options.ubfactor``, with
    best-effort balance when exact feasibility is unattainable (e.g.
    very lumpy coarse vertices).
    """
    check_in_range("frac0", frac0, 0.0, 1.0, inclusive=False)
    check_csr_arrays(graph)
    options = options or PartitionOptions()
    tracer = ensure_tracer(tracer)
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    rng = as_rng(options.seed)
    with tracer.span(SPAN_COARSEN):
        hierarchy = coarsen(graph, options)
        tracer.count("levels", len(hierarchy.levels))
    coarsest = hierarchy.coarsest

    fracs = np.array([frac0, 1.0 - frac0])
    coarse_targets = target_weights(coarsest.total_vwgt, fracs)

    # --- initial partitioning: refine every candidate, keep the best ---
    with tracer.span(SPAN_INITIAL):
        candidates = initial_bisection(
            coarsest, frac0, options.n_init_trials, seed=rng
        )
        tracer.count("trials", len(candidates))
        best_part, best_key = None, None
        for cand in candidates:
            cand = fm_refine_bisection(
                coarsest, cand, coarse_targets, options
            )
            pw = _partition_weights2(coarsest, cand)
            key = (
                violation(pw, coarse_targets, options.ubfactor),
                edge_cut(coarsest, cand),
            )
            if best_key is None or key < best_key:
                best_key, best_part = key, cand
    part = best_part

    # --- uncoarsening with per-level refinement ---
    with tracer.span(SPAN_REFINE):
        for level in reversed(hierarchy.levels):
            part = part[level.cmap]
            lvl_targets = target_weights(level.graph.total_vwgt, fracs)
            part = fm_refine_bisection(
                level.graph, part, lvl_targets, options
            )
    return part
