"""Greedy multi-constraint k-way refinement and rebalancing.

Two related loops over boundary vertices:

* :func:`greedy_kway_refine` — cut-driven: move a vertex to the
  adjacent partition with the largest positive gain among
  balance-feasible destinations (gain-0 moves are taken when they
  strictly improve balance). This is the final polish after recursive
  bisection *and* the refinement operator applied to the collapsed leaf
  graph ``G'`` in the paper's §4.2 (there, each vertex is a whole
  rectangular region, so feasible moves preserve axis-parallel
  boundaries by construction).

* :func:`rebalance_kway` — balance-driven: while any partition exceeds
  a constraint bound, pick the partition/constraint with the worst
  relative excess and move the vertex that best reduces the total
  violation (cheapest cut loss among ties) out of it. Restores
  feasibility of the paper's P' majority-reassigned partition and
  implements the diffusion step of the repartitioner.

Both loops track balance with
:class:`~repro.partition.balance.BalanceTracker`, so a move query is
O(ncon) without allocations.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import boundary_vertices, partition_weights
from repro.partition.balance import BalanceTracker, target_weights
from repro.partition.config import PartitionOptions
from repro.utils.rng import as_rng


def _neighbor_partition_weights(
    graph: CSRGraph, part: np.ndarray, v: int
) -> Dict[int, int]:
    """Total edge weight from ``v`` into each adjacent partition."""
    conn: Dict[int, int] = {}
    nbrs = graph.neighbors(v)
    wts = graph.edge_weights_of(v)
    for u, w in zip(nbrs, wts):
        p = int(part[u])
        conn[p] = conn.get(p, 0) + int(w)
    return conn


def _make_tracker(
    graph: CSRGraph,
    part: np.ndarray,
    k: int,
    ubfactor: float,
    fracs: Optional[np.ndarray],
) -> BalanceTracker:
    if fracs is None:
        fracs = np.full(k, 1.0 / k, dtype=np.float64)
    targets = target_weights(graph.total_vwgt, fracs)
    pwgts = partition_weights(graph, part, k)
    return BalanceTracker(pwgts, targets, ubfactor)


def greedy_kway_refine(
    graph: CSRGraph,
    part: np.ndarray,
    k: int,
    options: Optional[PartitionOptions] = None,
    fracs: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Refine a k-way partition in place; returns ``part``."""
    options = options or PartitionOptions()
    part = np.asarray(part, dtype=np.int64)
    rng = as_rng(options.seed)
    tracker = _make_tracker(graph, part, k, options.ubfactor, fracs)
    vwgts = graph.vwgts.tolist()

    for _pass in range(options.kway_passes):
        moved = 0
        bnd = boundary_vertices(graph, part)
        rng.shuffle(bnd)
        for v in bnd:
            v = int(v)
            src = int(part[v])
            conn = _neighbor_partition_weights(graph, part, v)
            own = conn.get(src, 0)
            vw = vwgts[v]
            best = None  # (gain, -delta, dst)
            for dst, wgt in conn.items():
                if dst == src:
                    continue
                gain = wgt - own
                if gain < 0:
                    continue
                if not tracker.fits(dst, vw):
                    continue
                dv = tracker.delta_move(src, dst, vw)
                if gain == 0 and dv >= -1e-12:
                    continue  # zero-gain move must strictly help balance
                key = (gain, -dv, dst)
                if best is None or key > best:
                    best = key
            if best is not None:
                dst = best[2]
                part[v] = dst
                tracker.apply_move(src, dst, vw)
                moved += 1
        if moved == 0:
            break
    return part


def rebalance_kway(
    graph: CSRGraph,
    part: np.ndarray,
    k: int,
    options: Optional[PartitionOptions] = None,
    fracs: Optional[np.ndarray] = None,
    max_moves: Optional[int] = None,
    sample_cap: int = 384,
) -> Tuple[np.ndarray, int]:
    """Drive a k-way partition toward feasibility with minimal cut loss.

    Returns ``(part, n_moved)``. Terminates when feasible, when no
    single move improves the violation, or after ``max_moves``. Each
    move targets the worst (partition, constraint) excess; at most
    ``sample_cap`` candidate vertices are scored per move to bound the
    per-move cost on huge boundaries.
    """
    options = options or PartitionOptions()
    part = np.asarray(part, dtype=np.int64)
    tracker = _make_tracker(graph, part, k, options.ubfactor, fracs)
    vwgts_arr = graph.vwgts
    vwgts = vwgts_arr.tolist()
    if max_moves is None:
        max_moves = 4 * graph.num_vertices
    rng = as_rng(options.seed)

    n_moved = 0
    stall = 0
    while n_moved < max_moves and tracker.total > 1e-12 and stall < k + 2:
        worst = tracker.worst()
        if worst is None:
            break
        p_star, j_star = worst
        bnd = boundary_vertices(graph, part)
        cand = bnd[part[bnd] == p_star]
        # the binding constraint only shrinks by exporting weight in it
        cand = cand[vwgts_arr[cand, j_star] > 0]
        if len(cand) == 0:
            wide = np.nonzero(
                (part == p_star) & (vwgts_arr[:, j_star] > 0)
            )[0]
            cand = wide
        if len(cand) == 0:
            stall += 1  # nothing movable carries this constraint
            continue
        if len(cand) > sample_cap:
            cand = rng.choice(cand, size=sample_cap, replace=False)

        best = None  # (delta, cut_loss, v, dst)
        for v in cand:
            v = int(v)
            conn = _neighbor_partition_weights(graph, part, v)
            own = conn.get(p_star, 0)
            vw = vwgts[v]
            # adjacent partitions first, but also any partition with
            # spare capacity overall or slack in the binding constraint:
            # when every neighbouring partition is itself overweight,
            # balance can only be restored by a "teleport" move that a
            # later refinement pass cleans up
            dsts = set(conn)
            for d in range(k):
                if tracker.fits(d, vw) or (
                    tracker.pw[d][j_star] < tracker.allowed[d][j_star]
                ):
                    dsts.add(d)
            dsts.discard(p_star)
            for dst in dsts:
                dv = tracker.delta_move(p_star, dst, vw)
                if dv >= -1e-12:
                    continue
                cut_loss = own - conn.get(dst, 0)
                key = (dv, cut_loss, v, dst)
                if best is None or key < best:
                    best = key
        if best is None:
            stall += 1
            continue
        stall = 0
        _, _, v, dst = best
        part[v] = dst
        tracker.apply_move(p_star, dst, vwgts[v])
        n_moved += 1
    return part, n_moved
