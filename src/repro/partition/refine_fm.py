"""Fiduccia–Mattheyses bisection refinement with multi-constraint balance.

Each pass has two phases:

1. *Rebalance* — while the bisection violates a constraint bound, move
   the best-gain vertex out of a violating side (boundary vertices
   first). This is what repairs infeasible initial bisections and the
   paper's post-projection imbalances.
2. *Hill-climb* — classic FM: repeatedly move the highest-gain vertex
   whose move keeps the bisection feasible, allowing a bounded run of
   negative-gain moves, then roll back to the best prefix seen.

Gains are maintained incrementally; the initial gain vector is computed
with one vectorised pass over the edge arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import edge_cut
from repro.partition.balance import (
    BalanceTracker,
    is_feasible,
    move_keeps_feasible,
    violation,
    violation_delta,
)
from repro.partition.config import PartitionOptions
from repro.partition.pqueue import MaxPQ


def gain_vector(graph: CSRGraph, part: np.ndarray) -> np.ndarray:
    """FM gains for all vertices: external minus internal edge weight."""
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    same = part[src] == part[graph.adjncy]
    contrib = np.where(same, -graph.adjwgt, graph.adjwgt)
    gains = np.zeros(n, dtype=np.int64)
    np.add.at(gains, src, contrib)
    return gains


def _boundary_mask(graph: CSRGraph, part: np.ndarray) -> np.ndarray:
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    cut = part[src] != part[graph.adjncy]
    mask = np.zeros(n, dtype=bool)
    mask[src[cut]] = True
    return mask


def _partition_weights2(graph: CSRGraph, part: np.ndarray) -> np.ndarray:
    pw = np.zeros((2, graph.ncon), dtype=np.int64)
    np.add.at(pw, part, graph.vwgts)
    return pw


def _rebalance(
    graph: CSRGraph,
    part: np.ndarray,
    pwgts: np.ndarray,
    targets: np.ndarray,
    ubfactor: float,
    max_moves: int,
) -> None:
    """Greedy violation descent (phase 1). Mutates ``part``/``pwgts``.

    Each move targets the worst (side, constraint) excess and scores
    only vertices carrying weight in that constraint; gains are
    maintained incrementally after each move.
    """
    tracker = BalanceTracker(pwgts, targets, ubfactor)
    if tracker.total <= 1e-12:
        return
    gains = gain_vector(graph, part)
    boundary = _boundary_mask(graph, part)
    vwgts = graph.vwgts

    for _ in range(max_moves):
        worst = tracker.worst()
        if worst is None:
            break
        side, j_star = worst
        cand = np.nonzero(
            (part == side) & boundary & (vwgts[:, j_star] > 0)
        )[0]
        if len(cand) == 0:
            cand = np.nonzero((part == side) & (vwgts[:, j_star] > 0))[0]
        if len(cand) == 0:
            break  # the binding weight cannot be exported at all
        # best balance improvement, then best gain
        top = cand[np.argsort(gains[cand])[::-1][:64]]
        best = None  # (delta, -gain, v)
        for v in top:
            v = int(v)
            dv = tracker.delta_move(side, 1 - side, vwgts[v].tolist())
            if dv < -1e-12:
                key = (dv, -gains[v], v)
                if best is None or key < best:
                    best = key
        if best is None:
            break  # no single move improves balance
        _, _, v = best
        part[v] = 1 - side
        tracker.apply_move(side, 1 - side, vwgts[v].tolist())
        # incremental gain + boundary maintenance around v
        gains[v] = -gains[v]
        nbrs = graph.neighbors(v)
        wts = graph.edge_weights_of(v)
        for u, w in zip(nbrs, wts):
            if part[u] == part[v]:
                gains[u] -= 2 * w
            else:
                gains[u] += 2 * w
            boundary[u] = True
        boundary[v] = True
    pwgts[:] = tracker.pwgts_array().astype(np.int64)


def fm_refine_bisection(
    graph: CSRGraph,
    part: np.ndarray,
    targets: np.ndarray,
    options: PartitionOptions,
) -> np.ndarray:
    """Refine a 0/1 partition in place; returns ``part``.

    ``targets`` has shape ``(2, ncon)``.
    """
    n = graph.num_vertices
    part = np.asarray(part, dtype=np.int64)
    pwgts = _partition_weights2(graph, part)

    for _pass in range(options.fm_passes):
        _rebalance(
            graph, part, pwgts, targets, options.ubfactor, max_moves=n
        )
        improved = _fm_pass(graph, part, pwgts, targets, options)
        if not improved:
            break
    return part


def _fm_pass(
    graph: CSRGraph,
    part: np.ndarray,
    pwgts: np.ndarray,
    targets: np.ndarray,
    options: PartitionOptions,
) -> bool:
    """One FM hill-climbing pass. Returns True if the cut improved."""
    gains = gain_vector(graph, part)
    boundary = _boundary_mask(graph, part)
    locked = np.zeros(graph.num_vertices, dtype=bool)

    queues = (MaxPQ(), MaxPQ())
    for v in np.nonzero(boundary)[0]:
        queues[part[v]].insert(int(v), float(gains[v]))

    start_cut = cur_cut = edge_cut(graph, part)
    best_cut = cur_cut
    moves: list = []  # (v, from_side)
    best_len = 0
    since_best = 0

    while since_best < options.fm_neg_moves:
        # pick the feasible move with the larger gain among the two tops
        choice = None
        for side in (0, 1):
            top = queues[side].peek()
            if top is None:
                continue
            v, g = top
            if choice is None or g > choice[1]:
                choice = (side, g, v)
        if choice is None:
            break
        side, g, v = choice
        queues[side].pop()
        if locked[v] or part[v] != side:
            continue
        if not move_keeps_feasible(
            pwgts, graph.vwgts[v], side, 1 - side, targets, options.ubfactor
        ):
            continue  # discard for this pass

        # execute the move
        part[v] = 1 - side
        pwgts[side] -= graph.vwgts[v]
        pwgts[1 - side] += graph.vwgts[v]
        locked[v] = True
        cur_cut -= int(gains[v])
        moves.append((v, side))

        if cur_cut < best_cut:
            best_cut = cur_cut
            best_len = len(moves)
            since_best = 0
        else:
            since_best += 1

        # incremental gain updates for unlocked neighbours
        nbrs = graph.neighbors(v)
        wts = graph.edge_weights_of(v)
        for u, w in zip(nbrs, wts):
            if locked[u]:
                continue
            if part[u] == part[v]:
                gains[u] -= 2 * w  # edge became internal
            else:
                gains[u] += 2 * w  # edge became external
            queues[part[u]].insert(int(u), float(gains[u]))

    # roll back past the best prefix
    for v, side in reversed(moves[best_len:]):
        part[v] = side
        pwgts[1 - side] -= graph.vwgts[v]
        pwgts[side] += graph.vwgts[v]

    return best_cut < start_cut
