"""Top-level k-way partitioning entry point.

``partition_kway`` is the library's equivalent of
``METIS_PartGraphKway`` / the multi-constraint partitioner of [16]:
recursive multilevel bisection followed by a greedy multi-constraint
k-way refinement polish and, if needed, a rebalancing sweep.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs.tracer import SPAN_REFINE, TracerBase, ensure_tracer
from repro.partition.config import PartitionOptions
from repro.partition.fragments import absorb_fragments
from repro.partition.recursive import recursive_bisection
from repro.partition.refine_kway import greedy_kway_refine, rebalance_kway
from repro.partition.refine_kway_fm import kway_fm_refine
from repro.utils.validation import check_csr_arrays


def partition_kway(
    graph: CSRGraph,
    k: int,
    options: Optional[PartitionOptions] = None,
    tracer: Optional[TracerBase] = None,
) -> np.ndarray:
    """Compute a balanced k-way partition of ``graph``.

    Balances *every* column of ``graph.vwgts`` to within
    ``options.ubfactor`` (best effort when infeasible) while minimising
    the edge cut — i.e. single-constraint partitioning when ``ncon==1``
    and multi-constraint partitioning (paper §2/[16]) otherwise.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > max(1, graph.num_vertices):
        raise ValueError(
            f"k={k} exceeds number of vertices {graph.num_vertices}"
        )
    check_csr_arrays(graph)
    options = options or PartitionOptions()
    tracer = ensure_tracer(tracer)
    part = recursive_bisection(graph, k, options, tracer=tracer)
    if k > 1:
        # absorb stray fragments (may overload their destinations),
        # repair balance, then polish the cut; twice, because
        # rebalancing/refinement can strand new islands. Each round
        # ends feasible: absorb is the only step allowed to overload,
        # and rebalance_kway runs right after it.
        with tracer.span(SPAN_REFINE):
            for _round in range(2):
                part, moved = absorb_fragments(graph, part, k, options)
                part, rebal_moved = rebalance_kway(graph, part, k, options)
                part = greedy_kway_refine(graph, part, k, options)
                tracer.count("rebalance_moves", rebal_moved)
                if moved == 0:
                    break
            # hill-climbing FM polish (escapes the greedy loop's local
            # minima; feasibility-preserving)
            part = kway_fm_refine(graph, part, k, options)
    return part
