"""Surface extraction: boundary faces and surface nodes.

A face (edge in 2D) is a *boundary* face iff it appears in exactly one
element — interior faces are shared by two. Extraction hashes every
face by its sorted node tuple with one ``lexsort`` pass, so a
700k-element hex mesh resolves in well under a second. Erosion during
a simulation deletes elements, which automatically exposes the freshly
created channel walls as new boundary faces — exactly the mechanism
that grows the contact surface in penetration runs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mesh.element import ELEMENT_FACES
from repro.mesh.mesh import Mesh


def face_nodes(mesh: Mesh) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Enumerate every element face.

    Returns ``(faces, owner_elem, local_face)`` where ``faces`` is
    ``(m*nf, npf)`` node ids in local orientation order, ``owner_elem``
    the element producing each face, and ``local_face`` its index
    within :data:`ELEMENT_FACES`.
    """
    table = ELEMENT_FACES[mesh.elem_type]
    nf, npf = table.shape
    m = mesh.num_elements
    faces = mesh.elements[:, table].reshape(m * nf, npf)
    owner = np.repeat(np.arange(m, dtype=np.int64), nf)
    local = np.tile(np.arange(nf, dtype=np.int64), m)
    return faces, owner, local


def _face_keys(faces: np.ndarray) -> np.ndarray:
    """Orientation-independent sort key per face (sorted node ids)."""
    return np.sort(faces, axis=1)


def boundary_faces(mesh: Mesh) -> Tuple[np.ndarray, np.ndarray]:
    """Boundary faces of ``mesh``.

    Returns ``(faces, owner_elem)``: faces in original orientation,
    plus the owning element of each. Faces appearing twice (interior)
    are filtered out by grouping on the sorted-node key.
    """
    faces, owner, _ = face_nodes(mesh)
    if len(faces) == 0:
        return faces, owner
    keys = _face_keys(faces)
    order = np.lexsort(keys.T[::-1])
    sk = keys[order]
    new_group = np.any(sk != np.roll(sk, 1, axis=0), axis=1)
    new_group[0] = True
    group_id = np.cumsum(new_group) - 1
    counts = np.bincount(group_id)
    singleton = counts[group_id] == 1
    sel = order[singleton]
    return faces[sel], owner[sel]


def surface_nodes(mesh: Mesh) -> np.ndarray:
    """Sorted unique node ids lying on the mesh boundary."""
    faces, _ = boundary_faces(mesh)
    return np.unique(faces)


def interior_face_pairs(mesh: Mesh) -> np.ndarray:
    """Element pairs sharing a face, ``(p, 2)`` — the dual-graph edges."""
    faces, owner, _ = face_nodes(mesh)
    if len(faces) == 0:
        return np.empty((0, 2), dtype=np.int64)
    keys = _face_keys(faces)
    order = np.lexsort(keys.T[::-1])
    sk = keys[order]
    so = owner[order]
    same_as_prev = np.all(sk[1:] == sk[:-1], axis=1)
    idx = np.nonzero(same_as_prev)[0]
    return np.column_stack((so[idx], so[idx + 1]))
