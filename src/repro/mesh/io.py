"""Mesh persistence as ``.npz`` archives.

Snapshot sequences from long synthetic runs can be generated once and
replayed by the benchmark harness without re-simulating.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.mesh.mesh import Mesh

PathLike = Union[str, Path]


def save_mesh(path: PathLike, mesh: Mesh) -> None:
    """Write ``mesh`` to ``path`` (``.npz``)."""
    np.savez_compressed(
        Path(path),
        nodes=mesh.nodes,
        elements=mesh.elements,
        elem_type=np.array(mesh.elem_type),
        body_id=mesh.body_id,
    )


def load_mesh(path: PathLike) -> Mesh:
    """Read a mesh written by :func:`save_mesh`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return Mesh(
            nodes=data["nodes"],
            elements=data["elements"],
            elem_type=str(data["elem_type"]),
            body_id=data["body_id"],
        )
