"""Element measures: areas, volumes, simple statistics.

Used by tests (generated meshes must tile their bounding volume
exactly) and by the Figure-3 per-snapshot statistics.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mesh.mesh import Mesh

# hex → 6 tets decomposition (consistent with the generator's ordering)
_HEX_TETS = np.array(
    [
        [0, 1, 2, 6],
        [0, 2, 3, 6],
        [0, 3, 7, 6],
        [0, 7, 4, 6],
        [0, 4, 5, 6],
        [0, 5, 1, 6],
    ]
)


def _tet_volumes(p: np.ndarray) -> np.ndarray:
    """Signed volumes of tets given ``(m, 4, 3)`` corners."""
    a = p[:, 1] - p[:, 0]
    b = p[:, 2] - p[:, 0]
    c = p[:, 3] - p[:, 0]
    return np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0


def element_measures(mesh: Mesh) -> np.ndarray:
    """Per-element area (2D) or volume (3D), always non-negative."""
    corners = mesh.nodes[mesh.elements]
    if mesh.elem_type == "tri":
        a = corners[:, 1] - corners[:, 0]
        b = corners[:, 2] - corners[:, 0]
        return np.abs(a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]) / 2.0
    if mesh.elem_type == "quad":
        # shoelace over the 4 corners
        x, y = corners[..., 0], corners[..., 1]
        xs = np.roll(x, -1, axis=1)
        ys = np.roll(y, -1, axis=1)
        return np.abs((x * ys - xs * y).sum(axis=1)) / 2.0
    if mesh.elem_type == "tet":
        return np.abs(_tet_volumes(corners))
    if mesh.elem_type == "hex":
        vols = np.zeros(mesh.num_elements)
        for tet in _HEX_TETS:
            vols += np.abs(_tet_volumes(corners[:, tet]))
        return vols
    raise ValueError(f"unsupported element type {mesh.elem_type!r}")


def mesh_stats(mesh: Mesh) -> Dict[str, float]:
    """Summary statistics for reporting (Figure-3 style tables)."""
    measures = element_measures(mesh)
    return {
        "num_nodes": float(mesh.num_nodes),
        "num_elements": float(mesh.num_elements),
        "total_measure": float(measures.sum()),
        "min_measure": float(measures.min()) if len(measures) else 0.0,
        "max_measure": float(measures.max()) if len(measures) else 0.0,
        "num_bodies": float(len(np.unique(mesh.body_id)))
        if mesh.num_elements
        else 0.0,
    }
