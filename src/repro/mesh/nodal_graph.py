"""Nodal graph of a mesh (paper §2).

Vertices are mesh nodes; edges connect nodes joined by a mesh edge.
This is the graph the MCML+DT partitioner operates on. Nodes not used
by any element become isolated vertices (they keep their ids so the
partition vector stays node-aligned across erosion steps).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.csr import CSRGraph
from repro.mesh.element import ELEMENT_EDGES
from repro.mesh.mesh import Mesh


def nodal_graph(
    mesh: Mesh,
    vwgts: Optional[np.ndarray] = None,
    edge_weights: Optional[np.ndarray] = None,
) -> CSRGraph:
    """Build the nodal graph of ``mesh``.

    ``vwgts`` defaults to unit single-constraint weights; callers build
    the two-constraint contact weighting with
    :func:`repro.core.weights.build_contact_graph`. Duplicate mesh
    edges (shared by several elements) collapse to a single graph edge
    of weight 1 (or max of the provided per-edge weights).
    """
    table = ELEMENT_EDGES[mesh.elem_type]
    edges = mesh.elements[:, table].reshape(-1, 2)
    if edge_weights is not None:
        weights = np.asarray(edge_weights, dtype=np.int64)
        if len(weights) != len(edges):
            raise ValueError("edge_weights must align with element edges")
    else:
        weights = np.ones(len(edges), dtype=np.int64)
    return from_edge_list(
        mesh.num_nodes, edges, weights=weights, vwgts=vwgts, combine="max"
    )
