"""Structured mesh generators for the synthetic contact scenes.

``structured_box_mesh`` (hex) and ``structured_quad_mesh`` (quad) build
axis-aligned blocks — plates and rod projectiles are blocks at
different aspect ratios. ``merge_meshes`` concatenates bodies into one
multi-body mesh *without* node sharing, which is the correct topology
for contact problems (bodies interact through contact search, not
through shared nodes).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.mesh.mesh import Mesh
from repro.utils.validation import check_positive


def structured_box_mesh(
    nx: int,
    ny: int,
    nz: int,
    origin: Sequence[float] = (0.0, 0.0, 0.0),
    size: Sequence[float] = (1.0, 1.0, 1.0),
) -> Mesh:
    """Hex mesh of a box with ``nx × ny × nz`` elements."""
    for name, v in (("nx", nx), ("ny", ny), ("nz", nz)):
        check_positive(name, v)
    origin = np.asarray(origin, dtype=float)
    size = np.asarray(size, dtype=float)
    xs = origin[0] + np.linspace(0, size[0], nx + 1)
    ys = origin[1] + np.linspace(0, size[1], ny + 1)
    zs = origin[2] + np.linspace(0, size[2], nz + 1)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    nodes = np.column_stack((gx.ravel(), gy.ravel(), gz.ravel()))

    nid = np.arange((nx + 1) * (ny + 1) * (nz + 1)).reshape(
        nx + 1, ny + 1, nz + 1
    )
    c000 = nid[:-1, :-1, :-1].ravel()
    c100 = nid[1:, :-1, :-1].ravel()
    c110 = nid[1:, 1:, :-1].ravel()
    c010 = nid[:-1, 1:, :-1].ravel()
    c001 = nid[:-1, :-1, 1:].ravel()
    c101 = nid[1:, :-1, 1:].ravel()
    c111 = nid[1:, 1:, 1:].ravel()
    c011 = nid[:-1, 1:, 1:].ravel()
    # local ordering: bottom face CCW (z-), then top face above it
    elements = np.column_stack(
        (c000, c100, c110, c010, c001, c101, c111, c011)
    )
    return Mesh(nodes, elements, "hex")


def structured_quad_mesh(
    nx: int,
    ny: int,
    origin: Sequence[float] = (0.0, 0.0),
    size: Sequence[float] = (1.0, 1.0),
) -> Mesh:
    """Quad mesh of a rectangle with ``nx × ny`` elements."""
    check_positive("nx", nx)
    check_positive("ny", ny)
    origin = np.asarray(origin, dtype=float)
    size = np.asarray(size, dtype=float)
    xs = origin[0] + np.linspace(0, size[0], nx + 1)
    ys = origin[1] + np.linspace(0, size[1], ny + 1)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    nodes = np.column_stack((gx.ravel(), gy.ravel()))
    nid = np.arange((nx + 1) * (ny + 1)).reshape(nx + 1, ny + 1)
    c00 = nid[:-1, :-1].ravel()
    c10 = nid[1:, :-1].ravel()
    c11 = nid[1:, 1:].ravel()
    c01 = nid[:-1, 1:].ravel()
    elements = np.column_stack((c00, c10, c11, c01))
    return Mesh(nodes, elements, "quad")


def hex_to_tet_mesh(mesh: Mesh) -> Mesh:
    """Split every hex of ``mesh`` into 6 tets (EPIC-style tet meshes).

    Uses the corner-0→corner-6 diagonal decomposition, which is
    conforming across neighbouring hexes of the structured generators
    (every shared quad face is split along the same diagonal because
    the local orderings align), so the result has a watertight interior
    and the same boundary surface.
    """
    if mesh.elem_type != "hex":
        raise ValueError("hex_to_tet_mesh needs a hex mesh")
    # 6-tet decomposition around the 0-6 diagonal
    tets_of_hex = np.array(
        [
            [0, 1, 2, 6],
            [0, 2, 3, 6],
            [0, 3, 7, 6],
            [0, 7, 4, 6],
            [0, 4, 5, 6],
            [0, 5, 1, 6],
        ]
    )
    elements = mesh.elements[:, tets_of_hex].reshape(-1, 4)
    body = np.repeat(mesh.body_id, 6)
    return Mesh(mesh.nodes, elements, "tet", body)


def merge_meshes(meshes: Sequence[Mesh]) -> Mesh:
    """Concatenate bodies into one mesh; element ``body_id`` records the
    source mesh index. Node ids of mesh ``i`` are offset by the total
    node count of meshes ``0..i-1``."""
    if not meshes:
        raise ValueError("need at least one mesh")
    elem_type = meshes[0].elem_type
    if any(m.elem_type != elem_type for m in meshes):
        raise ValueError("all meshes must share one element type")
    node_parts, elem_parts, body_parts = [], [], []
    offset = 0
    for i, m in enumerate(meshes):
        node_parts.append(m.nodes)
        elem_parts.append(m.elements + offset)
        body_parts.append(np.full(m.num_elements, i, dtype=np.int64))
        offset += m.num_nodes
    return Mesh(
        np.concatenate(node_parts),
        np.concatenate(elem_parts),
        elem_type,
        np.concatenate(body_parts),
    )
