"""Finite-element mesh substrate.

Meshes are stored as a node coordinate array plus a single-type element
connectivity array (tri/quad in 2D, tet/hex in 3D) with per-element
body ids for multi-body contact scenes. Derived structures — boundary
surfaces, contact node sets, nodal and dual graphs — are computed here
and feed the partitioner and the contact-search pipeline.
"""

from repro.mesh.element import ELEMENT_DIM, ELEMENT_EDGES, ELEMENT_FACES
from repro.mesh.mesh import Mesh
from repro.mesh.surface import (
    boundary_faces,
    face_nodes,
    surface_nodes,
)
from repro.mesh.nodal_graph import nodal_graph
from repro.mesh.dual_graph import dual_graph
from repro.mesh.generators import (
    structured_box_mesh,
    structured_quad_mesh,
    merge_meshes,
)
from repro.mesh.io import load_mesh, save_mesh

__all__ = [
    "ELEMENT_DIM",
    "ELEMENT_EDGES",
    "ELEMENT_FACES",
    "Mesh",
    "boundary_faces",
    "face_nodes",
    "surface_nodes",
    "nodal_graph",
    "dual_graph",
    "structured_box_mesh",
    "structured_quad_mesh",
    "merge_meshes",
    "load_mesh",
    "save_mesh",
]
