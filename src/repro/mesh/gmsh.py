"""Gmsh MSH 2.2 (ASCII) import.

Lets users run the pipeline on their own meshes: the MSH2 format is
the lingua franca every mesh generator can emit. Only the element
types this library supports are imported (triangles, quads, tets,
hexes — Gmsh type codes 2, 3, 4, 5); lower-dimensional elements
(points, lines) and unsupported 3D types are skipped. The Gmsh
*physical group* tag (first element tag) becomes the body id, so
multi-body contact scenes import directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.mesh.mesh import Mesh

PathLike = Union[str, Path]

# Gmsh element type -> (our type, node count)
_GMSH_TYPES: Dict[int, Tuple[str, int]] = {
    2: ("tri", 3),
    3: ("quad", 4),
    4: ("tet", 4),
    5: ("hex", 8),
}

# node count per Gmsh type (for skipping unsupported elements)
_GMSH_NODE_COUNT: Dict[int, int] = {
    1: 2, 2: 3, 3: 4, 4: 4, 5: 8, 6: 6, 7: 5, 8: 3, 9: 6,
    10: 9, 11: 10, 15: 1,
}


def _sections(text: str) -> Dict[str, List[str]]:
    """Split an MSH file into its ``$Name``…``$EndName`` sections."""
    out: Dict[str, List[str]] = {}
    current = None
    buf: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("$End"):
            if current is None:
                raise ValueError(f"unmatched {stripped}")
            out[current] = buf
            current, buf = None, []
        elif stripped.startswith("$"):
            current = stripped[1:]
            buf = []
        elif current is not None:
            buf.append(stripped)
    if current is not None:
        raise ValueError(f"section ${current} is not closed")
    return out


def read_gmsh_mesh(path: PathLike, elem_type: str = "auto") -> Mesh:
    """Read an MSH 2.2 ASCII file.

    ``elem_type`` selects which element family to keep when the file
    mixes several (``"auto"`` keeps the most numerous supported type).
    Node ids are compacted to the nodes actually used. Raises
    :class:`ValueError` on version ≠ 2.x, binary files, or when no
    supported elements are present.
    """
    text = Path(path).read_text()
    sections = _sections(text)

    fmt = sections.get("MeshFormat")
    if not fmt:
        raise ValueError("missing $MeshFormat section")
    version, file_type = fmt[0].split()[:2]
    if not version.startswith("2"):
        raise ValueError(f"only MSH 2.x is supported, got {version}")
    if file_type != "0":
        raise ValueError("binary MSH files are not supported")

    node_lines = sections.get("Nodes")
    if not node_lines:
        raise ValueError("missing $Nodes section")
    n_nodes = int(node_lines[0])
    if len(node_lines) - 1 != n_nodes:
        raise ValueError("node count mismatch in $Nodes")
    ids = np.empty(n_nodes, dtype=np.int64)
    coords = np.empty((n_nodes, 3))
    for i, line in enumerate(node_lines[1:]):
        tok = line.split()
        ids[i] = int(tok[0])
        coords[i] = [float(t) for t in tok[1:4]]
    id_to_row = {int(g): i for i, g in enumerate(ids)}

    elem_lines = sections.get("Elements")
    if not elem_lines:
        raise ValueError("missing $Elements section")
    n_elems = int(elem_lines[0])
    by_type: Dict[str, List[List[int]]] = {}
    bodies: Dict[str, List[int]] = {}
    for line in elem_lines[1 : n_elems + 1]:
        tok = [int(t) for t in line.split()]
        etype = tok[1]
        n_tags = tok[2]
        tags = tok[3 : 3 + n_tags]
        conn = tok[3 + n_tags :]
        if etype not in _GMSH_TYPES:
            continue
        name, npe = _GMSH_TYPES[etype]
        if len(conn) != npe:
            raise ValueError(
                f"element of type {etype} has {len(conn)} nodes, "
                f"expected {npe}"
            )
        by_type.setdefault(name, []).append(
            [id_to_row[c] for c in conn]
        )
        bodies.setdefault(name, []).append(tags[0] if tags else 0)

    if not by_type:
        raise ValueError("no supported elements (tri/quad/tet/hex) found")
    if elem_type == "auto":
        elem_type = max(by_type, key=lambda t: len(by_type[t]))
    if elem_type not in by_type:
        raise ValueError(
            f"no {elem_type!r} elements in file; found "
            f"{sorted(by_type)}"
        )

    elements = np.asarray(by_type[elem_type], dtype=np.int64)
    body_raw = np.asarray(bodies[elem_type], dtype=np.int64)
    # densify body ids
    _, body_id = np.unique(body_raw, return_inverse=True)

    # 2D meshes: drop the z column when it is constant
    dim = 2 if elem_type in ("tri", "quad") else 3
    nodes = coords[:, :dim]

    # compact to used nodes
    used = np.unique(elements)
    remap = np.full(n_nodes, -1, dtype=np.int64)
    remap[used] = np.arange(len(used))
    return Mesh(nodes[used], remap[elements], elem_type, body_id)


def write_gmsh_mesh(path: PathLike, mesh: Mesh) -> None:
    """Write ``mesh`` as MSH 2.2 ASCII (round-trip counterpart)."""
    rev = {name: code for code, (name, _) in _GMSH_TYPES.items()}
    etype = rev[mesh.elem_type]
    lines = ["$MeshFormat", "2.2 0 8", "$EndMeshFormat"]
    lines += ["$Nodes", str(mesh.num_nodes)]
    for i, p in enumerate(mesh.nodes):
        xyz = list(p) + [0.0] * (3 - len(p))
        lines.append(
            f"{i + 1} {xyz[0]:.17g} {xyz[1]:.17g} {xyz[2]:.17g}"
        )
    lines += ["$EndNodes", "$Elements", str(mesh.num_elements)]
    for e, (conn, body) in enumerate(zip(mesh.elements, mesh.body_id)):
        conn_str = " ".join(str(int(c) + 1) for c in conn)
        lines.append(f"{e + 1} {etype} 2 {int(body)} {int(body)} {conn_str}")
    lines += ["$EndElements"]
    Path(path).write_text("\n".join(lines) + "\n")
