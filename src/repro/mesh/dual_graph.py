"""Dual graph of a mesh (paper §2).

Vertices are elements; edges connect elements sharing an edge (2D) or
face (3D). Not used by the headline MCML+DT pipeline (which partitions
the nodal graph) but part of the substrate the paper assumes, and used
in tests to cross-check surface extraction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.csr import CSRGraph
from repro.mesh.mesh import Mesh
from repro.mesh.surface import interior_face_pairs


def dual_graph(mesh: Mesh, vwgts: Optional[np.ndarray] = None) -> CSRGraph:
    """Build the dual (element-adjacency) graph of ``mesh``."""
    pairs = interior_face_pairs(mesh)
    return from_edge_list(mesh.num_elements, pairs, vwgts=vwgts)
