"""Element-type reference tables.

Local node orderings follow the usual FE conventions:

* ``tri``  — counter-clockwise corners 0-1-2.
* ``quad`` — counter-clockwise corners 0-1-2-3.
* ``tet``  — corners 0-1-2 base, 3 apex.
* ``hex``  — corners 0-3 bottom face CCW, 4-7 top face CCW above them.

``ELEMENT_FACES`` lists the boundary entities used for surface
extraction and dual-graph construction (edges in 2D, faces in 3D);
``ELEMENT_EDGES`` lists the 1D edges used for nodal-graph
construction.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

ELEMENT_DIM: Dict[str, int] = {
    "tri": 2,
    "quad": 2,
    "tet": 3,
    "hex": 3,
}

ELEMENT_NODES: Dict[str, int] = {
    "tri": 3,
    "quad": 4,
    "tet": 4,
    "hex": 8,
}

# boundary entities (what two adjacent elements share): edges in 2D,
# faces in 3D
ELEMENT_FACES: Dict[str, np.ndarray] = {
    "tri": np.array([[0, 1], [1, 2], [2, 0]]),
    "quad": np.array([[0, 1], [1, 2], [2, 3], [3, 0]]),
    "tet": np.array([[0, 2, 1], [0, 1, 3], [1, 2, 3], [0, 3, 2]]),
    "hex": np.array(
        [
            [0, 3, 2, 1],  # bottom
            [4, 5, 6, 7],  # top
            [0, 1, 5, 4],  # front
            [1, 2, 6, 5],  # right
            [2, 3, 7, 6],  # back
            [3, 0, 4, 7],  # left
        ]
    ),
}

# 1D edges (what the nodal graph connects)
ELEMENT_EDGES: Dict[str, np.ndarray] = {
    "tri": np.array([[0, 1], [1, 2], [2, 0]]),
    "quad": np.array([[0, 1], [1, 2], [2, 3], [3, 0]]),
    "tet": np.array([[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]]),
    "hex": np.array(
        [
            [0, 1], [1, 2], [2, 3], [3, 0],  # bottom ring
            [4, 5], [5, 6], [6, 7], [7, 4],  # top ring
            [0, 4], [1, 5], [2, 6], [3, 7],  # verticals
        ]
    ),
}


def check_element_type(elem_type: str) -> str:
    """Validate and return ``elem_type``."""
    if elem_type not in ELEMENT_DIM:
        raise ValueError(
            f"unknown element type {elem_type!r}; "
            f"expected one of {sorted(ELEMENT_DIM)}"
        )
    return elem_type
