"""The ``Mesh`` container.

A mesh is immutable-by-convention: simulation steps produce *new*
``Mesh`` objects (sharing node arrays where possible) rather than
mutating in place, which keeps snapshot sequences trivially safe to
hold simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mesh.element import (
    ELEMENT_DIM,
    ELEMENT_NODES,
    check_element_type,
)
from repro.utils.validation import check_array


@dataclass
class Mesh:
    """Single-element-type finite element mesh.

    Attributes
    ----------
    nodes:
        ``float64[n, d]`` node coordinates.
    elements:
        ``int64[m, npe]`` connectivity (node ids per element).
    elem_type:
        One of ``tri``, ``quad``, ``tet``, ``hex``.
    body_id:
        ``int64[m]`` — which physical body each element belongs to
        (projectile = 0, plates = 1, 2, ... in the synthetic scenes);
        defaults to all zeros.
    """

    nodes: np.ndarray
    elements: np.ndarray
    elem_type: str
    body_id: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        check_element_type(self.elem_type)
        self.nodes = np.ascontiguousarray(self.nodes, dtype=float)
        self.elements = np.ascontiguousarray(self.elements, dtype=np.int64)
        check_array("nodes", self.nodes, ndim=2)
        npe = ELEMENT_NODES[self.elem_type]
        check_array("elements", self.elements, ndim=2, shape=(None, npe))
        d = ELEMENT_DIM[self.elem_type]
        if self.nodes.shape[1] != d:
            raise ValueError(
                f"{self.elem_type} mesh needs {d}-D nodes, got "
                f"{self.nodes.shape[1]}-D"
            )
        if self.elements.size and (
            self.elements.min() < 0
            or self.elements.max() >= len(self.nodes)
        ):
            raise ValueError("element connectivity references missing nodes")
        if self.body_id is None:
            self.body_id = np.zeros(len(self.elements), dtype=np.int64)
        else:
            self.body_id = np.ascontiguousarray(self.body_id, dtype=np.int64)
            if len(self.body_id) != len(self.elements):
                raise ValueError("body_id length must match element count")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (including any orphaned by erosion)."""
        return len(self.nodes)

    @property
    def num_elements(self) -> int:
        """Number of elements."""
        return len(self.elements)

    @property
    def dim(self) -> int:
        """Spatial dimension (2 or 3)."""
        return self.nodes.shape[1]

    def centroids(self) -> np.ndarray:
        """Element centroids, ``float64[m, d]``."""
        return self.nodes[self.elements].mean(axis=1)

    def node_body_id(self) -> np.ndarray:
        """Body id per node (-1 for orphan nodes).

        A node used by several bodies (should not happen in contact
        scenes, where bodies never share nodes) gets the largest id.
        """
        out = np.full(self.num_nodes, -1, dtype=np.int64)
        flat = self.elements.ravel()
        np.maximum.at(out, flat, np.repeat(self.body_id, self.elements.shape[1]))
        return out

    def used_nodes(self) -> np.ndarray:
        """Sorted ids of nodes referenced by at least one element."""
        return np.unique(self.elements)

    def with_elements(
        self, keep: np.ndarray, drop_orphans: bool = False
    ) -> "Mesh":
        """Mesh with only elements ``keep`` (bool mask or index array).

        With ``drop_orphans=False`` (the default, used by the erosion
        simulator) node ids are preserved so snapshot-to-snapshot node
        identity holds. ``drop_orphans=True`` compacts the node array.
        """
        keep = np.asarray(keep)
        if keep.dtype == bool:
            keep = np.nonzero(keep)[0]
        elements = self.elements[keep]
        body = self.body_id[keep]
        if not drop_orphans:
            return Mesh(self.nodes, elements, self.elem_type, body)
        used = np.unique(elements)
        remap = np.full(self.num_nodes, -1, dtype=np.int64)
        remap[used] = np.arange(len(used))
        return Mesh(self.nodes[used], remap[elements], self.elem_type, body)

    def with_nodes(self, nodes: np.ndarray) -> "Mesh":
        """Same topology, new coordinates (a deformation step)."""
        nodes = np.asarray(nodes, dtype=float)
        if nodes.shape != self.nodes.shape:
            raise ValueError(
                f"nodes shape {nodes.shape} must match {self.nodes.shape}"
            )
        return Mesh(nodes, self.elements, self.elem_type, self.body_id)

    def translated(self, offset: np.ndarray) -> "Mesh":
        """Rigid translation of all nodes."""
        return self.with_nodes(self.nodes + np.asarray(offset, dtype=float))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Mesh({self.elem_type}, nodes={self.num_nodes}, "
            f"elements={self.num_elements})"
        )
