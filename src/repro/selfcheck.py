"""Installation self-check.

``repro-contact selfcheck`` (or ``python -m repro.selfcheck``) runs a
miniature end-to-end pipeline — simulate, partition, reshape, induce
descriptors, search in parallel, cross-check against the serial
reference, resolve locally — and reports each stage. A passing
self-check means the installation can reproduce the paper's pipeline;
it takes a few seconds.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Tuple

import numpy as np


def run_selfcheck(verbose: bool = True) -> bool:
    """Run all stages; returns True when everything passes."""
    checks: List[Tuple[str, Callable[[dict], None]]] = []
    state: dict = {}

    def stage(name: str):
        def wrap(fn):
            checks.append((name, fn))
            return fn
        return wrap

    @stage("static invariants (repro-lint) clean")
    def _lint(s):
        from pathlib import Path

        import repro
        from repro.analysis.engine import LintEngine

        diags = LintEngine().lint_paths([Path(repro.__file__).parent])
        if diags:
            preview = "; ".join(d.render() for d in diags[:3])
            raise RuntimeError(
                f"repro-lint found {len(diags)} issue(s): {preview}"
            )

    @stage("simulate impact scene")
    def _sim(s):
        from repro.sim.projectile import ImpactConfig
        from repro.sim.sequence import simulate_impact

        seq = simulate_impact(ImpactConfig(n_steps=6, refine=0.6))
        if seq[0].num_contact_nodes <= 0:
            raise RuntimeError("simulated scene has no contact nodes")
        s["seq"] = seq

    @stage("multi-constraint partition + reshape")
    def _fit(s):
        from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
        from repro.core.weights import build_contact_graph
        from repro.graph.metrics import load_imbalance
        from repro.partition.config import PartitionOptions

        snap = s["seq"][0]
        pt = MCMLDTPartitioner(
            4, MCMLDTParams(pad=0.2, options=PartitionOptions(seed=0))
        )
        pt.fit(snap)
        g = build_contact_graph(snap)
        imb = load_imbalance(g, pt.part, 4)
        if imb.max() >= 1.6:
            raise RuntimeError(f"partition imbalance too high: {imb}")
        s["pt"] = pt

    @stage("descriptor tree classifies exactly")
    def _tree(s):
        from repro.dtree.query import predict_partition

        snap = s["seq"][0]
        pt = s["pt"]
        tree, _ = pt.build_descriptors(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        if not np.array_equal(
            predict_partition(tree, coords),
            pt.part[snap.contact_nodes],
        ):
            raise RuntimeError(
                "descriptor tree misclassifies contact nodes"
            )
        s["tree"] = tree

    @stage("parallel search == serial search")
    def _search(s):
        from repro.core.contact_search import (
            parallel_contact_search,
            serial_candidate_pairs,
        )
        from repro.geometry.bbox import element_bboxes

        snap = s["seq"][5]
        pt = s["pt"]
        plan = pt.search_plan(snap)
        boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
        boxes[:, 0] -= 0.2
        boxes[:, 1] += 0.2
        coords = snap.mesh.nodes[snap.contact_nodes]
        serial = serial_candidate_pairs(
            boxes, snap.contact_faces, coords, snap.contact_nodes
        )
        parallel, _ = parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, pt.part[snap.contact_nodes], 4,
        )
        if parallel != serial:
            raise RuntimeError(
                f"search mismatch: {len(parallel)} parallel vs "
                f"{len(serial)} serial candidate pairs"
            )
        s["pairs"] = serial
        s["snap5"] = snap

    @stage("local search resolves gaps")
    def _local(s):
        from repro.core.local_search import resolve_candidates

        snap = s["snap5"]
        res = resolve_candidates(
            snap.mesh.nodes, snap.contact_faces, sorted(s["pairs"])
        )
        if not np.isfinite(res.gap).all():
            raise RuntimeError("local search produced non-finite gaps")

    @stage("distributed protocols agree with serial")
    def _parallel(s):
        from repro.dtree.parallel import parallel_induce_pure_tree
        from repro.dtree.query import predict_partition

        snap = s["seq"][0]
        pt = s["pt"]
        coords = snap.mesh.nodes[snap.contact_nodes]
        labels = pt.part[snap.contact_nodes]
        tree, _ = parallel_induce_pure_tree(
            coords, labels, 4, owner_rank=labels, n_ranks=4
        )
        if not np.array_equal(predict_partition(tree, coords), labels):
            raise RuntimeError(
                "parallel-induced tree disagrees with serial labels"
            )

    all_ok = True
    for name, fn in checks:
        t0 = time.time()
        try:
            fn(state)
            status = "ok"
        except Exception as exc:  # pragma: no cover - failure path
            status = f"FAILED: {exc}"
            all_ok = False
        if verbose:
            print(f"  [{status:>6s}] {name} ({time.time() - t0:.1f}s)"
                  if status == "ok"
                  else f"  [FAIL ] {name}: {status}")
        if not all_ok:
            break
    if verbose:
        print(
            "self-check passed — the installation reproduces the "
            "paper's pipeline" if all_ok else "self-check FAILED"
        )
    return all_ok


def main() -> int:
    """CLI entry point."""
    print("repro self-check (miniature end-to-end pipeline):")
    return 0 if run_selfcheck() else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
