"""Weighted-graph substrate used by the partitioner.

The central type is :class:`~repro.graph.csr.CSRGraph`, a compressed
sparse row adjacency structure with a *matrix* of vertex weights (one
column per balance constraint) and scalar edge weights — the same data
model METIS uses for multi-constraint partitioning.
"""

from repro.graph.csr import CSRGraph
from repro.graph.build import (
    from_edge_list,
    grid_graph,
    random_geometric_graph,
    to_networkx,
)
from repro.graph.ops import (
    connected_components,
    contract,
    induced_subgraph,
    largest_component,
)
from repro.graph.digest import (
    canonical_array,
    digest_arrays,
    digest_graph,
)
from repro.graph.metrics import (
    edge_cut,
    load_imbalance,
    max_load_imbalance,
    partition_weights,
    total_comm_volume,
)

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "grid_graph",
    "random_geometric_graph",
    "to_networkx",
    "connected_components",
    "contract",
    "induced_subgraph",
    "largest_component",
    "canonical_array",
    "digest_arrays",
    "digest_graph",
    "edge_cut",
    "load_imbalance",
    "max_load_imbalance",
    "partition_weights",
    "total_comm_volume",
]
