"""METIS graph-file interoperability.

Reads and writes the METIS ``.graph`` format (Karypis & Kumar, METIS
4.0 manual) so graphs can move between this library and the real
METIS/ParMETIS tools — including multi-constraint vertex weights and
edge weights, the two features the paper's §4.2 model needs:

    <n> <m> [<fmt> [<ncon>]]
    [vertex line: [size] [w_1 .. w_ncon] v1 [e1] v2 [e2] ...]

``fmt`` is a three-digit flag string: 1xx = vertex sizes (unsupported
here), x1x = vertex weights, xx1 = edge weights. Vertex ids in the
file are 1-based.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.graph.csr import CSRGraph

PathLike = Union[str, Path]


def write_metis_graph(path: PathLike, graph: CSRGraph) -> None:
    """Write ``graph`` in METIS ``.graph`` format.

    Vertex weights are written when any differs from 1 (or when there
    is more than one constraint); edge weights when any differs from 1.
    """
    n = graph.num_vertices
    m = graph.num_edges
    has_vw = graph.ncon > 1 or (graph.vwgts != 1).any()
    has_ew = (graph.adjwgt != 1).any()
    fmt = f"0{int(has_vw)}{int(has_ew)}"

    lines: List[str] = []
    header = f"{n} {m}"
    if has_vw or has_ew:
        header += f" {fmt}"
        if has_vw and graph.ncon > 1:
            header += f" {graph.ncon}"
    lines.append(header)

    for v in range(n):
        parts: List[str] = []
        if has_vw:
            parts.extend(str(int(w)) for w in graph.vwgts[v])
        nbrs = graph.neighbors(v)
        wts = graph.edge_weights_of(v)
        for u, w in zip(nbrs, wts):
            parts.append(str(int(u) + 1))
            if has_ew:
                parts.append(str(int(w)))
        lines.append(" ".join(parts))
    Path(path).write_text("\n".join(lines) + "\n")


def read_metis_graph(path: PathLike) -> CSRGraph:
    """Read a METIS ``.graph`` file into a :class:`CSRGraph`.

    Supports the ``fmt`` vertex-weight and edge-weight flags; the
    vertex-sizes flag (``1xx``) is rejected. Comment lines (``%``) are
    skipped. The adjacency is validated for symmetry on load.
    """
    raw = Path(path).read_text().splitlines()
    lines = [l for l in raw if l.strip() and not l.lstrip().startswith("%")]
    if not lines:
        raise ValueError("empty graph file")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError("header must contain at least <n> <m>")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "000"
    fmt = fmt.zfill(3)
    if fmt[0] == "1":
        raise ValueError("vertex sizes (fmt=1xx) are not supported")
    has_vw = fmt[1] == "1"
    has_ew = fmt[2] == "1"
    ncon = int(header[3]) if (has_vw and len(header) > 3) else (
        1 if has_vw else 1
    )
    if len(lines) - 1 != n:
        raise ValueError(
            f"expected {n} vertex lines, found {len(lines) - 1}"
        )

    vwgts = np.ones((n, ncon), dtype=np.int64)
    xadj = [0]
    adjncy: List[int] = []
    adjwgt: List[int] = []
    for v, line in enumerate(lines[1:]):
        tokens = [int(t) for t in line.split()]
        pos = 0
        if has_vw:
            vwgts[v] = tokens[:ncon]
            pos = ncon
        rest = tokens[pos:]
        step = 2 if has_ew else 1
        if len(rest) % step:
            raise ValueError(f"vertex {v + 1}: ragged adjacency line")
        for i in range(0, len(rest), step):
            u = rest[i] - 1
            if not 0 <= u < n:
                raise ValueError(
                    f"vertex {v + 1}: neighbour {rest[i]} out of range"
                )
            adjncy.append(u)
            adjwgt.append(rest[i + 1] if has_ew else 1)
        xadj.append(len(adjncy))

    if len(adjncy) != 2 * m:
        raise ValueError(
            f"header declares {m} edges but {len(adjncy)} half-edges found"
        )
    graph = CSRGraph(
        np.ascontiguousarray(xadj),
        np.ascontiguousarray(adjncy),
        np.ascontiguousarray(adjwgt),
        vwgts,
    )
    graph.validate()
    return graph


def write_metis_partition(path: PathLike, part: np.ndarray) -> None:
    """Write a partition vector in METIS' one-label-per-line format."""
    part = np.asarray(part, dtype=np.int64)
    Path(path).write_text(
        "\n".join(str(int(p)) for p in part) + "\n"
    )


def read_metis_partition(path: PathLike) -> np.ndarray:
    """Read a METIS partition file."""
    return np.array(
        [int(l) for l in Path(path).read_text().split()], dtype=np.int64
    )
