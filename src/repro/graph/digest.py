"""Canonical content digests for graphs and array bundles.

The service cache (``repro.service.cache``), the checkpoint integrity
check, and any future content-addressed store need one answer to "are
these two graphs *the same bytes*?" that does not depend on how the
arrays happen to be stored in memory.  :func:`digest_arrays` hashes a
named bundle of arrays into a SHA-256 hex digest over a canonical
encoding:

* arrays are visited in sorted-name order (dict iteration order is
  irrelevant),
* every signed-integer array is encoded as little-endian ``int64``,
  unsigned and boolean arrays as little-endian ``uint64``, and float
  arrays as little-endian ``float64`` — so ``int32`` input hashes
  identically to the same values in ``int64``, and big-endian
  platforms produce the digest of their little-endian twins,
* the element bytes are taken from a C-contiguous copy (strides and
  views never matter),
* each array contributes a header (name, canonical dtype, shape) so
  reshapes and name swaps change the digest even when the raw bytes
  do not.

The digest is therefore *value*-identity: two
:class:`~repro.graph.csr.CSRGraph` objects digest equal iff their
``xadj``/``adjncy``/``adjwgt``/``vwgts`` hold the same numbers in the
same order.  Permuting vertex ids changes the adjacency arrays and so
changes the digest — that is deliberate (a relabelled graph is a
different partitioning input).

Floats are hashed by their IEEE-754 bit patterns: ``-0.0`` and
``0.0`` digest differently, as do distinct NaN payloads.  Callers who
want value-folding must canonicalise before hashing.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "DIGEST_SCHEME",
    "canonical_array",
    "digest_arrays",
    "digest_graph",
]

#: versioned scheme tag mixed into every digest; bump when the
#: canonical encoding changes so old digests can never false-match
DIGEST_SCHEME = "repro.digest/1"

#: canonical dtypes per numpy kind (little-endian, fixed width)
_CANONICAL_DTYPES = {
    "i": "<i8",
    "u": "<u8",
    "f": "<f8",
    "b": "<u8",
}


def canonical_array(values: Any) -> np.ndarray:
    """Normalise ``values`` to the canonical dtype/layout hashed by
    :func:`digest_arrays`.

    Signed integers widen to little-endian ``int64``, unsigned and
    boolean kinds to little-endian ``uint64``, floats to little-endian
    ``float64``; the result is C-contiguous.  Raises :class:`TypeError`
    for kinds with no canonical form (objects, strings, complex).
    """
    arr = np.asarray(values)
    canonical = _CANONICAL_DTYPES.get(arr.dtype.kind)
    if canonical is None:
        raise TypeError(
            f"cannot digest array of dtype {arr.dtype!r}; expected "
            f"integer, float, or bool data"
        )
    return np.ascontiguousarray(arr.astype(canonical, copy=False))


def digest_arrays(
    arrays: Mapping[str, Any],
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """SHA-256 hex digest of a named array bundle (canonical encoding).

    ``extra`` is an optional mapping of JSON-serialisable scalars mixed
    into the digest (sorted keys, canonical separators) — used to bind
    configuration (partitioner name, k, options) to the array content.
    """
    hasher = hashlib.sha256()
    hasher.update(DIGEST_SCHEME.encode("utf-8"))
    if extra is not None:
        header = json.dumps(
            dict(extra), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )
        hasher.update(b"\x00extra\x00")
        hasher.update(header.encode("utf-8"))
    for name in sorted(arrays):
        arr = canonical_array(arrays[name])
        meta = f"\x00{name}\x00{arr.dtype.str}\x00{arr.shape!r}\x00"
        hasher.update(meta.encode("utf-8"))
        hasher.update(arr.tobytes(order="C"))
    return hasher.hexdigest()


def digest_graph(
    graph: CSRGraph,
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """Canonical digest of a :class:`~repro.graph.csr.CSRGraph`.

    Hashes the adjacency structure, the edge weights, and the full
    multi-constraint vertex-weight matrix; ``extra`` scalars (e.g. the
    partitioner configuration) bind into the same digest.
    """
    return digest_arrays(
        {
            "xadj": graph.xadj,
            "adjncy": graph.adjncy,
            "adjwgt": graph.adjwgt,
            "vwgts": graph.vwgts,
        },
        extra=extra,
    )


def digest_items(items: Iterable[Tuple[str, Any]]) -> str:
    """Digest an iterable of ``(name, array)`` pairs (convenience for
    call sites that build the bundle incrementally)."""
    return digest_arrays(dict(items))
