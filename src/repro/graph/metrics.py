"""Partition-quality metrics (paper §2 definitions).

* ``edge_cut`` — sum of weights of edges whose endpoints differ.
* ``total_comm_volume`` — Hendrickson's communication-volume metric:
  for each vertex, the number of *distinct* remote partitions among its
  neighbours, summed over vertices. This is the paper's **FEComm**.
* ``load_imbalance`` — per-constraint max partition weight over average
  (``LoadImbalance(P, j)`` in §2).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def partition_weights(graph: CSRGraph, part: np.ndarray, k: int) -> np.ndarray:
    """Per-partition, per-constraint weight sums, shape ``(k, ncon)``."""
    part = np.asarray(part, dtype=np.int64)
    out = np.zeros((k, graph.ncon), dtype=np.int64)
    np.add.at(out, part, graph.vwgts)
    return out


def edge_cut(graph: CSRGraph, part: np.ndarray) -> int:
    """Total weight of cut edges, each undirected edge counted once."""
    part = np.asarray(part, dtype=np.int64)
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees())
    cut = part[src] != part[graph.adjncy]
    return int(graph.adjwgt[cut].sum() // 2)


def total_comm_volume(graph: CSRGraph, part: np.ndarray) -> int:
    """Total communication volume of a partitioning (FEComm).

    For every vertex ``v`` owned by partition ``p``, count the number
    of distinct partitions ``q != p`` that own at least one neighbour
    of ``v``; sum over vertices. Equivalently: the number of (vertex,
    remote-partition) interface pairs — each such pair is one value
    that must be sent during a halo exchange.
    """
    part = np.asarray(part, dtype=np.int64)
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    nbr_part = part[graph.adjncy]
    remote = nbr_part != part[src]
    pairs = np.column_stack((src[remote], nbr_part[remote]))
    if len(pairs) == 0:
        return 0
    # distinct (vertex, remote partition) pairs
    key = pairs[:, 0] * np.int64(part.max() + 1) + pairs[:, 1]
    return int(len(np.unique(key)))


def load_imbalance(
    graph: CSRGraph, part: np.ndarray, k: int
) -> np.ndarray:
    """Per-constraint load imbalance, shape ``(ncon,)``.

    ``LoadImbalance(P, j) = max_i w_j(V_i) / (w_j(V)/k)``; 1.0 is
    perfect balance. Constraints with zero total weight report 1.0.
    """
    weights = partition_weights(graph, part, k).astype(float)
    totals = graph.total_vwgt.astype(float)
    out = np.ones(graph.ncon, dtype=np.float64)
    for j in range(graph.ncon):
        if totals[j] > 0:
            out[j] = weights[:, j].max() / (totals[j] / k)
    return out


def max_load_imbalance(graph: CSRGraph, part: np.ndarray, k: int) -> float:
    """Worst imbalance across all constraints (scalar convenience)."""
    return float(load_imbalance(graph, part, k).max())


def boundary_vertices(graph: CSRGraph, part: np.ndarray) -> np.ndarray:
    """Vertices with at least one neighbour in another partition."""
    part = np.asarray(part, dtype=np.int64)
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees())
    cut = part[src] != part[graph.adjncy]
    return np.unique(src[cut])
