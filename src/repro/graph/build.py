"""Graph construction: from edge lists, synthetic generators, adapters.

All builders are fully vectorised — edges are deduplicated and
symmetrised with one ``lexsort`` rather than per-edge dict operations,
which keeps construction of million-edge nodal graphs in the
sub-second range.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_array, check_positive


def from_edge_list(
    n: int,
    edges: np.ndarray,
    weights: Optional[np.ndarray] = None,
    vwgts: Optional[np.ndarray] = None,
    combine: str = "sum",
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an ``(m, 2)`` array of undirected edges.

    Self-loops are dropped; duplicate edges are merged with ``combine``
    (``"sum"``, ``"max"``, or ``"first"``) applied to their weights.
    ``vwgts`` defaults to unit single-constraint weights.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    check_array("edges", edges, ndim=2, shape=(None, 2))
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoints out of range")
    if weights is None:
        weights = np.ones(len(edges), dtype=np.int64)
    else:
        weights = np.asarray(weights, dtype=np.int64)
        if len(weights) != len(edges):
            raise ValueError("weights length must match edges")

    # drop self loops
    keep = edges[:, 0] != edges[:, 1]
    edges, weights = edges[keep], weights[keep]

    # canonicalise (u < v), dedupe, merge weights
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    key = lo * np.int64(n) + hi
    order = np.argsort(key, kind="stable")
    key, lo, hi, weights = key[order], lo[order], hi[order], weights[order]
    uniq_key, start = np.unique(key, return_index=True)
    if combine == "sum":
        merged_w = np.add.reduceat(weights, start) if len(weights) else weights
    elif combine == "max":
        merged_w = (
            np.maximum.reduceat(weights, start) if len(weights) else weights
        )
    elif combine == "first":
        merged_w = weights[start]
    else:
        raise ValueError(f"unknown combine mode {combine!r}")
    lo, hi = lo[start], hi[start]

    # symmetrise and pack into CSR
    src = np.concatenate((lo, hi))
    dst = np.concatenate((hi, lo))
    wgt = np.concatenate((merged_w, merged_w))
    order = np.argsort(src, kind="stable")
    src, dst, wgt = src[order], dst[order], wgt[order]
    xadj = np.zeros(n + 1, dtype=np.int64)
    np.add.at(xadj, src + 1, 1)
    xadj = np.cumsum(xadj)

    if vwgts is None:
        vwgts = np.ones((n, 1), dtype=np.int64)
    return CSRGraph(xadj, dst, wgt, vwgts)


def grid_graph(
    nx: int, ny: int, nz: int = 1, vwgts: Optional[np.ndarray] = None
) -> CSRGraph:
    """Structured ``nx × ny × nz`` grid graph (6-point stencil).

    The workhorse synthetic input for partitioner tests: its optimal
    bisections are known (straight cuts), so cut quality is easy to
    bound.
    """
    check_positive("nx", nx)
    check_positive("ny", ny)
    check_positive("nz", nz)
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    pairs = []
    if nx > 1:
        pairs.append(
            np.column_stack((idx[:-1].ravel(), idx[1:].ravel()))
        )
    if ny > 1:
        pairs.append(
            np.column_stack((idx[:, :-1].ravel(), idx[:, 1:].ravel()))
        )
    if nz > 1:
        pairs.append(
            np.column_stack((idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()))
        )
    edges = (
        np.concatenate(pairs)
        if pairs
        else np.empty((0, 2), dtype=np.int64)
    )
    return from_edge_list(nx * ny * nz, edges, vwgts=vwgts)


def grid_coords(nx: int, ny: int, nz: int = 1) -> np.ndarray:
    """Coordinates matching :func:`grid_graph` vertex numbering."""
    xs, ys, zs = np.meshgrid(
        np.arange(nx, dtype=float),
        np.arange(ny, dtype=float),
        np.arange(nz, dtype=float),
        indexing="ij",
    )
    pts = np.column_stack((xs.ravel(), ys.ravel(), zs.ravel()))
    return pts[:, :2] if nz == 1 else pts


def random_geometric_graph(
    n: int,
    radius: float,
    dim: int = 2,
    seed: SeedLike = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """Random geometric graph in the unit cube; returns ``(graph, coords)``.

    Vertices are uniform points; edges join pairs within ``radius``.
    Used to exercise the geometry-coupled code paths (RCB, decision
    trees) on irregular inputs. Pair search uses a uniform grid binning
    so construction is near-linear for small radii.
    """
    check_positive("n", n)
    check_positive("radius", radius)
    rng = as_rng(seed)
    pts = rng.random((n, dim))
    cell = max(radius, 1e-9)
    keys = np.floor(pts / cell).astype(np.int64)
    # map cell tuples to ids
    mult = np.array(
        [int(np.ceil(1.0 / cell)) + 2] * dim, dtype=np.int64
    )
    cell_id = np.zeros(n, dtype=np.int64)
    for d in range(dim):
        cell_id = cell_id * mult[d] + keys[:, d]
    order = np.argsort(cell_id, kind="stable")
    edges = []
    # candidate pairs: same or adjacent cells; brute force within buckets
    from collections import defaultdict

    buckets = defaultdict(list)
    for i in range(n):
        buckets[tuple(keys[i])].append(i)
    offsets = np.array(
        np.meshgrid(*([[-1, 0, 1]] * dim), indexing="ij")
    ).reshape(dim, -1).T
    r2 = radius * radius
    for ck, members in buckets.items():
        mem = np.asarray(members)
        for off in offsets:
            nk = tuple(np.asarray(ck) + off)
            if nk not in buckets:
                continue
            other = np.asarray(buckets[nk])
            d2 = ((pts[mem, None, :] - pts[None, other, :]) ** 2).sum(-1)
            ii, jj = np.nonzero(d2 <= r2)
            for a, b in zip(mem[ii], other[jj]):
                if a < b:
                    edges.append((a, b))
    edges = (
        np.asarray(edges, dtype=np.int64)
        if edges
        else np.empty((0, 2), dtype=np.int64)
    )
    return from_edge_list(n, edges), pts


def to_networkx(graph: CSRGraph) -> "Any":
    """Convert to a :mod:`networkx` graph (testing/visualisation only).

    Typed ``Any`` because networkx is an optional test dependency.
    """
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for u, v, w in graph.iter_edges():
        g.add_edge(u, v, weight=w)
    return g
