"""Compressed-sparse-row graph with multi-constraint vertex weights.

This is the METIS data model: ``xadj``/``adjncy`` adjacency arrays with
both directions of every undirected edge stored, integer edge weights
``adjwgt``, and an ``(n, ncon)`` matrix of vertex weights where each
column is one balance constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np

from repro.utils.validation import check_array


@dataclass
class CSRGraph:
    """Undirected weighted graph in CSR form.

    Attributes
    ----------
    xadj:
        ``int64[n+1]`` — adjacency offsets; neighbours of vertex ``v``
        are ``adjncy[xadj[v]:xadj[v+1]]``.
    adjncy:
        ``int64[2m]`` — neighbour ids; every undirected edge appears in
        both endpoints' lists.
    adjwgt:
        ``int64[2m]`` — edge weights, symmetric across the two copies.
    vwgts:
        ``int64[n, ncon]`` — vertex weight matrix; column ``j`` is the
        ``j``-th balance constraint.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgts: np.ndarray

    def __post_init__(self) -> None:
        self.xadj = np.ascontiguousarray(self.xadj, dtype=np.int64)
        self.adjncy = np.ascontiguousarray(self.adjncy, dtype=np.int64)
        self.adjwgt = np.ascontiguousarray(self.adjwgt, dtype=np.int64)
        vw = np.asarray(self.vwgts)
        if vw.ndim == 1:
            vw = vw[:, None]
        self.vwgts = np.ascontiguousarray(vw, dtype=np.int64)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self.xadj) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (each stored twice)."""
        return len(self.adjncy) // 2

    @property
    def ncon(self) -> int:
        """Number of balance constraints (columns of ``vwgts``)."""
        return self.vwgts.shape[1]

    @property
    def total_vwgt(self) -> np.ndarray:
        """Per-constraint total vertex weight, shape ``(ncon,)``."""
        return self.vwgts.sum(axis=0)

    def degree(self, v: int) -> int:
        """Number of neighbours of vertex ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees."""
        return np.diff(self.xadj)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of ``v`` (a CSR view, do not mutate)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Weights of the edges incident to ``v``, aligned with
        :meth:`neighbors`."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def iter_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u < v``.

        Deliberately lazy (debug/export helper); hot paths must use the
        vectorised :meth:`edge_array` instead.
        """
        for u in range(self.num_vertices):
            # lazy by design, not a hot path
            for idx in range(self.xadj[u], self.xadj[u + 1]):  # repro-lint: disable=LOOP001
                v = self.adjncy[idx]
                if u < v:
                    yield u, int(v), int(self.adjwgt[idx])

    def edge_array(self) -> np.ndarray:
        """All undirected edges once, as an ``(m, 3)`` array of
        ``(u, v, w)`` rows with ``u < v``. Vectorised counterpart of
        :meth:`iter_edges`."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())
        mask = src < self.adjncy
        return np.column_stack(
            (src[mask], self.adjncy[mask], self.adjwgt[mask])
        )

    # ------------------------------------------------------------------
    # consistency
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on breakage.

        Verifies monotone offsets, in-range neighbour ids, absence of
        self-loops, symmetry of the adjacency structure, and matching
        ``vwgts`` length. Intended for tests and debugging (O(m log m)).
        """
        n = self.num_vertices
        check_array("xadj", self.xadj, ndim=1)
        if n < 0 or self.xadj[0] != 0:
            raise ValueError("xadj must start at 0")
        if np.any(np.diff(self.xadj) < 0):
            raise ValueError("xadj must be non-decreasing")
        if self.xadj[-1] != len(self.adjncy):
            raise ValueError("xadj[-1] must equal len(adjncy)")
        if len(self.adjwgt) != len(self.adjncy):
            raise ValueError("adjwgt and adjncy lengths differ")
        if self.vwgts.shape[0] != n:
            raise ValueError(
                f"vwgts has {self.vwgts.shape[0]} rows for {n} vertices"
            )
        if len(self.adjncy):
            if self.adjncy.min() < 0 or self.adjncy.max() >= n:
                raise ValueError("adjncy contains out-of-range vertex ids")
        src = np.repeat(np.arange(n, dtype=np.int64), self.degrees())
        if np.any(src == self.adjncy):
            raise ValueError("graph contains self-loops")
        # symmetry: the multiset of (u,v,w) equals the multiset of (v,u,w)
        fwd = np.lexsort((self.adjwgt, self.adjncy, src))
        rev = np.lexsort((self.adjwgt, src, self.adjncy))
        if not (
            np.array_equal(src[fwd], self.adjncy[rev])
            and np.array_equal(self.adjncy[fwd], src[rev])
            and np.array_equal(self.adjwgt[fwd], self.adjwgt[rev])
        ):
            raise ValueError("adjacency structure is not symmetric")

    # ------------------------------------------------------------------
    # conversions / misc
    # ------------------------------------------------------------------
    def with_vwgts(self, vwgts: np.ndarray) -> "CSRGraph":
        """Return a graph sharing this adjacency but with new vertex
        weights (used to re-weight the nodal graph per §4.2)."""
        return CSRGraph(self.xadj, self.adjncy, self.adjwgt, vwgts)

    def with_adjwgt(self, adjwgt: np.ndarray) -> "CSRGraph":
        """Return a graph sharing this adjacency but with new edge weights."""
        adjwgt = np.asarray(adjwgt, dtype=np.int64)
        if len(adjwgt) != len(self.adjncy):
            raise ValueError("adjwgt length must match adjncy")
        return CSRGraph(self.xadj, self.adjncy, adjwgt, self.vwgts)

    def copy(self) -> "CSRGraph":
        """Deep copy."""
        return CSRGraph(
            self.xadj.copy(),
            self.adjncy.copy(),
            self.adjwgt.copy(),
            self.vwgts.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"ncon={self.ncon})"
        )
