"""Structural graph operations: contraction, subgraphs, components.

``contract`` is the inner loop of multilevel coarsening and of the
leaf-collapse step that builds the refinement graph ``G'`` (paper
§4.2), so it is fully vectorised: coarse edges are merged with one
``lexsort``/``reduceat`` pass instead of per-edge hashing.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.csr import CSRGraph


def contract(graph: CSRGraph, cmap: np.ndarray, n_coarse: int) -> CSRGraph:
    """Contract ``graph`` according to the vertex map ``cmap``.

    ``cmap[v]`` is the coarse vertex that fine vertex ``v`` maps to.
    Coarse vertex weights are the per-constraint sums of their fine
    vertices; parallel edges are merged by summing weights; edges
    internal to a coarse vertex vanish.
    """
    cmap = np.asarray(cmap, dtype=np.int64)
    if len(cmap) != graph.num_vertices:
        raise ValueError("cmap length must equal number of vertices")
    if cmap.size and (cmap.min() < 0 or cmap.max() >= n_coarse):
        raise ValueError("cmap values out of range")

    # coarse vertex weights
    cvw = np.zeros((n_coarse, graph.ncon), dtype=np.int64)
    np.add.at(cvw, cmap, graph.vwgts)

    # coarse edges
    src = cmap[np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees())]
    dst = cmap[graph.adjncy]
    keep = src != dst
    src, dst, wgt = src[keep], dst[keep], graph.adjwgt[keep]
    if len(src) == 0:
        xadj = np.zeros(n_coarse + 1, dtype=np.int64)
        return CSRGraph(xadj, src, wgt, cvw)

    # merge parallel (directed) edges; both directions are present in the
    # input so the result stays symmetric
    key = src * np.int64(n_coarse) + dst
    order = np.argsort(key, kind="stable")
    key, src, dst, wgt = key[order], src[order], dst[order], wgt[order]
    uniq, start = np.unique(key, return_index=True)
    merged_w = np.add.reduceat(wgt, start)
    src, dst = src[start], dst[start]

    xadj = np.zeros(n_coarse + 1, dtype=np.int64)
    np.add.at(xadj, src + 1, 1)
    xadj = np.cumsum(xadj)
    return CSRGraph(xadj, dst, merged_w, cvw)


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``.

    Returns ``(subgraph, vertices)`` where ``vertices[i]`` is the
    original id of subgraph vertex ``i`` — the inverse map needed to
    project a partition of the subgraph back onto the parent (used by
    recursive bisection).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = graph.num_vertices
    local = np.full(n, -1, dtype=np.int64)
    local[vertices] = np.arange(len(vertices), dtype=np.int64)

    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    keep = (local[src] >= 0) & (local[graph.adjncy] >= 0)
    s, d, w = local[src[keep]], local[graph.adjncy[keep]], graph.adjwgt[keep]
    xadj = np.zeros(len(vertices) + 1, dtype=np.int64)
    np.add.at(xadj, s + 1, 1)
    xadj = np.cumsum(xadj)
    order = np.argsort(s, kind="stable")
    sub = CSRGraph(xadj, d[order], w[order], graph.vwgts[vertices])
    return sub, vertices


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Label connected components; returns ``int64[n]`` of component ids.

    Iterative BFS over the CSR arrays (no recursion, no networkx) so it
    scales to the full nodal graphs.
    """
    n = graph.num_vertices
    comp = np.full(n, -1, dtype=np.int64)
    current = 0
    for seed in range(n):
        if comp[seed] >= 0:
            continue
        frontier = np.array([seed], dtype=np.int64)
        comp[seed] = current
        while len(frontier):
            nxt = []
            for v in frontier:
                nbrs = graph.neighbors(v)
                fresh = nbrs[comp[nbrs] < 0]
                comp[fresh] = current
                if len(fresh):
                    nxt.append(np.unique(fresh))
            frontier = (
                np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int64)
            )
        current += 1
    return comp


def largest_component(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """Return the induced subgraph of the largest connected component."""
    comp = connected_components(graph)
    counts = np.bincount(comp)
    keep = np.nonzero(comp == counts.argmax())[0]
    return induced_subgraph(graph, keep)
