"""Axis-parallel split search with the paper's splitting index (Eq. 1).

    index = sqrt(Σ_i |A1,i|²) + sqrt(Σ_i |A2,i|²)

maximised over every hyperplane passing between successive sorted
coordinates in each dimension. The scan is O(n log n) per dimension and
— crucially — independent of the number of partitions k: instead of a
(n × k) prefix-count matrix we use the occurrence-rank identity

    Σ_c left_c(i)²  =  Σ_{j ≤ i} (2·rank_j − 1)

where ``rank_j`` is the 1-based occurrence number of point j's label
among its class in sorted order, so both ``Σ|A1,i|²`` and ``Σ|A2,i|²``
come from two O(n) cumulative sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernels import kernel


@dataclass(frozen=True)
class SplitResult:
    """A chosen hyperplane: ``points[:, dim] <= threshold`` go left."""

    dim: int
    threshold: float
    index_value: float
    n_left: int
    n_right: int


def _occurrence_ranks(labels: np.ndarray) -> np.ndarray:
    """1-based occurrence rank of each element among equal labels,
    in array order. E.g. [a, b, a, a] -> [1, 1, 2, 3]."""
    n = len(labels)
    idx = np.argsort(labels, kind="stable")
    sorted_lab = labels[idx]
    boundaries = np.nonzero(np.diff(sorted_lab))[0] + 1
    n_groups = len(boundaries) + 1
    group_start = np.zeros(n_groups, dtype=np.int64)
    group_start[1:] = boundaries
    sizes = np.empty(n_groups, dtype=np.int64)
    sizes[:-1] = np.diff(group_start)
    sizes[-1] = n - group_start[-1]
    ranks_sorted = np.arange(n, dtype=np.int64) - np.repeat(
        group_start, sizes
    )
    ranks = np.empty(n, dtype=np.int64)
    ranks[idx] = ranks_sorted + 1
    return ranks


def _sumsq_prefix(labels_in_order: np.ndarray) -> np.ndarray:
    """``out[i] = Σ_c (count of class c among the first i elements)²``
    for i in 0..n (length n+1)."""
    ranks = _occurrence_ranks(labels_in_order)
    inc = 2 * ranks - 1
    out = np.zeros(len(labels_in_order) + 1, dtype=np.int64)
    np.cumsum(inc, out=out[1:])
    return out


@kernel
def split_index_curve(
    coords: np.ndarray, labels: np.ndarray
) -> tuple:
    """Eq. 1 values for all candidate cuts along one dimension.

    Returns ``(order, valid, index)`` where ``order`` sorts the points
    by coordinate, ``valid[i]`` marks cut positions *after* sorted
    point ``i`` (i.e. between distinct coordinates), and ``index[i]``
    is the Eq. 1 value of that cut. Exposed for tests and for the
    margin-aware extension.

    Certified kernel: under ``REPRO_KERNELS=compiled`` the sort and
    prefix scans run as a numba loop form whose stable permutations
    and integer arithmetic are bit-identical to this body
    (``repro.runtime.compiled``).
    """
    order = np.argsort(coords, kind="stable")
    c = coords[order]
    lab = labels[order]
    n = len(c)
    left_sq = _sumsq_prefix(lab)  # prefix sums of squares
    right_sq = _sumsq_prefix(lab[::-1])[::-1]  # suffix sums of squares
    # cut after sorted position i (0-based) puts i+1 points left
    idx_vals = np.sqrt(left_sq[1:n].astype(float)) + np.sqrt(
        right_sq[1:n].astype(float)
    )
    valid = c[:-1] < c[1:]
    return order, valid, idx_vals


def best_split(
    points: np.ndarray,
    labels: np.ndarray,
    margin_weight: float = 0.0,
) -> Optional[SplitResult]:
    """Best Eq. 1 split over all dimensions, or ``None`` if every
    dimension is constant (the node is geometrically unsplittable).

    ``margin_weight > 0`` enables the paper's §6 extension: the score
    is augmented by the (normalised) gap width between the two points
    the hyperplane separates, preferring cuts through sparse regions.
    Ties are broken toward the more size-balanced cut to keep trees
    shallow.
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=np.int64)
    n, d = points.shape
    if n < 2:
        return None

    best: Optional[SplitResult] = None
    best_key = None
    for dim in range(d):
        coords = points[:, dim]
        order, valid, idx_vals = split_index_curve(coords, labels)
        if not valid.any():
            continue
        score = idx_vals.astype(float)
        if margin_weight > 0.0:
            c = coords[order]
            extent = c[-1] - c[0]
            if extent > 0:
                gaps = (c[1:] - c[:-1]) / extent
                score = score + margin_weight * n * gaps
        score = np.where(valid, score, -np.inf)
        i = int(np.argmax(score))
        # tie-break toward balance among equal scores
        ties = np.nonzero(score == score[i])[0]
        if len(ties) > 1:
            i = int(ties[np.argmin(np.abs(ties + 1 - n / 2))])
        c = coords[order]
        key = (score[i], -abs((i + 1) - n / 2))
        if best_key is None or key > best_key:
            best_key = key
            best = SplitResult(
                dim=dim,
                threshold=float(0.5 * (c[i] + c[i + 1])),
                index_value=float(idx_vals[i]),
                n_left=i + 1,
                n_right=n - (i + 1),
            )
    return best


def median_split(points: np.ndarray) -> Optional[SplitResult]:
    """Balanced median cut along the longest extent.

    Used for *pure* nodes in bounded induction (§4.2), where Eq. 1 is
    indifferent (every cut of a single-class node scores the same) and
    the goal is simply to produce compact, movable boxes.
    """
    points = np.asarray(points, dtype=float)
    n, d = points.shape
    if n < 2:
        return None
    extents = points.max(axis=0) - points.min(axis=0)
    for dim in np.argsort(extents)[::-1]:
        coords = points[:, int(dim)]
        order = np.argsort(coords, kind="stable")
        c = coords[order]
        valid = np.nonzero(c[:-1] < c[1:])[0]
        if len(valid) == 0:
            continue
        i = int(valid[np.argmin(np.abs(valid + 1 - n / 2))])
        return SplitResult(
            dim=int(dim),
            threshold=float(0.5 * (c[i] + c[i + 1])),
            index_value=float(n),
            n_left=i + 1,
            n_right=n - (i + 1),
        )
    return None
