"""Decision-tree data structure.

Nodes live in a flat list (ids are list indices) so queries can be run
as array-driven frontier sweeps instead of per-point recursion. Leaves
carry the majority partition label, the point count, and a purity flag;
interior nodes carry the ``(dim, threshold)`` hyperplane. The *yes*
branch (``coord <= threshold``) is ``left``, matching the paper's
Figure 1(c) convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np


@dataclass
class TreeNode:
    """One decision-tree node (interior or leaf)."""

    n_points: int
    label: int = -1  # majority partition label (valid for leaves)
    is_pure: bool = False
    dim: int = -1  # split dimension (interior only)
    threshold: float = 0.0  # split position (interior only)
    left: int = -1  # child ids, -1 on leaves
    right: int = -1

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return self.left < 0


@dataclass
class DecisionTree:
    """Flat-array decision tree over a labelled point set.

    ``k`` is the number of partition labels the tree discriminates.
    """

    nodes: List[TreeNode] = field(default_factory=list)
    k: int = 0
    root: int = 0

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count — the paper's **NTNodes** metric."""
        return len(self.nodes)

    @property
    def n_leaves(self) -> int:
        """Number of leaves (= rectangles/boxes in the descriptors)."""
        return sum(1 for nd in self.nodes if nd.is_leaf)

    def leaf_ids(self) -> np.ndarray:
        """Ids of all leaf nodes."""
        return np.array(
            [i for i, nd in enumerate(self.nodes) if nd.is_leaf],
            dtype=np.int64,
        )

    def depth(self) -> int:
        """Maximum root-to-leaf edge count (0 for a single-leaf tree)."""
        depths = {self.root: 0}
        best = 0
        stack = [self.root]
        while stack:
            nid = stack.pop()
            node = self.nodes[nid]
            if node.is_leaf:
                best = max(best, depths[nid])
                continue
            for child in (node.left, node.right):
                depths[child] = depths[nid] + 1
                stack.append(child)
        return best

    def leaf_labels(self) -> np.ndarray:
        """Majority partition label of each leaf, aligned with
        :meth:`leaf_ids`."""
        return np.array(
            [nd.label for nd in self.nodes if nd.is_leaf], dtype=np.int64
        )

    def partitions_present(self) -> np.ndarray:
        """Sorted unique partition labels among the leaves."""
        return np.unique(self.leaf_labels())

    def validate(self) -> None:
        """Structural sanity checks (tests/debugging)."""
        seen = np.zeros(len(self.nodes), dtype=bool)
        stack = [self.root]
        while stack:
            nid = stack.pop()
            if seen[nid]:
                raise ValueError(f"node {nid} reachable twice (cycle?)")
            seen[nid] = True
            node = self.nodes[nid]
            if node.is_leaf:
                if node.right >= 0:
                    raise ValueError(f"leaf {nid} has a right child")
                if not 0 <= node.label < max(self.k, 1):
                    raise ValueError(
                        f"leaf {nid} label {node.label} out of range"
                    )
            else:
                if node.right < 0:
                    raise ValueError(f"interior node {nid} missing a child")
                if node.dim < 0:
                    raise ValueError(f"interior node {nid} has no split dim")
                children_pts = (
                    self.nodes[node.left].n_points
                    + self.nodes[node.right].n_points
                )
                if children_pts != node.n_points:
                    raise ValueError(
                        f"node {nid} point count mismatch: "
                        f"{node.n_points} != {children_pts}"
                    )
                stack.extend((node.left, node.right))
        if not seen.all():
            raise ValueError("unreachable nodes present")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DecisionTree(nodes={self.n_nodes}, leaves={self.n_leaves}, "
            f"k={self.k})"
        )
