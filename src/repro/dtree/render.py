"""Terminal rendering of 2D decision-tree descriptors (Figure 1).

No plotting dependency is available offline, so the paper's Figure 1
panels are reproduced as character grids: points drawn with one glyph
per partition, leaf-region borders drawn with box characters, and the
tree itself pretty-printed with its decision hyperplanes. Meant for
examples and debugging, not precision graphics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.dtree.descriptors import leaf_regions
from repro.dtree.tree import DecisionTree

_GLYPHS = "o^#*+x%@"


def render_points(
    points: np.ndarray,
    labels: np.ndarray,
    width: int = 60,
    height: int = 24,
) -> str:
    """Scatter-plot a labelled 2D point set as text."""
    points = np.asarray(points, dtype=float)
    if points.shape[1] != 2:
        raise ValueError("render_points is 2D-only")
    labels = np.asarray(labels, dtype=np.int64)
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for (x, y), lab in zip(points, labels):
        cx = int((x - lo[0]) / span[0] * (width - 1))
        cy = int((y - lo[1]) / span[1] * (height - 1))
        grid[height - 1 - cy][cx] = _GLYPHS[lab % len(_GLYPHS)]
    return "\n".join("".join(row) for row in grid)


def render_descriptors(
    tree: DecisionTree,
    points: np.ndarray,
    labels: np.ndarray,
    width: int = 60,
    height: int = 24,
) -> str:
    """Figure 1(b): points plus leaf-region borders.

    Region borders are drawn with ``|`` and ``-``; points keep their
    partition glyphs and overwrite borders where they collide.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[1] != 2:
        raise ValueError("render_descriptors is 2D-only")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)

    def to_cell(x, y):
        cx = int(np.clip((x - lo[0]) / span[0] * (width - 1), 0, width - 1))
        cy = int(np.clip((y - lo[1]) / span[1] * (height - 1), 0, height - 1))
        return height - 1 - cy, cx

    grid = [[" "] * width for _ in range(height)]
    domain = np.stack((lo, hi))
    _, regions = leaf_regions(tree, domain)
    for box in regions:
        r0, c0 = to_cell(box[0, 0], box[1, 1])
        r1, c1 = to_cell(box[1, 0], box[0, 1])
        for c in range(min(c0, c1), max(c0, c1) + 1):
            grid[r0][c] = "-"
            grid[r1][c] = "-"
        for r in range(min(r0, r1), max(r0, r1) + 1):
            grid[r][c0] = "|"
            grid[r][c1] = "|"
    for (x, y), lab in zip(points, np.asarray(labels, dtype=np.int64)):
        r, c = to_cell(x, y)
        grid[r][c] = _GLYPHS[lab % len(_GLYPHS)]
    return "\n".join("".join(row) for row in grid)


def render_tree(tree: DecisionTree, dims: Sequence[str] = ("x", "y", "z")) -> str:
    """Figure 1(c): the decision tree with its hyperplane tests."""
    lines: List[str] = []

    def walk(nid: int, prefix: str, tail: bool) -> None:
        node = tree.nodes[nid]
        connector = "`- " if tail else "|- "
        if node.is_leaf:
            purity = "" if node.is_pure else " (impure)"
            lines.append(
                f"{prefix}{connector}leaf: partition {node.label}, "
                f"{node.n_points} pts{purity}"
            )
            return
        dim_name = dims[node.dim] if node.dim < len(dims) else str(node.dim)
        lines.append(
            f"{prefix}{connector}{dim_name} <= {node.threshold:.3g}?"
        )
        child_prefix = prefix + ("   " if tail else "|  ")
        walk(node.left, child_prefix, tail=False)
        walk(node.right, child_prefix, tail=True)

    root = tree.nodes[tree.root]
    if root.is_leaf:
        purity = "" if root.is_pure else " (impure)"
        lines.append(
            f"leaf: partition {root.label}, {root.n_points} pts{purity}"
        )
    else:
        dim_name = (
            dims[root.dim] if root.dim < len(dims) else str(root.dim)
        )
        lines.append(f"{dim_name} <= {root.threshold:.3g}?")
        walk(root.left, "", tail=False)
        walk(root.right, "", tail=True)
    return "\n".join(lines)
