"""Subdomain geometric descriptors (paper §4.1, Figure 1(b)).

A pure decision tree over the contact points partitions the domain into
axis-parallel rectangles/boxes, each owned by one partition. The
descriptor of subdomain ``p`` is the set of leaf regions labelled
``p`` — the paper's replacement for the single bounding box per
subdomain. The leaf *regions* (split-bounded, covering the whole
domain) differ from the leaf points' bounding boxes; both are exposed
because the regions define the search semantics while the tight boxes
are useful for visualisation and volume statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dtree.tree import DecisionTree
from repro.geometry.bbox import box_volume


def leaf_regions(
    tree: DecisionTree, domain_box: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute each leaf's region box within ``domain_box``.

    Returns ``(leaf_ids, regions)`` with ``regions`` of shape
    ``(n_leaves, 2, d)``; region bounds come from the splits along the
    root-to-leaf path, clipped to the domain box.
    """
    domain_box = np.asarray(domain_box, dtype=float)
    d = domain_box.shape[1]
    leaf_ids: List[int] = []
    regions: List[np.ndarray] = []
    stack = [(tree.root, domain_box.copy())]
    while stack:
        nid, box = stack.pop()
        node = tree.nodes[nid]
        if node.is_leaf:
            leaf_ids.append(nid)
            regions.append(box)
            continue
        lbox = box.copy()
        rbox = box.copy()
        lbox[1, node.dim] = min(lbox[1, node.dim], node.threshold)
        rbox[0, node.dim] = max(rbox[0, node.dim], node.threshold)
        stack.append((node.left, lbox))
        stack.append((node.right, rbox))
    return np.asarray(leaf_ids, dtype=np.int64), np.asarray(regions)


@dataclass
class SubdomainDescriptors:
    """Per-partition sets of axis-parallel regions.

    Built from a pure search tree; ``regions_of[p]`` is a
    ``(n_p, 2, d)`` array of the regions describing subdomain ``p``.
    """

    tree: DecisionTree
    domain_box: np.ndarray
    regions_of: Dict[int, np.ndarray]

    @classmethod
    def from_tree(
        cls, tree: DecisionTree, domain_box: np.ndarray
    ) -> "SubdomainDescriptors":
        """Group leaf regions by their partition label."""
        leaf_ids, regions = leaf_regions(tree, domain_box)
        labels = np.array(
            [tree.nodes[i].label for i in leaf_ids], dtype=np.int64
        )
        regions_of: Dict[int, np.ndarray] = {}
        for p in np.unique(labels):
            regions_of[int(p)] = regions[labels == p]
        return cls(tree=tree, domain_box=np.asarray(domain_box, float),
                   regions_of=regions_of)

    def volume_of(self, p: int) -> float:
        """Total volume of subdomain ``p``'s descriptor regions."""
        regions = self.regions_of.get(p)
        if regions is None:
            return 0.0
        return float(sum(box_volume(r) for r in regions))

    def total_overlap_volume(self) -> float:
        """Pairwise overlap volume across *different* subdomains.

        Leaf regions are disjoint by construction, so this is exactly 0
        — exposed as a checkable invariant contrasting with the
        bounding-box filter, whose overlaps cause false positives.
        """
        total = 0.0
        parts = sorted(self.regions_of)
        for i, p in enumerate(parts):
            for q in parts[i + 1 :]:
                for a in self.regions_of[p]:
                    for b in self.regions_of[q]:
                        lo = np.maximum(a[0], b[0])
                        hi = np.minimum(a[1], b[1])
                        if (hi > lo).all():
                            total += float(np.prod(hi - lo))
        return total

    def n_regions(self) -> int:
        """Total number of descriptor regions (= pure leaves)."""
        return int(sum(len(r) for r in self.regions_of.values()))
