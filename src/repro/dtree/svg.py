"""SVG rendering of 2D descriptors — publication-grade Figure 1 panels.

No plotting library is available offline, but SVG is just text: these
functions emit self-contained ``.svg`` files showing a labelled point
set and its leaf-region rectangles, colour-coded per partition. 3D
point sets can be projected with :func:`project_2d` first.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.dtree.descriptors import leaf_regions
from repro.dtree.tree import DecisionTree

PathLike = Union[str, Path]

# colour-blind-safe categorical palette (Okabe–Ito)
PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#000000",
)

_MARKERS = "circle", "square", "triangle", "diamond"


def project_2d(points: np.ndarray) -> np.ndarray:
    """Project a point set onto its two widest axes (for 3D inputs)."""
    points = np.asarray(points, dtype=float)
    if points.shape[1] <= 2:
        return points
    spread = points.max(axis=0) - points.min(axis=0)
    dims = sorted(np.argsort(spread)[::-1][:2])
    return points[:, dims]


def _marker_svg(kind: str, x: float, y: float, r: float, color: str) -> str:
    if kind == "circle":
        return (
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{r:.2f}" '
            f'fill="{color}"/>'
        )
    if kind == "square":
        return (
            f'<rect x="{x - r:.2f}" y="{y - r:.2f}" width="{2 * r:.2f}" '
            f'height="{2 * r:.2f}" fill="{color}"/>'
        )
    if kind == "triangle":
        pts = (
            f"{x:.2f},{y - r:.2f} {x - r:.2f},{y + r:.2f} "
            f"{x + r:.2f},{y + r:.2f}"
        )
        return f'<polygon points="{pts}" fill="{color}"/>'
    # diamond
    pts = (
        f"{x:.2f},{y - r:.2f} {x + r:.2f},{y:.2f} "
        f"{x:.2f},{y + r:.2f} {x - r:.2f},{y:.2f}"
    )
    return f'<polygon points="{pts}" fill="{color}"/>'


def descriptors_svg(
    tree: DecisionTree,
    points: np.ndarray,
    labels: np.ndarray,
    width: int = 640,
    height: int = 480,
    title: Optional[str] = None,
) -> str:
    """Figure-1(b)-style SVG: leaf regions + partition-coloured points.

    Returns the SVG document as a string; see :func:`save_descriptors_svg`
    to write it to disk.
    """
    points = project_2d(np.asarray(points, dtype=float))
    labels = np.asarray(labels, dtype=np.int64)
    if len(points) != len(labels):
        raise ValueError("points and labels lengths differ")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    pad = 28
    top = 34 if title else 12

    def sx(x: float) -> float:
        return pad + (x - lo[0]) / span[0] * (width - 2 * pad)

    def sy(y: float) -> float:
        return (height - pad) - (y - lo[1]) / span[1] * (
            height - pad - top
        )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{title}</text>'
        )

    # leaf regions (computed over the projected bounding box)
    domain = np.stack((lo, hi))
    leaf_ids, regions = leaf_regions(tree, domain)
    for nid, box in zip(leaf_ids, regions):
        label = tree.nodes[int(nid)].label
        color = PALETTE[label % len(PALETTE)]
        x0, y0 = sx(box[0, 0]), sy(box[1, 1])
        w = sx(box[1, 0]) - x0
        h = sy(box[0, 1]) - y0
        parts.append(
            f'<rect x="{x0:.2f}" y="{y0:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{color}" fill-opacity="0.12" '
            f'stroke="{color}" stroke-width="1.2"/>'
        )

    # points
    for (x, y), lab in zip(points, labels):
        color = PALETTE[lab % len(PALETTE)]
        marker = _MARKERS[lab % len(_MARKERS)]
        parts.append(_marker_svg(marker, sx(x), sy(y), 3.2, color))

    parts.append("</svg>")
    return "\n".join(parts)


def save_descriptors_svg(
    path: PathLike,
    tree: DecisionTree,
    points: np.ndarray,
    labels: np.ndarray,
    **kwargs,
) -> None:
    """Write :func:`descriptors_svg` output to ``path``."""
    Path(path).write_text(
        descriptors_svg(tree, points, labels, **kwargs)
    )
