"""Distributed decision-tree induction on the SPMD runtime.

The paper (§6) leans on the existence of parallel tree-induction
formulations (ScalParC [14]) to argue MCML+DT parallelises. This module
implements one on the SPMD backend runtime so that claim is executable
on real hardware: contact points stay distributed across ranks (by
their owning partition, as they would be in the real code) and the tree
is induced with communication proportional to *histograms*, not points.

Protocol per round (bulk-synchronous; coordinator = the calling
process, playing rank 0's decision role):

1. every rank bins its local points of each frontier node into ``B``
   per-dimension, per-class histograms and ships them to the
   coordinator (phase ``dtree-hist``);
2. the coordinator merges histograms, evaluates the paper's Eq. 1 on
   the bin boundaries, and broadcasts each node's decision —
   split(dim, thr), make-leaf, or gather (phase ``dtree-split``);
3. nodes flagged *gather* (few points, or unsplittable at bin
   resolution) have their points shipped to the coordinator (phase
   ``dtree-gather``) and are finished exactly with the serial inducer,
   so leaf purity is identical to the serial algorithm's.

Per-rank point storage lives in the ranks' session state — resident in
the worker processes on the process backend — and results are
bit-identical across backends (the coordinator merges per-rank output
in rank order).

The result classifies every input point exactly like a serially induced
pure tree (asserted by tests); thresholds may differ since coarse
splits are chosen at bin boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtree.induction import induce_pure_tree
from repro.dtree.tree import DecisionTree, TreeNode
from repro.obs.tracer import TracerBase
from repro.runtime.backends import SpmdContext, resolve_backend
from repro.runtime.backends.base import BackendLike
from repro.runtime.ledger import CommLedger


@dataclass
class _Frontier:
    """A tree node still being grown, with its global bounding box."""

    node_id: int
    lo: np.ndarray
    hi: np.ndarray


def _local_histograms(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    frontier: Sequence[_Frontier],
    node_of_point: np.ndarray,
    n_bins: int,
) -> Dict[int, np.ndarray]:
    """Per-frontier-node histograms: ``hist[d, b, c]`` counts local
    points of class c in bin b of dimension d."""
    d = points.shape[1]
    out: Dict[int, np.ndarray] = {}
    for fr in frontier:
        mask = node_of_point == fr.node_id
        if not mask.any():
            continue
        pts = points[mask]
        labs = labels[mask]
        hist = np.zeros((d, n_bins, k), dtype=np.int64)
        span = np.maximum(fr.hi - fr.lo, 1e-300)
        rel = (pts - fr.lo) / span
        bins = np.clip((rel * n_bins).astype(np.int64), 0, n_bins - 1)
        for dim in range(d):
            np.add.at(hist[dim], (bins[:, dim], labs), 1)
        out[fr.node_id] = hist
    return out


def _best_bin_split(
    hist: np.ndarray, lo: np.ndarray, hi: np.ndarray, n_bins: int
):
    """Eq. 1 over bin boundaries; returns ``(dim, threshold)`` or
    ``None`` when no boundary separates any points."""
    d = hist.shape[0]
    best = None
    best_val = -np.inf
    totals = hist.sum(axis=(0, 1)) // d  # per-class totals (same per dim)
    for dim in range(d):
        cum = np.cumsum(hist[dim], axis=0)  # (n_bins, k)
        left = cum[:-1]  # cut after bin b
        right = totals[None, :] - left
        n_left = left.sum(axis=1)
        n_right = right.sum(axis=1)
        valid = (n_left > 0) & (n_right > 0)
        if not valid.any():
            continue
        vals = np.sqrt((left.astype(float) ** 2).sum(axis=1)) + np.sqrt(
            (right.astype(float) ** 2).sum(axis=1)
        )
        vals = np.where(valid, vals, -np.inf)
        b = int(np.argmax(vals))
        if vals[b] > best_val:
            best_val = vals[b]
            frac = (b + 1) / n_bins
            best = (dim, float(lo[dim] + frac * (hi[dim] - lo[dim])))
    return best


# ----------------------------------------------------------------------
# supersteps (module-level: picklable, so they run on the process pool)
# ----------------------------------------------------------------------


def _init_step(ctx: SpmdContext, _arg: object) -> None:
    """Claim the local shard: copy owned points/labels out of the
    shared arrays into per-rank state."""
    idx = np.nonzero(ctx.shared["owner_rank"] == ctx.rank)[0]
    ctx.state["pts"] = ctx.shared["points"][idx]
    ctx.state["labs"] = ctx.shared["labels"][idx]
    ctx.state["node_of"] = np.zeros(len(idx), dtype=np.int64)


def _hist_step(
    ctx: SpmdContext, arg: Tuple[List[Tuple[int, np.ndarray, np.ndarray]], int, int]
) -> Dict[int, np.ndarray]:
    """Round superstep 1: histogram the local points of every frontier
    node (returned to the coordinator for the merge)."""
    frontier_spec, n_bins, k = arg
    frontier = [_Frontier(nid, lo, hi) for nid, lo, hi in frontier_spec]
    with ctx.span("histogram"):
        return _local_histograms(
            ctx.state["pts"], ctx.state["labs"], k, frontier,
            ctx.state["node_of"], n_bins,
        )


def _apply_step(ctx: SpmdContext, decisions: Dict[int, tuple]) -> None:
    """Round superstep 2: apply the broadcast decisions — re-route
    local points through new splits, settle leaf points."""
    pts = ctx.state["pts"]
    nd = ctx.state["node_of"]
    with ctx.span("route"):
        for nid, dec in decisions.items():
            mask = nd == nid
            if not mask.any():
                continue
            if dec[0] == "split":
                _, dim, thr, left_id, right_id = dec
                go_left = pts[mask][:, dim] <= thr
                sub = np.nonzero(mask)[0]
                nd[sub[go_left]] = left_id
                nd[sub[~go_left]] = right_id
            elif dec[0] == "leaf":
                nd[mask] = -1  # settled


def _gather_step(
    ctx: SpmdContext, gather_ids: Tuple[int, ...]
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Round superstep 3: surrender the local points of small or
    unsplittable nodes to the coordinator for exact serial finishing."""
    payload: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    nd = ctx.state["node_of"]
    with ctx.span("gather"):
        for nid in gather_ids:
            mask = nd == nid
            if mask.any():
                payload[nid] = (
                    ctx.state["pts"][mask],
                    ctx.state["labs"][mask],
                )
                nd[mask] = -1
    return payload


def parallel_induce_pure_tree(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    owner_rank: np.ndarray,
    n_ranks: int,
    n_bins: int = 32,
    exact_below: int = 48,
    max_rounds: int = 64,
    ledger: Optional[CommLedger] = None,
    backend: BackendLike = None,
    tracer: Optional[TracerBase] = None,
) -> Tuple[DecisionTree, CommLedger]:
    """Induce a pure tree over distributed points.

    ``owner_rank[i]`` is the rank storing point ``i`` (in MCML+DT, the
    point's partition). Returns ``(tree, ledger)``; the ledger phases
    ``dtree-hist``, ``dtree-split``, and ``dtree-gather`` account every
    item moved. ``backend`` selects where ranks execute; the induced
    tree is bit-identical across backends.
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=np.int64)
    owner_rank = np.asarray(owner_rank, dtype=np.int64)
    if len(points) == 0:
        raise ValueError("cannot induce a tree on zero points")
    if len(owner_rank) != len(points):
        raise ValueError("owner_rank must align with points")
    if owner_rank.min() < 0 or owner_rank.max() >= n_ranks:
        raise ValueError("owner_rank out of range")
    if exact_below < 2:
        raise ValueError("exact_below must be >= 2")

    resolved = resolve_backend(backend)
    shared = {
        "points": points,
        "labels": labels,
        "owner_rank": owner_rank,
    }
    with resolved.open_session(
        n_ranks, ledger=ledger, tracer=tracer, shared=shared
    ) as sess:
        sess.step(_init_step)
        tree, ledger = _induce_rounds(
            sess, points, labels, k, n_ranks, n_bins, exact_below,
            max_rounds,
        )
    return tree, ledger


def _induce_rounds(
    sess,
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    n_ranks: int,
    n_bins: int,
    exact_below: int,
    max_rounds: int,
) -> Tuple[DecisionTree, CommLedger]:
    """Coordinator loop: drive the rounds over an open session."""
    d = points.shape[1]
    tree = DecisionTree(k=k)
    tree.nodes.append(TreeNode(n_points=len(points)))
    frontier = [
        _Frontier(0, points.min(axis=0), points.max(axis=0))
    ]

    for _round in range(max_rounds):
        if not frontier:
            break
        # --- superstep 1: every rank ships its histograms
        frontier_spec = [(fr.node_id, fr.lo, fr.hi) for fr in frontier]
        per_rank = sess.step(_hist_step, (frontier_spec, n_bins, k))
        merged: Dict[int, np.ndarray] = {}
        for rank in range(n_ranks):
            hists = per_rank[rank]
            if rank > 0 and hists:
                items = int(sum(h.size for h in hists.values()))
                sess.account("dtree-hist", rank, 0, items)
            for nid, h in hists.items():
                merged[nid] = merged.get(nid, 0) + h

        # --- the coordinator decides each frontier node's fate
        decisions: Dict[int, tuple] = {}
        new_frontier: List[_Frontier] = []
        gather_nodes: List[_Frontier] = []
        for fr in frontier:
            hist = merged.get(fr.node_id)
            if hist is None:
                # no points reached this node (cannot happen for splits
                # chosen from histograms, but keep the protocol total)
                decisions[fr.node_id] = ("leaf", 0)
                continue
            class_counts = hist.sum(axis=(0, 1)) // d
            n_here = int(class_counts.sum())
            node = tree.nodes[fr.node_id]
            node.n_points = n_here
            node.label = int(class_counts.argmax())
            nonzero = np.nonzero(class_counts)[0]
            if len(nonzero) <= 1:
                node.is_pure = True
                decisions[fr.node_id] = ("leaf", node.label)
                continue
            if n_here < exact_below:
                decisions[fr.node_id] = ("gather",)
                gather_nodes.append(fr)
                continue
            split = _best_bin_split(hist, fr.lo, fr.hi, n_bins)
            if split is None:
                decisions[fr.node_id] = ("gather",)
                gather_nodes.append(fr)
                continue
            dim, thr = split
            left_id = len(tree.nodes)
            tree.nodes.append(TreeNode(n_points=0))
            right_id = len(tree.nodes)
            tree.nodes.append(TreeNode(n_points=0))
            node.dim, node.threshold = dim, thr
            node.left, node.right = left_id, right_id
            decisions[fr.node_id] = ("split", dim, thr, left_id, right_id)
            lo_l, hi_l = fr.lo.copy(), fr.hi.copy()
            hi_l[dim] = thr
            lo_r, hi_r = fr.lo.copy(), fr.hi.copy()
            lo_r[dim] = thr
            new_frontier.append(_Frontier(left_id, lo_l, hi_l))
            new_frontier.append(_Frontier(right_id, lo_r, hi_r))

        # --- superstep 2: broadcast decisions; ranks re-route points
        items = len(decisions)
        for rank in range(1, n_ranks):
            sess.account("dtree-split", 0, rank, items)
        sess.step(_apply_step, decisions)

        # --- superstep 3: gather small/unsplittable nodes
        if gather_nodes:
            gather_ids = tuple(
                sorted(fr.node_id for fr in gather_nodes)
            )
            collected: Dict[int, list] = {nid: [] for nid in gather_ids}
            payloads = sess.step(_gather_step, gather_ids)
            for rank in range(n_ranks):
                payload = payloads[rank]
                if not payload:
                    continue
                if rank > 0:
                    items = int(
                        sum(len(c[1]) for c in payload.values())
                    )
                    sess.account("dtree-gather", rank, 0, items)
                for nid, chunk in payload.items():
                    collected[nid].append(chunk)
            for fr in gather_nodes:
                chunks = collected[fr.node_id]
                pts = np.concatenate([c[0] for c in chunks])
                labs = np.concatenate([c[1] for c in chunks])
                sub, _ = induce_pure_tree(pts, labs, k)
                _graft(tree, fr.node_id, sub)

        frontier = new_frontier

    if frontier:
        raise RuntimeError(
            f"tree induction did not converge in {max_rounds} rounds"
        )
    return tree, sess.ledger


def _graft(tree: DecisionTree, at: int, sub: DecisionTree) -> None:
    """Replace node ``at`` of ``tree`` with (a copy of) ``sub``."""
    tree._query_arrays = None  # invalidate cached query arrays
    offset = len(tree.nodes)
    mapping = {}
    for i, nd in enumerate(sub.nodes):
        if i == sub.root:
            mapping[i] = at
        else:
            mapping[i] = offset
            offset += 1
    for i, nd in enumerate(sub.nodes):
        clone = TreeNode(
            n_points=nd.n_points,
            label=nd.label,
            is_pure=nd.is_pure,
            dim=nd.dim,
            threshold=nd.threshold,
            left=mapping[nd.left] if nd.left >= 0 else -1,
            right=mapping[nd.right] if nd.right >= 0 else -1,
        )
        if mapping[i] == at:
            tree.nodes[at] = clone
        else:
            tree.nodes.append(clone)
